//! Gaussian mixtures — the prediction object EDGE returns (Eq. 6), with the
//! density-argmax point extraction of Eq. 14 and the mass-within-radius
//! query behind the RDP metric.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::gaussian::BivariateGaussian;
use crate::point::Point;

/// A weighted mixture of bivariate Gaussians over `(lat, lon)`.
///
/// Weights are normalized at construction, so `pdf` always integrates to 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianMixture {
    weights: Vec<f64>,
    components: Vec<BivariateGaussian>,
}

impl GaussianMixture {
    /// Builds a mixture from `(weight, component)` pairs. Weights must be
    /// non-negative with a positive sum; they are renormalized to 1.
    ///
    /// Panics on an empty component list or an all-zero weight vector —
    /// those are programming errors in the caller, not data conditions.
    pub fn new(parts: Vec<(f64, BivariateGaussian)>) -> Self {
        assert!(!parts.is_empty(), "mixture needs at least one component");
        let sum: f64 = parts.iter().map(|(w, _)| *w).sum();
        assert!(
            sum > 0.0 && sum.is_finite(),
            "mixture weights must have a positive finite sum, got {sum}"
        );
        let (weights, components) = parts
            .into_iter()
            .map(|(w, g)| {
                assert!(w >= 0.0, "negative mixture weight {w}");
                (w / sum, g)
            })
            .unzip();
        Self { weights, components }
    }

    /// A single-component mixture (the `NoMixture` ablation's output shape).
    pub fn single(g: BivariateGaussian) -> Self {
        Self::new(vec![(1.0, g)])
    }

    /// Number of components `M`.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True only for the impossible empty mixture (constructor forbids it).
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// The normalized component weights `π`.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The Gaussian components.
    pub fn components(&self) -> &[BivariateGaussian] {
        &self.components
    }

    /// Iterates `(π_m, component_m)`.
    pub fn iter(&self) -> impl Iterator<Item = (f64, &BivariateGaussian)> + '_ {
        self.weights.iter().copied().zip(self.components.iter())
    }

    /// Probability density at `p` (Eq. 6).
    pub fn pdf(&self, p: &Point) -> f64 {
        self.iter().map(|(w, g)| w * g.pdf(p)).sum()
    }

    /// Log density at `p`, computed with the log-sum-exp trick so that
    /// far-from-every-component points do not underflow to `-inf` unless the
    /// density is truly zero to f64 precision.
    pub fn log_pdf(&self, p: &Point) -> f64 {
        let logs: Vec<f64> = self
            .iter()
            .map(|(w, g)| if w > 0.0 { w.ln() + g.log_pdf(p) } else { f64::NEG_INFINITY })
            .collect();
        let max = logs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if max == f64::NEG_INFINITY {
            return f64::NEG_INFINITY;
        }
        max + logs.iter().map(|l| (l - max).exp()).sum::<f64>().ln()
    }

    /// The mixture mean `Σ π_m μ_m`.
    pub fn mean(&self) -> Point {
        let mut lat = 0.0;
        let mut lon = 0.0;
        for (w, g) in self.iter() {
            lat += w * g.mu.lat;
            lon += w * g.mu.lon;
        }
        Point::new(lat, lon)
    }

    /// Draws one sample: pick a component by weight, then sample it.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        for (w, g) in self.iter() {
            acc += w;
            if u <= acc {
                return g.sample(rng);
            }
        }
        // Floating-point slack: fall through to the last component.
        self.components.last().expect("non-empty").sample(rng)
    }

    /// Eq. 14: the location maximizing the mixture density.
    ///
    /// The density is multi-modal, so we run gradient ascent from every
    /// component mean (plus the mixture mean) and keep the best endpoint.
    /// Each ascent uses a normalized-gradient step with backtracking, which
    /// is robust to the wildly varying density magnitudes that degree-scale
    /// σ values produce.
    pub fn mode(&self) -> Point {
        // With the AVX2 kernels active the search runs on a precomputed
        // structure-of-arrays evaluator (accuracy-gated against the scalar
        // path in `tests/simd_accuracy.rs`); otherwise on the exact scalar
        // density and gradient below.
        if let Some(eval) = crate::simd::MixtureEval::new(self) {
            return self.mode_with(&|p| eval.pdf(p), &|p| eval.grad(p));
        }
        self.mode_with(&|p| self.pdf(p), &|p| {
            let (mut g_lat, mut g_lon) = (0.0, 0.0);
            for (w, comp) in self.iter() {
                let (a, b) = comp.pdf_grad(p);
                g_lat += w * a;
                g_lon += w * b;
            }
            (g_lat, g_lon)
        })
    }

    fn mode_with(&self, pdf: &dyn Fn(&Point) -> f64, grad: &dyn Fn(&Point) -> (f64, f64)) -> Point {
        let mut starts: Vec<Point> = self.components.iter().map(|g| g.mu).collect();
        starts.push(self.mean());
        let mut best = starts[0];
        let mut best_density = pdf(&best);
        for start in starts {
            let refined = self.ascend(start, pdf, grad);
            let d = pdf(&refined);
            if d > best_density {
                best_density = d;
                best = refined;
            }
        }
        best
    }

    fn ascend(
        &self,
        mut p: Point,
        pdf: &dyn Fn(&Point) -> f64,
        grad: &dyn Fn(&Point) -> (f64, f64),
    ) -> Point {
        // Scale the initial step to the smallest component σ so the search
        // resolves the sharpest mode.
        let min_sigma = self
            .components
            .iter()
            .map(|g| g.sigma_lat.min(g.sigma_lon))
            .fold(f64::INFINITY, f64::min);
        let mut step = min_sigma * 0.5;
        let mut density = pdf(&p);
        for _ in 0..200 {
            let (g_lat, g_lon) = grad(&p);
            let norm = (g_lat * g_lat + g_lon * g_lon).sqrt();
            if norm < 1e-300 || step < 1e-10 {
                break;
            }
            let candidate = Point::new(p.lat + step * g_lat / norm, p.lon + step * g_lon / norm);
            let cd = pdf(&candidate);
            if cd > density {
                p = candidate;
                density = cd;
            } else {
                step *= 0.5;
            }
        }
        p
    }

    /// Monte-Carlo estimate of the probability mass the mixture places
    /// within `radius_km` of `center` — the per-tweet quantity averaged by
    /// the RDP metric (Figure 5).
    ///
    /// Uses a seeded RNG so results are reproducible; `n_samples` around
    /// 2 000 gives ±1% accuracy.
    pub fn mass_within_km<R: Rng + ?Sized>(
        &self,
        center: &Point,
        radius_km: f64,
        n_samples: usize,
        rng: &mut R,
    ) -> f64 {
        assert!(n_samples > 0, "need at least one sample");
        let hits =
            (0..n_samples).filter(|_| self.sample(rng).haversine_km(center) <= radius_km).count();
        hits as f64 / n_samples as f64
    }

    /// The index and weight of the heaviest component.
    pub fn dominant_component(&self) -> (usize, f64) {
        let (idx, w) =
            self.weights.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).expect("non-empty");
        (idx, *w)
    }

    /// Shannon entropy of the component weights in nats — a quick scalar
    /// summary of how multi-modal the prediction is.
    pub fn weight_entropy(&self) -> f64 {
        -self.weights.iter().filter(|&&w| w > 0.0).map(|w| w * w.ln()).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bimodal() -> GaussianMixture {
        GaussianMixture::new(vec![
            (0.7, BivariateGaussian::isotropic(Point::new(40.70, -74.00), 0.01)),
            (0.3, BivariateGaussian::isotropic(Point::new(40.80, -73.90), 0.01)),
        ])
    }

    #[test]
    fn weights_normalize() {
        let m = GaussianMixture::new(vec![
            (2.0, BivariateGaussian::isotropic(Point::new(0.0, 0.0), 1.0)),
            (6.0, BivariateGaussian::isotropic(Point::new(1.0, 1.0), 1.0)),
        ]);
        assert!((m.weights()[0] - 0.25).abs() < 1e-12);
        assert!((m.weights()[1] - 0.75).abs() < 1e-12);
        assert!((m.weights().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn empty_mixture_panics() {
        let _ = GaussianMixture::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive finite sum")]
    fn zero_weights_panic() {
        let _ = GaussianMixture::new(vec![(
            0.0,
            BivariateGaussian::isotropic(Point::new(0.0, 0.0), 1.0),
        )]);
    }

    #[test]
    fn pdf_is_weighted_sum() {
        let m = bimodal();
        let p = Point::new(40.75, -73.95);
        let manual: f64 = m.iter().map(|(w, g)| w * g.pdf(&p)).sum();
        assert!((m.pdf(&p) - manual).abs() < 1e-12);
    }

    #[test]
    fn log_pdf_matches_pdf_and_survives_far_points() {
        let m = bimodal();
        let near = Point::new(40.71, -74.0);
        assert!((m.log_pdf(&near) - m.pdf(&near).ln()).abs() < 1e-9);
        // pdf underflows to 0 here, but log_pdf stays finite.
        let far = Point::new(0.0, 0.0);
        assert_eq!(m.pdf(&far), 0.0);
        assert!(m.log_pdf(&far).is_finite());
        assert!(m.log_pdf(&far) < -1000.0);
    }

    #[test]
    fn mode_finds_heaviest_peak() {
        let m = bimodal();
        let mode = m.mode();
        assert!(mode.haversine_km(&Point::new(40.70, -74.00)) < 0.2, "mode {mode:?}");
    }

    #[test]
    fn mode_of_single_gaussian_is_its_mean() {
        let g = BivariateGaussian::new(Point::new(34.05, -118.24), 0.05, 0.02, 0.4);
        let m = GaussianMixture::single(g);
        let mode = m.mode();
        assert!(mode.haversine_km(&g.mu) < 0.05, "mode {mode:?}");
    }

    #[test]
    fn mode_handles_overlapping_components() {
        // Two equal components very close: the mode sits between them.
        let m = GaussianMixture::new(vec![
            (0.5, BivariateGaussian::isotropic(Point::new(40.0, -74.0), 0.1)),
            (0.5, BivariateGaussian::isotropic(Point::new(40.05, -74.0), 0.1)),
        ]);
        let mode = m.mode();
        assert!(mode.lat > 39.99 && mode.lat < 40.06, "mode {mode:?}");
    }

    #[test]
    fn sample_respects_weights() {
        let m = bimodal();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 30_000;
        let near_first = (0..n)
            .filter(|_| m.sample(&mut rng).haversine_km(&Point::new(40.70, -74.00)) < 5.0)
            .count() as f64
            / n as f64;
        assert!((near_first - 0.7).abs() < 0.02, "got {near_first}");
    }

    #[test]
    fn mass_within_km_brackets() {
        let m = bimodal();
        let mut rng = StdRng::seed_from_u64(1);
        let center = Point::new(40.70, -74.00);
        let tight = m.mass_within_km(&center, 3.0, 4000, &mut rng);
        let loose = m.mass_within_km(&center, 30.0, 4000, &mut rng);
        assert!((tight - 0.7).abs() < 0.05, "tight {tight}");
        assert!(loose > 0.98, "loose {loose}");
    }

    #[test]
    fn dominant_component_and_entropy() {
        let m = bimodal();
        assert_eq!(m.dominant_component().0, 0);
        let uniform = GaussianMixture::new(vec![
            (1.0, BivariateGaussian::isotropic(Point::new(0.0, 0.0), 1.0)),
            (1.0, BivariateGaussian::isotropic(Point::new(1.0, 1.0), 1.0)),
        ]);
        assert!((uniform.weight_entropy() - (2.0f64).ln()).abs() < 1e-12);
        assert!(m.weight_entropy() < uniform.weight_entropy());
        assert_eq!(GaussianMixture::single(m.components()[0]).weight_entropy(), 0.0);
    }

    #[test]
    fn mixture_mean_is_weighted_mean() {
        let m = bimodal();
        let mean = m.mean();
        assert!((mean.lat - (0.7 * 40.70 + 0.3 * 40.80)).abs() < 1e-12);
    }
}
