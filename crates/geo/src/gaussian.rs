//! Bivariate Gaussian distributions with the paper's `(σ₁, σ₂, ρ)`
//! covariance parameterization (Eq. 5), plus the confidence ellipses used to
//! visualize predictions in the Figure-7 use case.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::point::Point;

/// A bivariate normal over `(latitude, longitude)`.
///
/// The covariance matrix is stored in the paper's factored form
///
/// ```text
/// Σ = [ σ₁²        ρ σ₁ σ₂ ]
///     [ ρ σ₁ σ₂    σ₂²     ]
/// ```
///
/// with `σ₁, σ₂ > 0` and `ρ ∈ (-1, 1)`, which is exactly what the EDGE
/// mixture head emits after the softplus/softsign activations (Eq. 10–11).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BivariateGaussian {
    /// Mean `(μ_lat, μ_lon)` in degrees.
    pub mu: Point,
    /// Standard deviation along latitude, degrees.
    pub sigma_lat: f64,
    /// Standard deviation along longitude, degrees.
    pub sigma_lon: f64,
    /// Correlation between latitude and longitude.
    pub rho: f64,
}

/// A confidence ellipse of a bivariate Gaussian: the level set containing a
/// given probability mass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceEllipse {
    /// Ellipse centre (the Gaussian mean).
    pub center: Point,
    /// Semi-major axis, in degrees.
    pub semi_major: f64,
    /// Semi-minor axis, in degrees.
    pub semi_minor: f64,
    /// Rotation of the major axis from the latitude axis, radians in
    /// `(-π/2, π/2]`.
    pub angle_rad: f64,
    /// The confidence level this ellipse encloses, e.g. `0.75`.
    pub confidence: f64,
}

impl BivariateGaussian {
    /// Creates a Gaussian; clamps `ρ` into `(-1+ε, 1-ε)` and floors the
    /// standard deviations at a tiny positive value so a freshly initialized
    /// or adversarial parameter vector can never produce a singular Σ.
    pub fn new(mu: Point, sigma_lat: f64, sigma_lon: f64, rho: f64) -> Self {
        const MIN_SIGMA: f64 = 1e-6;
        const MAX_ABS_RHO: f64 = 1.0 - 1e-6;
        Self {
            mu,
            sigma_lat: sigma_lat.max(MIN_SIGMA),
            sigma_lon: sigma_lon.max(MIN_SIGMA),
            rho: rho.clamp(-MAX_ABS_RHO, MAX_ABS_RHO),
        }
    }

    /// An isotropic Gaussian with equal axis standard deviations and no
    /// correlation.
    pub fn isotropic(mu: Point, sigma: f64) -> Self {
        Self::new(mu, sigma, sigma, 0.0)
    }

    /// The determinant of Σ.
    pub fn det(&self) -> f64 {
        let s1 = self.sigma_lat;
        let s2 = self.sigma_lon;
        s1 * s1 * s2 * s2 * (1.0 - self.rho * self.rho)
    }

    /// Squared Mahalanobis distance of `p` from the mean.
    pub fn mahalanobis_sq(&self, p: &Point) -> f64 {
        let dx = (p.lat - self.mu.lat) / self.sigma_lat;
        let dy = (p.lon - self.mu.lon) / self.sigma_lon;
        let r = self.rho;
        (dx * dx - 2.0 * r * dx * dy + dy * dy) / (1.0 - r * r)
    }

    /// Log probability density at `p`.
    pub fn log_pdf(&self, p: &Point) -> f64 {
        let norm = -(2.0
            * std::f64::consts::PI
            * self.sigma_lat
            * self.sigma_lon
            * (1.0 - self.rho * self.rho).sqrt())
        .ln();
        norm - 0.5 * self.mahalanobis_sq(p)
    }

    /// Probability density at `p`.
    pub fn pdf(&self, p: &Point) -> f64 {
        self.log_pdf(p).exp()
    }

    /// Draws one sample using the Cholesky factor of Σ.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        let z1 = standard_normal(rng);
        let z2 = standard_normal(rng);
        let lat = self.mu.lat + self.sigma_lat * z1;
        let lon = self.mu.lon
            + self.sigma_lon * (self.rho * z1 + (1.0 - self.rho * self.rho).sqrt() * z2);
        Point::new(lat, lon)
    }

    /// Gradient of the pdf with respect to the query point, `(∂/∂lat, ∂/∂lon)`.
    ///
    /// Used by the Eq.-14 mode search (density gradient ascent).
    pub fn pdf_grad(&self, p: &Point) -> (f64, f64) {
        let density = self.pdf(p);
        let s1 = self.sigma_lat;
        let s2 = self.sigma_lon;
        let r = self.rho;
        let one_m_r2 = 1.0 - r * r;
        let dx = p.lat - self.mu.lat;
        let dy = p.lon - self.mu.lon;
        // d/dlat of -0.5 * mahalanobis_sq
        let g_lat = -(dx / (s1 * s1) - r * dy / (s1 * s2)) / one_m_r2;
        let g_lon = -(dy / (s2 * s2) - r * dx / (s1 * s2)) / one_m_r2;
        (density * g_lat, density * g_lon)
    }

    /// The eigen-decomposition of Σ: `(λ_major, λ_minor, angle)` where
    /// `angle` is the rotation of the major eigenvector from the latitude
    /// axis.
    pub fn covariance_eigen(&self) -> (f64, f64, f64) {
        let a = self.sigma_lat * self.sigma_lat;
        let c = self.sigma_lon * self.sigma_lon;
        let b = self.rho * self.sigma_lat * self.sigma_lon;
        let trace_half = (a + c) / 2.0;
        let disc = (((a - c) / 2.0).powi(2) + b * b).sqrt();
        let l1 = trace_half + disc;
        let l2 = (trace_half - disc).max(0.0);
        let angle = if b.abs() < 1e-30 && a >= c {
            0.0
        } else if b.abs() < 1e-30 {
            std::f64::consts::FRAC_PI_2
        } else {
            (l1 - a).atan2(b)
        };
        (l1, l2, angle)
    }

    /// The confidence ellipse enclosing probability `confidence ∈ (0, 1)`.
    ///
    /// For a bivariate normal the squared Mahalanobis radius enclosing mass
    /// `p` is the χ²₂ quantile `-2 ln(1 - p)`.
    pub fn confidence_ellipse(&self, confidence: f64) -> ConfidenceEllipse {
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence must be in (0,1), got {confidence}"
        );
        let chi2 = -2.0 * (1.0 - confidence).ln();
        let (l1, l2, angle) = self.covariance_eigen();
        ConfidenceEllipse {
            center: self.mu,
            semi_major: (chi2 * l1).sqrt(),
            semi_minor: (chi2 * l2).sqrt(),
            angle_rad: angle,
            confidence,
        }
    }

    /// Maximum-likelihood fit to a set of points. Returns `None` for fewer
    /// than two points (the covariance would be degenerate).
    pub fn fit(points: &[Point]) -> Option<Self> {
        if points.len() < 2 {
            return None;
        }
        let n = points.len() as f64;
        let mean = crate::point::centroid(points)?;
        let (mut v_lat, mut v_lon, mut cov) = (0.0, 0.0, 0.0);
        for p in points {
            let dx = p.lat - mean.lat;
            let dy = p.lon - mean.lon;
            v_lat += dx * dx;
            v_lon += dy * dy;
            cov += dx * dy;
        }
        v_lat /= n;
        v_lon /= n;
        cov /= n;
        let s1 = v_lat.sqrt();
        let s2 = v_lon.sqrt();
        let rho = if s1 > 0.0 && s2 > 0.0 { cov / (s1 * s2) } else { 0.0 };
        Some(Self::new(mean, s1, s2, rho))
    }
}

impl ConfidenceEllipse {
    /// Whether `p` lies inside the ellipse.
    pub fn contains(&self, p: &Point) -> bool {
        let dx = p.lat - self.center.lat;
        let dy = p.lon - self.center.lon;
        let (sin, cos) = self.angle_rad.sin_cos();
        let u = cos * dx + sin * dy;
        let v = -sin * dx + cos * dy;
        (u / self.semi_major).powi(2) + (v / self.semi_minor).powi(2) <= 1.0
    }

    /// `n` evenly spaced boundary points, suitable for plotting.
    pub fn boundary(&self, n: usize) -> Vec<Point> {
        let (sin, cos) = self.angle_rad.sin_cos();
        (0..n)
            .map(|i| {
                let t = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                let u = self.semi_major * t.cos();
                let v = self.semi_minor * t.sin();
                Point::new(self.center.lat + cos * u - sin * v, self.center.lon + sin * u + cos * v)
            })
            .collect()
    }
}

/// One standard-normal draw via Box–Muller (kept local so the crate does not
/// need `rand_distr`).
pub(crate) fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            let u2: f64 = rng.gen::<f64>();
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn g() -> BivariateGaussian {
        BivariateGaussian::new(Point::new(40.7, -74.0), 0.05, 0.08, 0.3)
    }

    #[test]
    fn pdf_is_maximal_at_mean() {
        let g = g();
        let at_mean = g.pdf(&g.mu);
        for d in [0.01, 0.05, 0.2] {
            assert!(g.pdf(&Point::new(g.mu.lat + d, g.mu.lon)) < at_mean);
            assert!(g.pdf(&Point::new(g.mu.lat, g.mu.lon - d)) < at_mean);
        }
    }

    #[test]
    fn pdf_integrates_to_one_on_grid() {
        let g = BivariateGaussian::new(Point::new(0.0, 0.0), 0.1, 0.15, -0.4);
        let (step, half) = (0.01, 1.0);
        let mut mass = 0.0;
        let n = (2.0 * half / step) as i64;
        for i in 0..n {
            for j in 0..n {
                let p =
                    Point::new(-half + (i as f64 + 0.5) * step, -half + (j as f64 + 0.5) * step);
                mass += g.pdf(&p) * step * step;
            }
        }
        assert!((mass - 1.0).abs() < 1e-3, "mass {mass}");
    }

    #[test]
    fn log_pdf_matches_pdf() {
        let g = g();
        let p = Point::new(40.72, -74.05);
        assert!((g.log_pdf(&p).exp() - g.pdf(&p)).abs() < 1e-12);
    }

    #[test]
    fn sigma_floor_and_rho_clamp() {
        let g = BivariateGaussian::new(Point::new(0.0, 0.0), -1.0, 0.0, 5.0);
        assert!(g.sigma_lat > 0.0);
        assert!(g.sigma_lon > 0.0);
        assert!(g.rho < 1.0);
        assert!(g.det() > 0.0);
        assert!(g.pdf(&Point::new(0.0, 0.0)).is_finite());
    }

    #[test]
    fn sample_mean_converges() {
        let g = g();
        let mut rng = StdRng::seed_from_u64(7);
        let pts: Vec<Point> = (0..20_000).map(|_| g.sample(&mut rng)).collect();
        let c = crate::point::centroid(&pts).unwrap();
        assert!((c.lat - g.mu.lat).abs() < 0.002, "lat {}", c.lat);
        assert!((c.lon - g.mu.lon).abs() < 0.003, "lon {}", c.lon);
    }

    #[test]
    fn fit_recovers_parameters() {
        let truth = BivariateGaussian::new(Point::new(34.0, -118.0), 0.1, 0.05, 0.5);
        let mut rng = StdRng::seed_from_u64(11);
        let pts: Vec<Point> = (0..50_000).map(|_| truth.sample(&mut rng)).collect();
        let fitted = BivariateGaussian::fit(&pts).unwrap();
        assert!((fitted.sigma_lat - truth.sigma_lat).abs() < 0.005);
        assert!((fitted.sigma_lon - truth.sigma_lon).abs() < 0.005);
        assert!((fitted.rho - truth.rho).abs() < 0.03);
    }

    #[test]
    fn fit_rejects_tiny_samples() {
        assert!(BivariateGaussian::fit(&[]).is_none());
        assert!(BivariateGaussian::fit(&[Point::new(0.0, 0.0)]).is_none());
    }

    #[test]
    fn confidence_ellipse_mass_is_correct() {
        // Empirically: fraction of samples inside the p-ellipse ≈ p.
        let g = BivariateGaussian::new(Point::new(0.0, 0.0), 0.2, 0.1, 0.6);
        let mut rng = StdRng::seed_from_u64(3);
        for conf in [0.75, 0.80, 0.85] {
            let e = g.confidence_ellipse(conf);
            let inside =
                (0..40_000).filter(|_| e.contains(&g.sample(&mut rng))).count() as f64 / 40_000.0;
            assert!((inside - conf).abs() < 0.01, "conf {conf}: inside {inside}");
        }
    }

    #[test]
    fn confidence_ellipses_nest() {
        let g = g();
        let small = g.confidence_ellipse(0.75);
        let big = g.confidence_ellipse(0.85);
        assert!(big.semi_major > small.semi_major);
        assert!(big.semi_minor > small.semi_minor);
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn ellipse_rejects_bad_confidence() {
        let _ = g().confidence_ellipse(1.0);
    }

    #[test]
    fn ellipse_boundary_points_lie_on_boundary() {
        let g = g();
        let e = g.confidence_ellipse(0.8);
        // Boundary points all have the same Mahalanobis radius.
        let radii: Vec<f64> = e.boundary(16).iter().map(|p| g.mahalanobis_sq(p)).collect();
        let first = radii[0];
        for r in &radii {
            assert!((r - first).abs() < 1e-9, "radii differ: {radii:?}");
        }
    }

    #[test]
    fn eigen_identity_for_isotropic() {
        let g = BivariateGaussian::isotropic(Point::new(0.0, 0.0), 0.3);
        let (l1, l2, _) = g.covariance_eigen();
        assert!((l1 - 0.09).abs() < 1e-12);
        assert!((l2 - 0.09).abs() < 1e-12);
    }

    #[test]
    fn pdf_grad_matches_finite_difference() {
        let g = g();
        let p = Point::new(40.73, -74.06);
        let (ga, go) = g.pdf_grad(&p);
        let h = 1e-6;
        let fd_lat = (g.pdf(&Point::new(p.lat + h, p.lon)) - g.pdf(&Point::new(p.lat - h, p.lon)))
            / (2.0 * h);
        let fd_lon = (g.pdf(&Point::new(p.lat, p.lon + h)) - g.pdf(&Point::new(p.lat, p.lon - h)))
            / (2.0 * h);
        assert!((ga - fd_lat).abs() < 1e-4 * (1.0 + fd_lat.abs()), "{ga} vs {fd_lat}");
        assert!((go - fd_lon).abs() < 1e-4 * (1.0 + fd_lon.abs()), "{go} vs {fd_lon}");
    }
}
