//! Uniform cell grids over a bounding box.
//!
//! The grid-classifier baselines of Hulden et al. (NaiveBayes,
//! Kullback-Leibler and their `kde2d` variants) and LocKDE all "divide each
//! region into 100×100 grid cells uniformly". This module provides that
//! partition plus cell↔point conversions.

use serde::{Deserialize, Serialize};

use crate::bbox::BBox;
use crate::point::Point;

/// A cell index `(row, col)` with `row` along latitude (south→north) and
/// `col` along longitude (west→east).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Cell {
    /// Latitude index, `0..rows`.
    pub row: usize,
    /// Longitude index, `0..cols`.
    pub col: usize,
}

/// A uniform `rows × cols` grid over a bounding box.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid {
    bbox: BBox,
    rows: usize,
    cols: usize,
}

impl Grid {
    /// Creates a grid. Panics when either dimension is zero.
    pub fn new(bbox: BBox, rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
        Self { bbox, rows, cols }
    }

    /// The paper's default evaluation grid: 100×100 cells.
    pub fn paper_default(bbox: BBox) -> Self {
        Self::new(bbox, 100, 100)
    }

    /// Grid rows (latitude divisions).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns (longitude divisions).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Always false: grids are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The underlying bounding box.
    pub fn bbox(&self) -> &BBox {
        &self.bbox
    }

    /// The cell containing `p`. Points outside the box are clamped to the
    /// nearest edge cell, matching how the baselines bucket stray test
    /// points.
    pub fn cell_of(&self, p: &Point) -> Cell {
        let clamped = self.bbox.clamp(p);
        let v = (clamped.lat - self.bbox.min_lat) / self.bbox.lat_span();
        let u = (clamped.lon - self.bbox.min_lon) / self.bbox.lon_span();
        let row = ((v * self.rows as f64) as usize).min(self.rows - 1);
        let col = ((u * self.cols as f64) as usize).min(self.cols - 1);
        Cell { row, col }
    }

    /// The geographic centre of `cell`.
    pub fn center_of(&self, cell: Cell) -> Point {
        let v = (cell.row as f64 + 0.5) / self.rows as f64;
        let u = (cell.col as f64 + 0.5) / self.cols as f64;
        self.bbox.lerp(u, v)
    }

    /// Flattens a cell to a linear index in `0..len()` (row-major).
    pub fn index_of(&self, cell: Cell) -> usize {
        debug_assert!(cell.row < self.rows && cell.col < self.cols);
        cell.row * self.cols + cell.col
    }

    /// Inverse of [`Grid::index_of`].
    pub fn cell_at(&self, index: usize) -> Cell {
        debug_assert!(index < self.len());
        Cell { row: index / self.cols, col: index % self.cols }
    }

    /// Iterates over all cells in row-major order.
    pub fn cells(&self) -> impl Iterator<Item = Cell> + '_ {
        (0..self.len()).map(|i| self.cell_at(i))
    }

    /// Approximate cell dimensions in kilometres `(east_west, north_south)`.
    pub fn cell_dims_km(&self) -> (f64, f64) {
        let (ew, ns) = self.bbox.dims_km();
        (ew / self.cols as f64, ns / self.rows as f64)
    }

    /// Histogram of `points` over the grid (row-major counts).
    pub fn histogram(&self, points: &[Point]) -> Vec<u32> {
        let mut counts = vec![0u32; self.len()];
        for p in points {
            counts[self.index_of(self.cell_of(p))] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Grid {
        Grid::new(BBox::new(40.0, 41.0, -75.0, -74.0), 10, 20)
    }

    #[test]
    fn dimensions_and_len() {
        let g = grid();
        assert_eq!(g.rows(), 10);
        assert_eq!(g.cols(), 20);
        assert_eq!(g.len(), 200);
        assert!(!g.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_panics() {
        let _ = Grid::new(BBox::new(0.0, 1.0, 0.0, 1.0), 0, 10);
    }

    #[test]
    fn cell_of_corners() {
        let g = grid();
        assert_eq!(g.cell_of(&Point::new(40.0, -75.0)), Cell { row: 0, col: 0 });
        // Max corner clamps into the last cell.
        assert_eq!(g.cell_of(&Point::new(41.0, -74.0)), Cell { row: 9, col: 19 });
    }

    #[test]
    fn cell_of_outside_clamps() {
        let g = grid();
        assert_eq!(g.cell_of(&Point::new(39.0, -80.0)), Cell { row: 0, col: 0 });
        assert_eq!(g.cell_of(&Point::new(50.0, 0.0)), Cell { row: 9, col: 19 });
    }

    #[test]
    fn center_round_trips_through_cell_of() {
        let g = grid();
        for cell in g.cells() {
            let c = g.center_of(cell);
            assert_eq!(g.cell_of(&c), cell, "cell {cell:?} center {c:?}");
        }
    }

    #[test]
    fn index_round_trips() {
        let g = grid();
        for i in 0..g.len() {
            assert_eq!(g.index_of(g.cell_at(i)), i);
        }
    }

    #[test]
    fn histogram_counts_sum_to_input_len() {
        let g = grid();
        let pts: Vec<Point> = (0..57)
            .map(|i| Point::new(40.0 + (i as f64 % 10.0) / 10.0, -75.0 + (i as f64 % 7.0) / 7.0))
            .collect();
        let h = g.histogram(&pts);
        assert_eq!(h.iter().map(|&c| c as usize).sum::<usize>(), pts.len());
    }

    #[test]
    fn paper_default_is_100_by_100() {
        let g = Grid::paper_default(BBox::new(0.0, 1.0, 0.0, 1.0));
        assert_eq!((g.rows(), g.cols()), (100, 100));
    }

    #[test]
    fn cell_dims_km_scale_with_grid() {
        let g = grid();
        let (ew, ns) = g.cell_dims_km();
        assert!(ew > 0.0 && ns > 0.0);
        // 1 degree lat over 10 rows ~ 11.1 km per row.
        assert!((ns - 11.11).abs() < 0.2, "ns {ns}");
    }
}
