//! A common interface over spatial partitions.
//!
//! The grid classifiers (NaiveBayes, Kullback-Leibler, LocKDE) only need
//! three things from a partition: how many cells it has, which cell a point
//! falls into, and a representative point per cell. Both the paper's
//! uniform [`Grid`](crate::grid::Grid) and the quadtree alternative of
//! Ajao et al. ([`Quadtree`](crate::quadtree::Quadtree)) satisfy that
//! interface, so the baselines are generic over it.

use crate::grid::Grid;
use crate::point::Point;
use crate::quadtree::Quadtree;

/// A finite partition of a study region into indexed cells.
pub trait Partition {
    /// Number of cells.
    fn n_cells(&self) -> usize;

    /// The cell containing `p` (out-of-region points clamp to an edge
    /// cell).
    fn cell_index_of(&self, p: &Point) -> usize;

    /// A representative (centre) point of cell `index`.
    fn cell_center(&self, index: usize) -> Point;
}

impl Partition for Grid {
    fn n_cells(&self) -> usize {
        self.len()
    }

    fn cell_index_of(&self, p: &Point) -> usize {
        self.index_of(self.cell_of(p))
    }

    fn cell_center(&self, index: usize) -> Point {
        self.center_of(self.cell_at(index))
    }
}

impl Partition for Quadtree {
    fn n_cells(&self) -> usize {
        self.len()
    }

    fn cell_index_of(&self, p: &Point) -> usize {
        self.cell_of(p)
    }

    fn cell_center(&self, index: usize) -> Point {
        self.center_of(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bbox::BBox;

    fn points() -> Vec<Point> {
        (0..200)
            .map(|i| {
                Point::new(
                    40.0 + 0.9 * ((i * 7) % 100) as f64 / 100.0,
                    -75.0 + 0.9 * (i % 100) as f64 / 100.0,
                )
            })
            .collect()
    }

    fn check_partition<P: Partition>(p: &P) {
        assert!(p.n_cells() > 0);
        for pt in points() {
            let cell = p.cell_index_of(&pt);
            assert!(cell < p.n_cells());
            // The centre of a cell maps back to the same cell.
            assert_eq!(p.cell_index_of(&p.cell_center(cell)), cell);
        }
    }

    #[test]
    fn grid_satisfies_partition_contract() {
        check_partition(&Grid::new(BBox::new(40.0, 41.0, -75.0, -74.0), 13, 9));
    }

    #[test]
    fn quadtree_satisfies_partition_contract() {
        let tree = Quadtree::build(BBox::new(40.0, 41.0, -75.0, -74.0), &points(), 10, 8);
        check_partition(&tree);
    }

    #[test]
    fn generic_histogram_over_any_partition() {
        fn histogram<P: Partition>(p: &P, pts: &[Point]) -> Vec<u32> {
            let mut counts = vec![0u32; p.n_cells()];
            for pt in pts {
                counts[p.cell_index_of(pt)] += 1;
            }
            counts
        }
        let pts = points();
        let grid = Grid::new(BBox::new(40.0, 41.0, -75.0, -74.0), 10, 10);
        let tree = Quadtree::build(BBox::new(40.0, 41.0, -75.0, -74.0), &pts, 25, 8);
        assert_eq!(histogram(&grid, &pts).iter().sum::<u32>(), 200);
        assert_eq!(histogram(&tree, &pts).iter().sum::<u32>(), 200);
    }
}
