//! Von Mises–Fisher distributions on the unit sphere S².
//!
//! The UnicodeCNN baseline (Izbicki et al.) predicts tweet locations with a
//! *mixture of von Mises–Fisher* (MvMF) distributions, "where the components
//! are uniformly distributed in each region" and only the mixture weights are
//! learned. This module provides the density, the fixed-component layout and
//! the weighted-mode extraction that baseline needs.

use serde::{Deserialize, Serialize};

use crate::bbox::BBox;
use crate::point::Point;

/// A von Mises–Fisher distribution on S² with mean direction `mu` and
/// concentration `kappa`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VonMisesFisher {
    /// Mean direction as a geographic point.
    pub mu: Point,
    /// Concentration parameter; larger = tighter. Must be positive.
    pub kappa: f64,
}

impl VonMisesFisher {
    /// Creates a vMF component. Panics on non-positive `kappa`.
    pub fn new(mu: Point, kappa: f64) -> Self {
        assert!(kappa > 0.0, "kappa must be positive, got {kappa}");
        Self { mu, kappa }
    }

    /// Log density at `p` with respect to the uniform measure on S².
    ///
    /// For p = 3 the normalizer is `κ / (4π sinh κ)`; we use the
    /// numerically safe form `ln κ - ln(4π) - κ - ln((1 - e^{-2κ})/2)`
    /// which never overflows for large κ.
    pub fn log_pdf(&self, p: &Point) -> f64 {
        let dot = dot3(self.mu.to_unit_vec(), p.to_unit_vec());
        let k = self.kappa;
        let log_norm =
            k.ln() - (4.0 * std::f64::consts::PI).ln() - k - ((1.0 - (-2.0 * k).exp()) / 2.0).ln();
        log_norm + k * dot
    }

    /// Density at `p`.
    pub fn pdf(&self, p: &Point) -> f64 {
        self.log_pdf(p).exp()
    }
}

/// A mixture of vMF components with fixed means and learnable weights — the
/// output head of the UnicodeCNN baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MvMfMixture {
    components: Vec<VonMisesFisher>,
    weights: Vec<f64>,
}

impl MvMfMixture {
    /// Lays out `n` components uniformly over `bbox` (a near-square lattice,
    /// matching the paper's "components are uniformly distributed in each
    /// region"), all with concentration `kappa` and uniform initial weights.
    pub fn uniform_layout(bbox: &BBox, n: usize, kappa: f64) -> Self {
        assert!(n > 0, "need at least one component");
        // Choose a rows×cols lattice with rows*cols >= n, as square as possible.
        let cols = (n as f64).sqrt().ceil() as usize;
        let rows = n.div_ceil(cols);
        let mut components = Vec::with_capacity(n);
        'outer: for r in 0..rows {
            for c in 0..cols {
                if components.len() == n {
                    break 'outer;
                }
                let v = (r as f64 + 0.5) / rows as f64;
                let u = (c as f64 + 0.5) / cols as f64;
                components.push(VonMisesFisher::new(bbox.lerp(u, v), kappa));
            }
        }
        let weights = vec![1.0 / n as f64; n];
        Self { components, weights }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True when the mixture has no components (cannot happen via the
    /// provided constructors).
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// The component means.
    pub fn centers(&self) -> Vec<Point> {
        self.components.iter().map(|c| c.mu).collect()
    }

    /// Current weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Replaces the weights (e.g. with a network's softmax output). Panics
    /// when the length differs or the weights are not a distribution.
    pub fn set_weights(&mut self, weights: Vec<f64>) {
        assert_eq!(weights.len(), self.components.len(), "weight/component length mismatch");
        let sum: f64 = weights.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-6 && weights.iter().all(|&w| w >= 0.0),
            "weights must form a distribution (sum {sum})"
        );
        self.weights = weights;
    }

    /// Density at `p`.
    pub fn pdf(&self, p: &Point) -> f64 {
        self.weights.iter().zip(&self.components).map(|(w, c)| w * c.pdf(p)).sum()
    }

    /// The component mean with the highest weighted density — the point
    /// estimate the UnicodeCNN baseline reports. With fixed, well-separated
    /// components this coincides with the mixture mode to within a
    /// component spacing.
    pub fn mode(&self) -> Point {
        let best = self
            .components
            .iter()
            .map(|c| c.mu)
            .max_by(|a, b| self.pdf(a).total_cmp(&self.pdf(b)))
            .expect("non-empty mixture");
        best
    }
}

fn dot3(a: [f64; 3], b: [f64; 3]) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vmf_density_peaks_at_mean() {
        let v = VonMisesFisher::new(Point::new(40.7, -74.0), 1000.0);
        let at_mean = v.pdf(&v.mu);
        assert!(at_mean > v.pdf(&Point::new(40.8, -74.0)));
        assert!(at_mean > v.pdf(&Point::new(40.7, -73.8)));
    }

    #[test]
    fn vmf_large_kappa_no_overflow() {
        let v = VonMisesFisher::new(Point::new(0.0, 0.0), 1e6);
        assert!(v.log_pdf(&v.mu).is_finite());
        assert!(v.log_pdf(&Point::new(1.0, 1.0)).is_finite());
    }

    #[test]
    #[should_panic(expected = "kappa")]
    fn vmf_rejects_nonpositive_kappa() {
        let _ = VonMisesFisher::new(Point::new(0.0, 0.0), 0.0);
    }

    #[test]
    fn vmf_integrates_to_one_over_sphere() {
        // Monte-Carlo over a lat/lon lattice with the cos(lat) Jacobian.
        let v = VonMisesFisher::new(Point::new(20.0, 50.0), 10.0);
        let (n_lat, n_lon) = (200, 400);
        let mut mass = 0.0;
        for i in 0..n_lat {
            let lat = -90.0 + (i as f64 + 0.5) * 180.0 / n_lat as f64;
            for j in 0..n_lon {
                let lon = -180.0 + (j as f64 + 0.5) * 360.0 / n_lon as f64;
                let p = Point::new(lat, lon);
                let d_area = (180.0 / n_lat as f64).to_radians()
                    * (360.0 / n_lon as f64).to_radians()
                    * lat.to_radians().cos();
                mass += v.pdf(&p) * d_area;
            }
        }
        assert!((mass - 1.0).abs() < 1e-2, "mass {mass}");
    }

    #[test]
    fn uniform_layout_covers_bbox() {
        let bbox = BBox::new(40.0, 41.0, -75.0, -74.0);
        let m = MvMfMixture::uniform_layout(&bbox, 100, 5000.0);
        assert_eq!(m.len(), 100);
        for c in m.centers() {
            assert!(bbox.contains(&c));
        }
        // Uniform initial weights.
        assert!(m.weights().iter().all(|&w| (w - 0.01).abs() < 1e-12));
    }

    #[test]
    fn uniform_layout_nonsquare_counts() {
        let bbox = BBox::new(0.0, 1.0, 0.0, 1.0);
        for n in [1, 2, 7, 10, 99] {
            assert_eq!(MvMfMixture::uniform_layout(&bbox, n, 100.0).len(), n);
        }
    }

    #[test]
    fn mode_tracks_heaviest_region() {
        let bbox = BBox::new(40.0, 41.0, -75.0, -74.0);
        let mut m = MvMfMixture::uniform_layout(&bbox, 25, 20_000.0);
        let mut w = vec![0.5 / 24.0; 25];
        w[13] = 0.5; // heavily favor one component
        let target = m.centers()[13];
        m.set_weights(w);
        assert!(m.mode().haversine_km(&target) < 1.0);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn set_weights_checks_len() {
        let bbox = BBox::new(0.0, 1.0, 0.0, 1.0);
        let mut m = MvMfMixture::uniform_layout(&bbox, 4, 100.0);
        m.set_weights(vec![1.0]);
    }
}
