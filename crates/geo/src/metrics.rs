//! Evaluation metrics of the paper: Mean / Median distance error, @3km /
//! @5km accuracy (Table III–IV) and Radius Density Precision (Figure 5).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::mixture::GaussianMixture;
use crate::point::Point;

/// The distance-based metric block the paper reports for every method:
/// mean error, median error, and the fraction of tweets within 3 km / 5 km
/// of the prediction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistanceReport {
    /// Mean haversine error, km.
    pub mean_km: f64,
    /// Median haversine error, km.
    pub median_km: f64,
    /// Fraction of tweets with error ≤ 3 km.
    pub at_3km: f64,
    /// Fraction of tweets with error ≤ 5 km.
    pub at_5km: f64,
    /// Number of evaluated tweets.
    pub n: usize,
    /// Fraction of the test set the method could predict at all (Hyper-local
    /// abstains on tweets without geo-specific n-grams; everything else
    /// covers 1.0).
    pub coverage: f64,
}

impl DistanceReport {
    /// Computes the report from `(predicted, truth)` pairs with full
    /// coverage. Returns `None` for an empty input.
    pub fn from_pairs(pairs: &[(Point, Point)]) -> Option<Self> {
        Self::from_pairs_with_coverage(pairs, 1.0)
    }

    /// Computes the report from `(predicted, truth)` pairs, recording the
    /// fraction of the full test set those pairs represent.
    pub fn from_pairs_with_coverage(pairs: &[(Point, Point)], coverage: f64) -> Option<Self> {
        if pairs.is_empty() {
            return None;
        }
        let mut errors = crate::simd::haversine_km_batch(pairs);
        errors.sort_by(f64::total_cmp);
        let n = errors.len();
        let mean = errors.iter().sum::<f64>() / n as f64;
        let median =
            if n % 2 == 1 { errors[n / 2] } else { (errors[n / 2 - 1] + errors[n / 2]) / 2.0 };
        let at = |r: f64| errors.iter().filter(|&&e| e <= r).count() as f64 / n as f64;
        Some(Self {
            mean_km: mean,
            median_km: median,
            at_3km: at(3.0),
            at_5km: at(5.0),
            n,
            coverage,
        })
    }

    /// Fraction of tweets within an arbitrary radius (for radius sweeps).
    pub fn fraction_within(pairs: &[(Point, Point)], radius_km: f64) -> f64 {
        if pairs.is_empty() {
            return 0.0;
        }
        let errors = crate::simd::haversine_km_batch(pairs);
        errors.iter().filter(|&&e| e <= radius_km).count() as f64 / pairs.len() as f64
    }
}

/// Radius Density Precision at radius `r`: the average probability mass the
/// predicted mixture assigns within `r` km of the true location.
///
/// This is the density-aware metric of Figure 5 (see DESIGN.md §1 for the
/// reconstruction note): a method that merely lands its point estimate near
/// the truth but spreads its density region-wide scores poorly, while a
/// confident, correct mixture scores near 1. Monotone non-decreasing in `r`
/// by construction.
///
/// `samples_per_tweet` Monte-Carlo draws per prediction; the RNG is seeded
/// for reproducibility.
pub fn rdp(
    predictions: &[(GaussianMixture, Point)],
    radius_km: f64,
    samples_per_tweet: usize,
    seed: u64,
) -> f64 {
    if predictions.is_empty() {
        return 0.0;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let total: f64 = predictions
        .iter()
        .map(|(mix, truth)| mix.mass_within_km(truth, radius_km, samples_per_tweet, &mut rng))
        .sum();
    total / predictions.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::BivariateGaussian;

    fn pairs() -> Vec<(Point, Point)> {
        let truth = Point::new(40.7, -74.0);
        // Errors of roughly 0, ~2.2km, ~4.5km, ~11km.
        vec![
            (truth, truth),
            (Point::new(40.72, -74.0), truth),
            (Point::new(40.74, -74.0), truth),
            (Point::new(40.80, -74.0), truth),
        ]
    }

    #[test]
    fn report_from_empty_is_none() {
        assert!(DistanceReport::from_pairs(&[]).is_none());
    }

    #[test]
    fn report_basic_quantities() {
        let r = DistanceReport::from_pairs(&pairs()).unwrap();
        assert_eq!(r.n, 4);
        assert_eq!(r.coverage, 1.0);
        assert!(r.mean_km > 0.0);
        assert!((r.at_3km - 0.5).abs() < 1e-12, "at3 {}", r.at_3km);
        assert!((r.at_5km - 0.75).abs() < 1e-12, "at5 {}", r.at_5km);
        // Median of [0, 2.2, 4.5, 11.1] ≈ (2.2+4.5)/2.
        assert!(r.median_km > 2.0 && r.median_km < 4.6);
    }

    #[test]
    fn report_is_permutation_invariant() {
        let mut p = pairs();
        let a = DistanceReport::from_pairs(&p).unwrap();
        p.reverse();
        let b = DistanceReport::from_pairs(&p).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn median_odd_count() {
        let truth = Point::new(0.0, 0.0);
        let prs = vec![
            (Point::new(0.0, 0.0), truth),
            (Point::new(0.01, 0.0), truth),
            (Point::new(1.0, 0.0), truth),
        ];
        let r = DistanceReport::from_pairs(&prs).unwrap();
        assert!((r.median_km - Point::new(0.01, 0.0).haversine_km(&truth)).abs() < 1e-9);
    }

    #[test]
    fn coverage_is_recorded() {
        let r = DistanceReport::from_pairs_with_coverage(&pairs(), 0.84).unwrap();
        assert!((r.coverage - 0.84).abs() < 1e-12);
    }

    #[test]
    fn fraction_within_monotone_in_radius() {
        let p = pairs();
        let f1 = DistanceReport::fraction_within(&p, 1.0);
        let f5 = DistanceReport::fraction_within(&p, 5.0);
        let f50 = DistanceReport::fraction_within(&p, 50.0);
        assert!(f1 <= f5 && f5 <= f50);
        assert_eq!(f50, 1.0);
    }

    #[test]
    fn rdp_confident_correct_beats_diffuse() {
        let truth = Point::new(40.7, -74.0);
        let confident = GaussianMixture::single(BivariateGaussian::isotropic(truth, 0.005));
        let diffuse = GaussianMixture::single(BivariateGaussian::isotropic(truth, 0.5));
        let hi = rdp(&[(confident, truth)], 3.0, 2000, 9);
        let lo = rdp(&[(diffuse, truth)], 3.0, 2000, 9);
        assert!(hi > 0.9, "hi {hi}");
        assert!(lo < 0.2, "lo {lo}");
    }

    #[test]
    fn rdp_monotone_in_radius() {
        let truth = Point::new(40.7, -74.0);
        let mix = GaussianMixture::new(vec![
            (0.6, BivariateGaussian::isotropic(truth, 0.05)),
            (0.4, BivariateGaussian::isotropic(Point::new(40.8, -73.9), 0.05)),
        ]);
        let preds = vec![(mix, truth)];
        let r1 = rdp(&preds, 1.0, 3000, 5);
        let r5 = rdp(&preds, 5.0, 3000, 5);
        let r30 = rdp(&preds, 30.0, 3000, 5);
        assert!(r1 <= r5 + 0.02 && r5 <= r30 + 0.02, "{r1} {r5} {r30}");
        assert!(r30 > 0.95);
    }

    #[test]
    fn rdp_empty_is_zero() {
        assert_eq!(rdp(&[], 3.0, 100, 0), 0.0);
    }

    #[test]
    fn rdp_is_deterministic_given_seed() {
        let truth = Point::new(40.7, -74.0);
        let mix = GaussianMixture::single(BivariateGaussian::isotropic(truth, 0.05));
        let preds = vec![(mix, truth)];
        assert_eq!(rdp(&preds, 3.0, 500, 77), rdp(&preds, 3.0, 500, 77));
    }
}
