//! Runtime-detected AVX2+FMA vector kernels for the geographic hot path:
//! batched haversine distances and Gaussian-mixture density evaluation.
//!
//! Unlike the `edge-tensor` kernels — which are bit-for-bit identical to
//! their scalar references — these kernels are **accuracy-gated, not
//! bitwise**: the scalar path calls libm (`exp`, `sin`, `cos`, `asin`)
//! element by element, so a vector replacement necessarily evaluates its own
//! polynomials. The polynomial designs below keep the drift far under the
//! gates the property tests assert (relative density drift and per-pair
//! distance drift ≤ 1e-9; end-to-end `mean_km` drift ≤ 1e-6 km):
//!
//! * `exp4` — `exp(x) = 2^k · exp(r)` with `r = x − k·ln 2` computed against
//!   a hi/lo split of `LN_2`, and `exp(r)` a degree-13 Taylor polynomial
//!   (|r| ≤ ln2/2 puts the truncation error near 4e-18 relative).
//! * `sin4` / `cos4` — quadrant reduction `y = x − j·π/2` (hi/lo split of
//!   `FRAC_PI_2`; haversine arguments satisfy |x| ≤ π so j ∈ [−2, 2]) and
//!   degree-13/14 Taylor polynomials on |y| ≤ π/4 (truncation ≲ 3e-14).
//!
//! Every polynomial coefficient is an exact small-integer reciprocal
//! (`1.0 / 5040.0`, …) or a `std::f64::consts` value — nothing is a
//! transcribed decimal — so the accuracy property tests in
//! `tests/simd_accuracy.rs` are a real check of the algorithm, not of a
//! constant table. The final `asin` of the haversine stays scalar libm: it
//! runs once per pair, after the vector passes have done the heavy lifting.
//!
//! Detection mirrors `edge-tensor`: one cached `is_x86_feature_detected!`
//! probe, the same `EDGE_NO_SIMD` escape hatch (the two crates cannot share
//! the cache — `edge-geo` does not depend on `edge-tensor` — but they read
//! the same contract), and a thread-local [`with_scalar_kernels`] override
//! for A/B tests. With SIMD off, every caller runs the untouched scalar
//! code, byte-identical to the engine before this module existed.

use std::sync::OnceLock;

use crate::point::Point;

/// Process-wide availability: AVX2+FMA present and `EDGE_NO_SIMD` unset.
pub fn simd_available() -> bool {
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        match std::env::var("EDGE_NO_SIMD") {
            Ok(v) if !v.is_empty() && v != "0" => return false,
            _ => {}
        }
        detect()
    })
}

#[cfg(target_arch = "x86_64")]
fn detect() -> bool {
    is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
}

#[cfg(not(target_arch = "x86_64"))]
fn detect() -> bool {
    false
}

thread_local! {
    static FORCE_SCALAR: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// True when the vector kernels will actually run on this thread.
pub fn simd_active() -> bool {
    simd_available() && !FORCE_SCALAR.with(|f| f.get())
}

/// Runs `f` with the scalar geographic kernels, regardless of hardware —
/// the per-thread analogue of `EDGE_NO_SIMD` used by the accuracy tests and
/// the benchmark's scalar leg.
pub fn with_scalar_kernels<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            FORCE_SCALAR.with(|c| c.set(self.0));
        }
    }
    let _restore = FORCE_SCALAR.with(|c| Restore(c.replace(true)));
    f()
}

/// Haversine distances for a batch of `(predicted, truth)` pairs, in km.
///
/// With the vector kernels active the degree→radian conversion, the
/// `sin`/`cos` evaluations and the haversine algebra run four pairs at a
/// time; the final `2R·asin(√a)` is one scalar libm call per pair. Without
/// them this is exactly the scalar [`Point::haversine_km`] map.
pub fn haversine_km_batch(pairs: &[(Point, Point)]) -> Vec<f64> {
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        let mut out = vec![0.0; pairs.len()];
        let mut i = 0;
        while i + 4 <= pairs.len() {
            let asin_arg = unsafe { avx2::haversine4_asin_arg(&pairs[i..i + 4]) };
            for (o, arg) in out[i..i + 4].iter_mut().zip(asin_arg) {
                *o = 2.0 * crate::EARTH_RADIUS_KM * arg.asin();
            }
            i += 4;
        }
        for (o, (p, t)) in out[i..].iter_mut().zip(&pairs[i..]) {
            *o = p.haversine_km(t);
        }
        return out;
    }
    pairs.iter().map(|(p, t)| p.haversine_km(t)).collect()
}

/// Offsets of the structure-of-arrays fields inside [`MixtureEval`]'s flat
/// buffer, each a `lanes`-long block: weight, μ_lat, μ_lon, 1/σ₁, 1/σ₂, ρ,
/// 1/(1−ρ²), and the log normalizer of each component.
#[cfg(target_arch = "x86_64")]
mod field {
    pub const W: usize = 0;
    pub const MLAT: usize = 1;
    pub const MLON: usize = 2;
    pub const IS1: usize = 3;
    pub const IS2: usize = 4;
    pub const RHO: usize = 5;
    pub const IMR: usize = 6;
    pub const LNORM: usize = 7;
    pub const COUNT: usize = 8;
}

#[cfg(target_arch = "x86_64")]
thread_local! {
    /// Recycled SoA buffer so steady-state `mode()` calls allocate nothing.
    /// `Cell` take/put instead of `RefCell` keeps nested evaluators safe.
    static EVAL_SCRATCH: std::cell::Cell<Option<Vec<f64>>> =
        const { std::cell::Cell::new(None) };
}

/// A structure-of-arrays view of a [`crate::GaussianMixture`] for the
/// vectorized mode search: per-component parameters are laid out field-major
/// (zero-weight-padded to a multiple of 4 lanes) with the log normalizer
/// precomputed once, instead of re-deriving `ln(2π σ₁ σ₂ √(1−ρ²))` on every
/// density query as the scalar path does.
///
/// Exposed (hidden) so the accuracy property tests can compare it against
/// the scalar evaluator directly; production code reaches it only through
/// `GaussianMixture::mode`.
#[doc(hidden)]
pub struct MixtureEval {
    #[cfg(target_arch = "x86_64")]
    buf: Vec<f64>,
    #[cfg(target_arch = "x86_64")]
    lanes: usize,
}

#[cfg(target_arch = "x86_64")]
impl MixtureEval {
    /// Builds the SoA view, or `None` when the vector kernels are inactive
    /// (the caller then keeps its scalar path).
    pub fn new(mix: &crate::GaussianMixture) -> Option<Self> {
        if !simd_active() {
            return None;
        }
        let m = mix.len();
        let lanes = m.div_ceil(4) * 4;
        let mut buf = EVAL_SCRATCH.with(|c| c.take()).unwrap_or_default();
        buf.clear();
        buf.resize(field::COUNT * lanes, 0.0);
        // Benign padding: weight 0 kills the padded lanes, and unit σ with
        // ρ = 0 keeps their (discarded) intermediate math finite.
        for l in m..lanes {
            buf[field::IS1 * lanes + l] = 1.0;
            buf[field::IS2 * lanes + l] = 1.0;
            buf[field::IMR * lanes + l] = 1.0;
        }
        for (k, (w, g)) in mix.iter().enumerate() {
            let one_m_r2 = 1.0 - g.rho * g.rho;
            buf[field::W * lanes + k] = w;
            buf[field::MLAT * lanes + k] = g.mu.lat;
            buf[field::MLON * lanes + k] = g.mu.lon;
            buf[field::IS1 * lanes + k] = 1.0 / g.sigma_lat;
            buf[field::IS2 * lanes + k] = 1.0 / g.sigma_lon;
            buf[field::RHO * lanes + k] = g.rho;
            buf[field::IMR * lanes + k] = 1.0 / one_m_r2;
            buf[field::LNORM * lanes + k] =
                -(2.0 * std::f64::consts::PI * g.sigma_lat * g.sigma_lon * one_m_r2.sqrt()).ln();
        }
        Some(Self { buf, lanes })
    }

    /// Mixture density at `p` (the vector analogue of Eq. 6).
    pub fn pdf(&self, p: &Point) -> f64 {
        unsafe { avx2::mixture_pdf(&self.buf, self.lanes, p.lat, p.lon) }
    }

    /// Weight-summed density gradient at `p`, `(Σ wₖ ∂pdfₖ/∂lat, …∂lon)` —
    /// the quantity the Eq.-14 gradient ascent consumes per step.
    pub fn grad(&self, p: &Point) -> (f64, f64) {
        unsafe { avx2::mixture_grad(&self.buf, self.lanes, p.lat, p.lon) }
    }
}

#[cfg(target_arch = "x86_64")]
impl Drop for MixtureEval {
    fn drop(&mut self) {
        EVAL_SCRATCH.with(|c| c.set(Some(std::mem::take(&mut self.buf))));
    }
}

#[cfg(not(target_arch = "x86_64"))]
impl MixtureEval {
    pub fn new(_mix: &crate::GaussianMixture) -> Option<Self> {
        None
    }

    pub fn pdf(&self, _p: &Point) -> f64 {
        unreachable!("MixtureEval cannot be constructed on this architecture")
    }

    pub fn grad(&self, _p: &Point) -> (f64, f64) {
        unreachable!("MixtureEval cannot be constructed on this architecture")
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::*;

    use super::field;
    use crate::point::Point;

    const ROUND_NEAREST: i32 = _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC;

    /// Splits a `std` constant into a 32-bit-mantissa head (whose products
    /// with small integers are exact) and the residual tail.
    fn split(c: f64) -> (f64, f64) {
        let hi = f64::from_bits(c.to_bits() & 0xFFFF_FFFF_0000_0000);
        (hi, c - hi)
    }

    /// Sums the four lanes of a vector.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn hsum(v: __m256d) -> f64 {
        let lo = _mm256_castpd256_pd128(v);
        let hi = _mm256_extractf128_pd::<1>(v);
        let s = _mm_add_pd(lo, hi);
        let h = _mm_unpackhi_pd(s, s);
        _mm_cvtsd_f64(_mm_add_sd(s, h))
    }

    /// `exp(x)` per lane: `2^k · P(x − k·ln 2)` with a degree-13 Taylor
    /// polynomial. Inputs are clamped to ±[708, 709] (beyond which the
    /// result saturates to 0 / the largest finite scale; mixture
    /// log-densities never reach the upper clamp).
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn exp4(x: __m256d) -> __m256d {
        let (ln2_hi, ln2_lo) = split(std::f64::consts::LN_2);
        let x = _mm256_max_pd(_mm256_min_pd(x, _mm256_set1_pd(709.0)), _mm256_set1_pd(-708.0));
        let k = _mm256_round_pd::<ROUND_NEAREST>(_mm256_mul_pd(
            x,
            _mm256_set1_pd(std::f64::consts::LOG2_E),
        ));
        let r = _mm256_fnmadd_pd(k, _mm256_set1_pd(ln2_hi), x);
        let r = _mm256_fnmadd_pd(k, _mm256_set1_pd(ln2_lo), r);
        // exp(r) = 1 + r + r²/2! + … + r¹³/13!, Horner inward-out.
        let mut p = _mm256_set1_pd(1.0 / 6_227_020_800.0); // 1/13!
        for c in [
            1.0 / 479_001_600.0, // 1/12!
            1.0 / 39_916_800.0,  // 1/11!
            1.0 / 3_628_800.0,   // 1/10!
            1.0 / 362_880.0,     // 1/9!
            1.0 / 40_320.0,      // 1/8!
            1.0 / 5_040.0,       // 1/7!
            1.0 / 720.0,         // 1/6!
            1.0 / 120.0,         // 1/5!
            1.0 / 24.0,          // 1/4!
            1.0 / 6.0,           // 1/3!
            1.0 / 2.0,           // 1/2!
            1.0,
            1.0,
        ] {
            p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(c));
        }
        // 2^k via direct exponent-field construction (k ∈ [−1022, 1023]
        // after the input clamp, so the biased exponent stays normal).
        let ki = _mm256_cvtepi32_epi64(_mm256_cvtpd_epi32(k));
        let scale = _mm256_castsi256_pd(_mm256_slli_epi64::<52>(_mm256_add_epi64(
            ki,
            _mm256_set1_epi64x(1023),
        )));
        _mm256_mul_pd(p, scale)
    }

    /// Quadrant reduction: returns `(y, j)` with `x = y + j·π/2`,
    /// |y| ≤ π/4. Valid for the haversine range |x| ≤ π (j ∈ [−2, 2]).
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn reduce_pi2(x: __m256d) -> (__m256d, __m256i) {
        let (p2_hi, p2_lo) = split(std::f64::consts::FRAC_PI_2);
        let j = _mm256_round_pd::<ROUND_NEAREST>(_mm256_mul_pd(
            x,
            _mm256_set1_pd(std::f64::consts::FRAC_2_PI),
        ));
        let y = _mm256_fnmadd_pd(j, _mm256_set1_pd(p2_hi), x);
        let y = _mm256_fnmadd_pd(j, _mm256_set1_pd(p2_lo), y);
        (y, _mm256_cvtepi32_epi64(_mm256_cvtpd_epi32(j)))
    }

    /// sin(y) for |y| ≤ π/4: `y + y³·Q(y²)`, degree 13.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn sin_poly(y: __m256d, w: __m256d) -> __m256d {
        let mut q = _mm256_set1_pd(1.0 / 6_227_020_800.0); // 1/13!
        for c in [
            -1.0 / 39_916_800.0, // −1/11!
            1.0 / 362_880.0,     // 1/9!
            -1.0 / 5_040.0,      // −1/7!
            1.0 / 120.0,         // 1/5!
            -1.0 / 6.0,          // −1/3!
        ] {
            q = _mm256_fmadd_pd(q, w, _mm256_set1_pd(c));
        }
        _mm256_fmadd_pd(_mm256_mul_pd(y, w), q, y)
    }

    /// cos(y) for |y| ≤ π/4: `1 + y²·Q(y²)`, degree 14.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn cos_poly(w: __m256d) -> __m256d {
        let mut q = _mm256_set1_pd(-1.0 / 87_178_291_200.0); // −1/14!
        for c in [
            1.0 / 479_001_600.0, // 1/12!
            -1.0 / 3_628_800.0,  // −1/10!
            1.0 / 40_320.0,      // 1/8!
            -1.0 / 720.0,        // −1/6!
            1.0 / 24.0,          // 1/4!
            -1.0 / 2.0,          // −1/2!
        ] {
            q = _mm256_fmadd_pd(q, w, _mm256_set1_pd(c));
        }
        _mm256_fmadd_pd(w, q, _mm256_set1_pd(1.0))
    }

    /// Lane mask selecting lanes where `j & bit` is set.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn bit_mask(j: __m256i, bit: i64) -> __m256d {
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(
            _mm256_and_si256(j, _mm256_set1_epi64x(bit)),
            _mm256_set1_epi64x(bit),
        ))
    }

    /// sin(x) per lane for |x| ≤ π.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn sin4(x: __m256d) -> __m256d {
        let (y, j) = reduce_pi2(x);
        let w = _mm256_mul_pd(y, y);
        let res = _mm256_blendv_pd(sin_poly(y, w), cos_poly(w), bit_mask(j, 1));
        // sin(y + jπ/2) flips sign when j ≡ 2, 3 (mod 4).
        let sign = _mm256_and_pd(bit_mask(j, 2), _mm256_set1_pd(-0.0));
        _mm256_xor_pd(res, sign)
    }

    /// cos(x) per lane for |x| ≤ π.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn cos4(x: __m256d) -> __m256d {
        let (y, j) = reduce_pi2(x);
        let w = _mm256_mul_pd(y, y);
        let res = _mm256_blendv_pd(cos_poly(w), sin_poly(y, w), bit_mask(j, 1));
        // cos(y + jπ/2) flips sign when j ≡ 1, 2 (mod 4).
        let j1 = _mm256_add_epi64(j, _mm256_set1_epi64x(1));
        let sign = _mm256_and_pd(bit_mask(j1, 2), _mm256_set1_pd(-0.0));
        _mm256_xor_pd(res, sign)
    }

    /// The vector passes of the haversine for four pairs: deg→rad, the four
    /// trig evaluations, the `a`-term algebra, and `√a` clamped to 1.
    /// Returns the per-pair `asin` argument; the caller applies the scalar
    /// `2R·asin` finish.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA (guaranteed by the [`super::simd_active`] gate) and
    /// exactly four pairs.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn haversine4_asin_arg(pairs: &[(Point, Point)]) -> [f64; 4] {
        debug_assert_eq!(pairs.len(), 4);
        let rad = _mm256_set1_pd(std::f64::consts::PI / 180.0);
        let pick = |f: fn(&(Point, Point)) -> f64| {
            _mm256_mul_pd(
                _mm256_setr_pd(f(&pairs[0]), f(&pairs[1]), f(&pairs[2]), f(&pairs[3])),
                rad,
            )
        };
        let lat1 = pick(|p| p.0.lat);
        let lon1 = pick(|p| p.0.lon);
        let lat2 = pick(|p| p.1.lat);
        let lon2 = pick(|p| p.1.lon);
        let half = _mm256_set1_pd(0.5);
        let sdlat = sin4(_mm256_mul_pd(_mm256_sub_pd(lat2, lat1), half));
        let sdlon = sin4(_mm256_mul_pd(_mm256_sub_pd(lon2, lon1), half));
        let coscos = _mm256_mul_pd(cos4(lat1), cos4(lat2));
        let a = _mm256_fmadd_pd(_mm256_mul_pd(coscos, sdlon), sdlon, _mm256_mul_pd(sdlat, sdlat));
        let arg = _mm256_min_pd(_mm256_sqrt_pd(a), _mm256_set1_pd(1.0));
        let mut out = [0.0; 4];
        _mm256_storeu_pd(out.as_mut_ptr(), arg);
        out
    }

    /// Per-chunk mixture intermediates shared by the pdf and gradient
    /// kernels: scaled offsets, densities, and the SoA field loads.
    struct Lanes {
        w: __m256d,
        dxs: __m256d,
        dys: __m256d,
        rho: __m256d,
        is1: __m256d,
        is2: __m256d,
        imr: __m256d,
        dens: __m256d,
    }

    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn load_lanes(buf: &[f64], lanes: usize, c: usize, lat: f64, lon: f64) -> Lanes {
        let at = |f: usize| _mm256_loadu_pd(buf.as_ptr().add(f * lanes + c));
        let is1 = at(field::IS1);
        let is2 = at(field::IS2);
        let rho = at(field::RHO);
        let imr = at(field::IMR);
        let dxs = _mm256_mul_pd(_mm256_sub_pd(_mm256_set1_pd(lat), at(field::MLAT)), is1);
        let dys = _mm256_mul_pd(_mm256_sub_pd(_mm256_set1_pd(lon), at(field::MLON)), is2);
        // mahalanobis² = (dxs² − 2ρ·dxs·dys + dys²) / (1 − ρ²)
        let cross = _mm256_mul_pd(_mm256_mul_pd(rho, dxs), dys);
        let quad = _mm256_sub_pd(
            _mm256_fmadd_pd(dxs, dxs, _mm256_mul_pd(dys, dys)),
            _mm256_add_pd(cross, cross),
        );
        let logp =
            _mm256_fnmadd_pd(_mm256_set1_pd(0.5), _mm256_mul_pd(quad, imr), at(field::LNORM));
        Lanes { w: at(field::W), dxs, dys, rho, is1, is2, imr, dens: exp4(logp) }
    }

    /// Mixture density `Σ wₖ·pdfₖ(p)` over the SoA buffer.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA and a buffer laid out by `MixtureEval::new`
    /// (`field::COUNT` blocks of `lanes` f64s, `lanes` a multiple of 4).
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn mixture_pdf(buf: &[f64], lanes: usize, lat: f64, lon: f64) -> f64 {
        let mut acc = _mm256_setzero_pd();
        let mut c = 0;
        while c < lanes {
            let l = load_lanes(buf, lanes, c, lat, lon);
            acc = _mm256_fmadd_pd(l.w, l.dens, acc);
            c += 4;
        }
        hsum(acc)
    }

    /// Weight-summed density gradient `(Σ wₖ ∂pdfₖ/∂lat, Σ wₖ ∂pdfₖ/∂lon)`.
    ///
    /// # Safety
    ///
    /// Same contract as [`mixture_pdf`].
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn mixture_grad(buf: &[f64], lanes: usize, lat: f64, lon: f64) -> (f64, f64) {
        let mut acc_lat = _mm256_setzero_pd();
        let mut acc_lon = _mm256_setzero_pd();
        let mut c = 0;
        while c < lanes {
            let l = load_lanes(buf, lanes, c, lat, lon);
            let wd = _mm256_mul_pd(l.w, l.dens);
            // ∂/∂lat of −½·mahal² = −(dxs − ρ·dys)·(1/σ₁)/(1−ρ²), and
            // symmetrically for lon; fnmadd supplies the leading minus.
            let glat =
                _mm256_mul_pd(_mm256_mul_pd(_mm256_fnmadd_pd(l.rho, l.dys, l.dxs), l.is1), l.imr);
            let glon =
                _mm256_mul_pd(_mm256_mul_pd(_mm256_fnmadd_pd(l.rho, l.dxs, l.dys), l.is2), l.imr);
            acc_lat = _mm256_fnmadd_pd(glat, wd, acc_lat);
            acc_lon = _mm256_fnmadd_pd(glon, wd, acc_lon);
            c += 4;
        }
        (hsum(acc_lat), hsum(acc_lon))
    }
}
