//! Geographic and statistical substrate for the EDGE reproduction.
//!
//! This crate provides everything the EDGE model, its baselines and its
//! evaluation harness need to reason about *where* things are:
//!
//! * [`point::Point`] — WGS-84 latitude/longitude points with haversine
//!   distances and a local planar (km) projection,
//! * [`bbox::BBox`] — axis-aligned bounding boxes over lat/lon,
//! * [`grid::Grid`] — uniform cell grids used by the grid-classifier
//!   baselines (NaiveBayes, Kullback-Leibler, LocKDE),
//! * [`gaussian::BivariateGaussian`] — the bivariate normal with the
//!   `(σ₁, σ₂, ρ)` covariance parameterization of the paper's Eq. 5,
//!   including confidence ellipses for the Figure-7 use case,
//! * [`mixture::GaussianMixture`] — the paper's prediction object: pdf,
//!   log-pdf, sampling, density-argmax mode extraction (Eq. 14), and
//!   probability-mass-within-radius queries (the RDP metric),
//! * [`vmf::VonMisesFisher`] — the mixture-of-von-Mises–Fisher output
//!   distribution used by the UnicodeCNN baseline,
//! * [`kde::Kde2d`] / [`kde::TermKde`] — grid-smoothing and per-term
//!   adaptive-bandwidth kernel density estimation,
//! * [`metrics`] — Mean / Median / @3km / @5km and Radius Density
//!   Precision, the evaluation metrics of Tables III–IV and Figure 5,
//! * [`heatmap`] — density heatmaps for the Figure 1/8/9 use cases,
//! * [`simd`] — runtime-detected AVX2+FMA kernels for batched haversine
//!   and mixture-density evaluation, accuracy-gated against the scalar
//!   paths (`EDGE_NO_SIMD` disables them).
//!
//! Everything is deterministic given an explicit seed; nothing here reads
//! clocks or global RNG state.

pub mod bbox;
pub mod gaussian;
pub mod grid;
pub mod heatmap;
pub mod kde;
pub mod metrics;
pub mod mixture;
pub mod partition;
pub mod point;
pub mod quadtree;
pub mod simd;
pub mod vmf;

pub use bbox::BBox;
pub use gaussian::{BivariateGaussian, ConfidenceEllipse};
pub use grid::{Cell, Grid};
pub use heatmap::Heatmap;
pub use kde::{Kde2d, TermKde};
pub use metrics::{rdp, DistanceReport};
pub use mixture::GaussianMixture;
pub use partition::Partition;
pub use point::Point;
pub use quadtree::Quadtree;
pub use simd::{haversine_km_batch, simd_active, simd_available, with_scalar_kernels};
pub use vmf::{MvMfMixture, VonMisesFisher};

/// Mean Earth radius in kilometres (IUGG value), used by all haversine math.
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// Kilometres per degree of latitude (spherical approximation).
pub const KM_PER_DEG_LAT: f64 = EARTH_RADIUS_KM * std::f64::consts::PI / 180.0;
