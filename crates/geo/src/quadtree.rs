//! Quadtree spatial partitioning.
//!
//! The paper's related work (Ajao et al.) proposes replacing the uniform
//! grid of the Hulden-et-al. classifiers with a *non-uniform, data-adaptive*
//! quadtree partition: dense areas get fine cells, sparse areas coarse
//! ones. This module implements that partition as an extension; the grid
//! baselines accept either partitioning through [`crate::grid::Grid`]-like
//! cell queries.

use serde::{Deserialize, Serialize};

use crate::bbox::BBox;
use crate::point::Point;

/// A quadtree over a bounding box, built by recursively splitting any cell
/// holding more than `max_points` training points (until `max_depth`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Quadtree {
    bbox: BBox,
    /// Flattened nodes; node 0 is the root.
    nodes: Vec<QuadNode>,
    /// Leaf-node indices in stable order; the "cells" of the partition.
    leaves: Vec<usize>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct QuadNode {
    bbox: BBox,
    /// Child node indices (NW, NE, SW, SE) or `None` for leaves.
    children: Option<[usize; 4]>,
    /// Position of this leaf in [`Quadtree::leaves`] (leaves only).
    leaf_rank: Option<usize>,
}

impl Quadtree {
    /// Builds the partition from training points. `max_points` bounds the
    /// occupancy of a leaf before it splits; `max_depth` bounds recursion
    /// (a depth of 8 over a metro box gives ~200 m minimum cells).
    pub fn build(bbox: BBox, points: &[Point], max_points: usize, max_depth: usize) -> Self {
        assert!(max_points >= 1, "max_points must be positive");
        let mut tree = Self { bbox, nodes: Vec::new(), leaves: Vec::new() };
        let idxs: Vec<usize> = (0..points.len()).collect();
        tree.split(bbox, points, idxs, max_points, max_depth);
        // Assign leaf ranks.
        let mut leaves = Vec::new();
        for (i, n) in tree.nodes.iter().enumerate() {
            if n.children.is_none() {
                leaves.push(i);
            }
        }
        for (rank, &node) in leaves.iter().enumerate() {
            tree.nodes[node].leaf_rank = Some(rank);
        }
        tree.leaves = leaves;
        tree
    }

    fn split(
        &mut self,
        bbox: BBox,
        points: &[Point],
        idxs: Vec<usize>,
        max_points: usize,
        depth_left: usize,
    ) -> usize {
        let node_idx = self.nodes.len();
        self.nodes.push(QuadNode { bbox, children: None, leaf_rank: None });
        if idxs.len() <= max_points || depth_left == 0 {
            return node_idx;
        }
        let c = bbox.center();
        let quads = [
            BBox::new(c.lat, bbox.max_lat, bbox.min_lon, c.lon), // NW
            BBox::new(c.lat, bbox.max_lat, c.lon, bbox.max_lon), // NE
            BBox::new(bbox.min_lat, c.lat, bbox.min_lon, c.lon), // SW
            BBox::new(bbox.min_lat, c.lat, c.lon, bbox.max_lon), // SE
        ];
        let mut parts: [Vec<usize>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        for i in idxs {
            let p = &points[i];
            let north = p.lat >= c.lat;
            let east = p.lon >= c.lon;
            let q = match (north, east) {
                (true, false) => 0,
                (true, true) => 1,
                (false, false) => 2,
                (false, true) => 3,
            };
            parts[q].push(i);
        }
        let mut children = [0usize; 4];
        for (q, part) in parts.into_iter().enumerate() {
            children[q] = self.split(quads[q], points, part, max_points, depth_left - 1);
        }
        self.nodes[node_idx].children = Some(children);
        node_idx
    }

    /// Number of leaf cells.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// True when the tree has no cells (never: the root is always a cell).
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// The overall bounding box.
    pub fn bbox(&self) -> &BBox {
        &self.bbox
    }

    /// The leaf-cell index containing `p` (points outside the box are
    /// clamped to it first).
    pub fn cell_of(&self, p: &Point) -> usize {
        let p = self.bbox.clamp(p);
        let mut node = 0usize;
        while let Some(children) = self.nodes[node].children {
            let c = self.nodes[node].bbox.center();
            let q = match (p.lat >= c.lat, p.lon >= c.lon) {
                (true, false) => 0,
                (true, true) => 1,
                (false, false) => 2,
                (false, true) => 3,
            };
            node = children[q];
        }
        self.nodes[node].leaf_rank.expect("leaf has a rank")
    }

    /// The bounding box of leaf cell `cell`.
    pub fn cell_bbox(&self, cell: usize) -> &BBox {
        &self.nodes[self.leaves[cell]].bbox
    }

    /// The centre of leaf cell `cell`.
    pub fn center_of(&self, cell: usize) -> Point {
        self.cell_bbox(cell).center()
    }

    /// Maximum depth actually reached.
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[QuadNode], i: usize) -> usize {
            match nodes[i].children {
                None => 0,
                Some(cs) => 1 + cs.iter().map(|&c| walk(nodes, c)).max().unwrap_or(0),
            }
        }
        walk(&self.nodes, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn bbox() -> BBox {
        BBox::new(40.0, 41.0, -75.0, -74.0)
    }

    fn clustered_points() -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(0);
        let mut pts = Vec::new();
        // Dense cluster in the NE quadrant, sparse elsewhere.
        for _ in 0..500 {
            pts.push(Point::new(rng.gen_range(40.7..40.9), rng.gen_range(-74.3..-74.1)));
        }
        for _ in 0..20 {
            pts.push(Point::new(rng.gen_range(40.0..40.5), rng.gen_range(-75.0..-74.5)));
        }
        pts
    }

    #[test]
    fn empty_input_is_single_cell() {
        let t = Quadtree::build(bbox(), &[], 10, 8);
        assert_eq!(t.len(), 1);
        assert_eq!(t.depth(), 0);
        assert_eq!(t.cell_of(&Point::new(40.5, -74.5)), 0);
    }

    #[test]
    fn dense_regions_get_finer_cells() {
        let pts = clustered_points();
        let t = Quadtree::build(bbox(), &pts, 20, 10);
        assert!(t.len() > 10, "cells: {}", t.len());
        // The dense-cluster cell is smaller than the sparse-region cell.
        let dense_cell = t.cell_of(&Point::new(40.8, -74.2));
        let sparse_cell = t.cell_of(&Point::new(40.2, -74.8));
        let area = |b: &BBox| b.lat_span() * b.lon_span();
        assert!(
            area(t.cell_bbox(dense_cell)) < area(t.cell_bbox(sparse_cell)),
            "dense {:?} sparse {:?}",
            t.cell_bbox(dense_cell),
            t.cell_bbox(sparse_cell)
        );
    }

    #[test]
    fn occupancy_bound_is_respected() {
        let pts = clustered_points();
        let max_points = 25;
        let t = Quadtree::build(bbox(), &pts, max_points, 12);
        let mut occupancy = vec![0usize; t.len()];
        for p in &pts {
            occupancy[t.cell_of(p)] += 1;
        }
        for (cell, &n) in occupancy.iter().enumerate() {
            assert!(n <= max_points, "cell {cell} holds {n} points");
        }
    }

    #[test]
    fn max_depth_caps_recursion() {
        let pts = vec![Point::new(40.5, -74.5); 1000]; // unsplittable pile
        let t = Quadtree::build(bbox(), &pts, 10, 3);
        assert!(t.depth() <= 3);
    }

    #[test]
    fn cell_of_is_consistent_with_cell_bbox() {
        let pts = clustered_points();
        let t = Quadtree::build(bbox(), &pts, 30, 8);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let p = Point::new(rng.gen_range(40.0..41.0), rng.gen_range(-75.0..-74.0));
            let cell = t.cell_of(&p);
            assert!(t.cell_bbox(cell).contains(&p), "{p:?} not in its cell bbox");
        }
    }

    #[test]
    fn leaves_partition_the_box() {
        // Cell centres map back to their own cells, and total leaf area
        // equals the root area.
        let pts = clustered_points();
        let t = Quadtree::build(bbox(), &pts, 40, 8);
        let mut total_area = 0.0;
        for cell in 0..t.len() {
            assert_eq!(t.cell_of(&t.center_of(cell)), cell);
            let b = t.cell_bbox(cell);
            total_area += b.lat_span() * b.lon_span();
        }
        let root_area = bbox().lat_span() * bbox().lon_span();
        assert!((total_area - root_area).abs() < 1e-9 * root_area);
    }

    #[test]
    fn outside_points_clamp() {
        let t = Quadtree::build(bbox(), &clustered_points(), 30, 8);
        let cell = t.cell_of(&Point::new(0.0, 0.0));
        assert!(cell < t.len());
    }
}
