//! Kernel density estimation over geography.
//!
//! Two estimators live here:
//!
//! * [`Kde2d`] — smooths a grid histogram with an isotropic 2-D Gaussian
//!   kernel. This is the "kde2d" replacement for count-based cell estimates
//!   in the `NaiveBayes_kde2d` / `KullbackLeibler_kde2d` baselines of
//!   Hulden et al.
//! * [`TermKde`] — a per-term point-set KDE with an *adaptive* bandwidth
//!   driven by the term's location indicativeness, as used by LocKDE
//!   (Ozdikis et al.): spatially focused terms get narrow kernels, diffuse
//!   terms get wide ones.

use serde::{Deserialize, Serialize};

use crate::grid::Grid;
use crate::point::Point;

/// Isotropic Gaussian smoothing of grid-cell counts.
#[derive(Debug, Clone)]
pub struct Kde2d {
    grid: Grid,
    /// Kernel standard deviation measured in cells.
    bandwidth_cells: f64,
}

impl Kde2d {
    /// Creates a smoother over `grid` with kernel σ of `bandwidth_cells`
    /// cells. Panics on a non-positive bandwidth.
    pub fn new(grid: Grid, bandwidth_cells: f64) -> Self {
        assert!(bandwidth_cells > 0.0, "bandwidth must be positive");
        Self { grid, bandwidth_cells }
    }

    /// The underlying grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Smooths raw cell `counts` (row-major, length `grid.len()`) into a
    /// dense non-negative surface of the same shape. Mass is preserved up to
    /// edge truncation; the result is *not* normalized (callers normalize as
    /// needed for their probability model).
    ///
    /// Implemented as a separable convolution — two 1-D Gaussian passes —
    /// so a 100×100 grid smooths in O(cells × kernel_width).
    pub fn smooth(&self, counts: &[f64]) -> Vec<f64> {
        assert_eq!(counts.len(), self.grid.len(), "counts length must match grid");
        let (rows, cols) = (self.grid.rows(), self.grid.cols());
        let kernel = self.kernel_1d();
        let half = kernel.len() / 2;

        // Pass 1: along columns (latitude direction).
        let mut tmp = vec![0.0; counts.len()];
        for r in 0..rows {
            for c in 0..cols {
                let mut acc = 0.0;
                for (k, &kw) in kernel.iter().enumerate() {
                    let rr = r as isize + k as isize - half as isize;
                    if rr >= 0 && (rr as usize) < rows {
                        acc += kw * counts[rr as usize * cols + c];
                    }
                }
                tmp[r * cols + c] = acc;
            }
        }
        // Pass 2: along rows (longitude direction).
        let mut out = vec![0.0; counts.len()];
        for r in 0..rows {
            for c in 0..cols {
                let mut acc = 0.0;
                for (k, &kw) in kernel.iter().enumerate() {
                    let cc = c as isize + k as isize - half as isize;
                    if cc >= 0 && (cc as usize) < cols {
                        acc += kw * tmp[r * cols + cc as usize];
                    }
                }
                out[r * cols + c] = acc;
            }
        }
        out
    }

    fn kernel_1d(&self) -> Vec<f64> {
        let sigma = self.bandwidth_cells;
        let half = (3.0 * sigma).ceil() as usize;
        let mut k: Vec<f64> = (0..=2 * half)
            .map(|i| {
                let x = i as f64 - half as f64;
                (-0.5 * (x / sigma).powi(2)).exp()
            })
            .collect();
        let sum: f64 = k.iter().sum();
        for v in &mut k {
            *v /= sum;
        }
        k
    }
}

/// A per-term kernel density estimate with indicativeness-adaptive
/// bandwidth, following LocKDE.
///
/// A term's *location indicativeness* is measured by the spatial dispersion
/// of its training occurrences: the mean distance to the term's spatial
/// centroid. The kernel bandwidth interpolates between `min_bw_km` (for
/// perfectly focused terms) and `max_bw_km` (for terms scattered across the
/// whole region).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TermKde {
    points: Vec<Point>,
    bandwidth_km: f64,
}

impl TermKde {
    /// Fits the KDE for one term from its training occurrence locations.
    ///
    /// `min_bw_km`/`max_bw_km` bound the adaptive bandwidth; `region_scale_km`
    /// is the characteristic size of the study region (dispersion is measured
    /// relative to it). Panics on an empty point set or inverted bounds.
    pub fn fit(points: Vec<Point>, min_bw_km: f64, max_bw_km: f64, region_scale_km: f64) -> Self {
        assert!(!points.is_empty(), "TermKde needs at least one occurrence");
        assert!(
            0.0 < min_bw_km && min_bw_km <= max_bw_km,
            "bandwidth bounds must satisfy 0 < min <= max"
        );
        assert!(region_scale_km > 0.0);
        let c = crate::point::centroid(&points).expect("non-empty");
        let dispersion =
            points.iter().map(|p| p.haversine_km(&c)).sum::<f64>() / points.len() as f64;
        // Indicativeness in [0,1]: 1 = perfectly focused, 0 = region-wide.
        let indicativeness = 1.0 - (dispersion / region_scale_km).min(1.0);
        let bandwidth_km = max_bw_km - indicativeness * (max_bw_km - min_bw_km);
        Self { points, bandwidth_km }
    }

    /// The adaptive bandwidth chosen at fit time, km.
    pub fn bandwidth_km(&self) -> f64 {
        self.bandwidth_km
    }

    /// Number of training occurrences.
    pub fn n_points(&self) -> usize {
        self.points.len()
    }

    /// Density at `p` (per km², normalized per kernel so densities from
    /// different terms are comparable).
    pub fn density(&self, p: &Point) -> f64 {
        let bw = self.bandwidth_km;
        let norm = 1.0 / (2.0 * std::f64::consts::PI * bw * bw * self.points.len() as f64);
        self.points
            .iter()
            .map(|q| {
                let d = p.haversine_km(q);
                norm * (-0.5 * (d / bw).powi(2)).exp()
            })
            .sum()
    }

    /// Evaluates the density at every cell centre of `grid` (row-major).
    pub fn density_grid(&self, grid: &Grid) -> Vec<f64> {
        grid.cells().map(|c| self.density(&grid.center_of(c))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bbox::BBox;

    fn test_grid() -> Grid {
        Grid::new(BBox::new(40.0, 41.0, -75.0, -74.0), 20, 20)
    }

    #[test]
    fn smooth_preserves_mass_in_interior() {
        let g = test_grid();
        let kde = Kde2d::new(g.clone(), 1.0);
        let mut counts = vec![0.0; g.len()];
        counts[g.len() / 2 + 10] = 100.0; // interior impulse
        let smoothed = kde.smooth(&counts);
        let total: f64 = smoothed.iter().sum();
        assert!((total - 100.0).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn smooth_spreads_an_impulse() {
        let g = test_grid();
        let kde = Kde2d::new(g.clone(), 1.5);
        let mut counts = vec![0.0; g.len()];
        let idx = 10 * 20 + 10;
        counts[idx] = 1.0;
        let s = kde.smooth(&counts);
        assert!(s[idx] < 1.0);
        assert!(s[idx] > s[idx + 1] * 0.999, "peak stays at impulse");
        assert!(s[idx + 1] > 0.0 && s[idx + 20] > 0.0, "neighbors receive mass");
        // Symmetry of the kernel.
        assert!((s[idx + 1] - s[idx - 1]).abs() < 1e-12);
        assert!((s[idx + 20] - s[idx - 20]).abs() < 1e-12);
    }

    #[test]
    fn smooth_is_linear() {
        let g = test_grid();
        let kde = Kde2d::new(g.clone(), 1.0);
        let a: Vec<f64> = (0..g.len()).map(|i| (i % 7) as f64).collect();
        let b: Vec<f64> = (0..g.len()).map(|i| (i % 3) as f64).collect();
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let sa = kde.smooth(&a);
        let sb = kde.smooth(&b);
        let ssum = kde.smooth(&sum);
        for i in 0..g.len() {
            assert!((ssum[i] - sa[i] - sb[i]).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn kde2d_rejects_zero_bandwidth() {
        let _ = Kde2d::new(test_grid(), 0.0);
    }

    #[test]
    fn focused_term_gets_narrow_bandwidth() {
        let focus = Point::new(40.7, -74.0);
        let tight: Vec<Point> =
            (0..50).map(|i| Point::new(focus.lat + 1e-4 * i as f64, focus.lon)).collect();
        let spread: Vec<Point> =
            (0..50).map(|i| Point::new(40.0 + 0.02 * i as f64, -75.0 + 0.02 * i as f64)).collect();
        let k_tight = TermKde::fit(tight, 0.5, 10.0, 50.0);
        let k_spread = TermKde::fit(spread, 0.5, 10.0, 50.0);
        assert!(k_tight.bandwidth_km() < k_spread.bandwidth_km());
        assert!((k_tight.bandwidth_km() - 0.5).abs() < 0.1, "{}", k_tight.bandwidth_km());
    }

    #[test]
    fn term_density_peaks_near_occurrences() {
        let pts = vec![Point::new(40.7, -74.0); 10];
        let k = TermKde::fit(pts, 1.0, 5.0, 50.0);
        let near = k.density(&Point::new(40.7, -74.0));
        let far = k.density(&Point::new(40.95, -74.5));
        assert!(near > far * 10.0);
    }

    #[test]
    fn term_density_integrates_to_one() {
        // Integrate over a fine local grid in km space.
        let center = Point::new(40.5, -74.5);
        let k = TermKde::fit(vec![center], 2.0, 2.0, 50.0);
        let step_km = 0.25;
        let half = 60; // ±15 km
        let mut mass = 0.0;
        for i in -half..=half {
            for j in -half..=half {
                let p = Point::from_local_km(&center, i as f64 * step_km, j as f64 * step_km);
                mass += k.density(&p) * step_km * step_km;
            }
        }
        assert!((mass - 1.0).abs() < 0.02, "mass {mass}");
    }

    #[test]
    fn density_grid_matches_pointwise() {
        let g = test_grid();
        let k = TermKde::fit(vec![Point::new(40.5, -74.5)], 1.0, 5.0, 50.0);
        let dg = k.density_grid(&g);
        let cell = g.cell_at(37);
        assert!((dg[37] - k.density(&g.center_of(cell))).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "at least one occurrence")]
    fn term_kde_rejects_empty() {
        let _ = TermKde::fit(vec![], 1.0, 5.0, 50.0);
    }
}
