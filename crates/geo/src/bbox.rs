//! Axis-aligned geographic bounding boxes.

use serde::{Deserialize, Serialize};

use crate::point::Point;

/// An axis-aligned bounding box over latitude/longitude.
///
/// Used to delimit the metro-area study regions (the paper's New York and
/// Los Angeles Metropolitan Areas) and to lay out the uniform grids of the
/// grid-classifier baselines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BBox {
    /// Southern edge (minimum latitude, degrees).
    pub min_lat: f64,
    /// Northern edge (maximum latitude, degrees).
    pub max_lat: f64,
    /// Western edge (minimum longitude, degrees).
    pub min_lon: f64,
    /// Eastern edge (maximum longitude, degrees).
    pub max_lon: f64,
}

impl BBox {
    /// Creates a bounding box. Panics if the box is inverted or degenerate.
    pub fn new(min_lat: f64, max_lat: f64, min_lon: f64, max_lon: f64) -> Self {
        assert!(min_lat < max_lat, "inverted latitude range");
        assert!(min_lon < max_lon, "inverted longitude range");
        Self { min_lat, max_lat, min_lon, max_lon }
    }

    /// The smallest box containing every point in `points`.
    /// Returns `None` for an empty slice.
    pub fn enclosing(points: &[Point]) -> Option<Self> {
        let first = points.first()?;
        let mut b =
            Self { min_lat: first.lat, max_lat: first.lat, min_lon: first.lon, max_lon: first.lon };
        for p in &points[1..] {
            b.min_lat = b.min_lat.min(p.lat);
            b.max_lat = b.max_lat.max(p.lat);
            b.min_lon = b.min_lon.min(p.lon);
            b.max_lon = b.max_lon.max(p.lon);
        }
        // Degenerate boxes (all points identical along an axis) are widened a
        // hair so downstream grids stay well-formed.
        if b.min_lat == b.max_lat {
            b.min_lat -= 1e-6;
            b.max_lat += 1e-6;
        }
        if b.min_lon == b.max_lon {
            b.min_lon -= 1e-6;
            b.max_lon += 1e-6;
        }
        Some(b)
    }

    /// The geometric centre of the box.
    pub fn center(&self) -> Point {
        Point::new((self.min_lat + self.max_lat) / 2.0, (self.min_lon + self.max_lon) / 2.0)
    }

    /// Whether `p` lies inside the box (inclusive of edges).
    pub fn contains(&self, p: &Point) -> bool {
        p.lat >= self.min_lat
            && p.lat <= self.max_lat
            && p.lon >= self.min_lon
            && p.lon <= self.max_lon
    }

    /// Clamps `p` to the box.
    pub fn clamp(&self, p: &Point) -> Point {
        Point::new(p.lat.clamp(self.min_lat, self.max_lat), p.lon.clamp(self.min_lon, self.max_lon))
    }

    /// Latitude extent in degrees.
    pub fn lat_span(&self) -> f64 {
        self.max_lat - self.min_lat
    }

    /// Longitude extent in degrees.
    pub fn lon_span(&self) -> f64 {
        self.max_lon - self.min_lon
    }

    /// Approximate box dimensions in kilometres `(east_west, north_south)`.
    pub fn dims_km(&self) -> (f64, f64) {
        let c = self.center();
        let sw = Point::new(self.min_lat, self.min_lon);
        let se = Point::new(self.min_lat, self.max_lon);
        let nw = Point::new(self.max_lat, self.min_lon);
        let _ = c;
        (sw.haversine_km(&se), sw.haversine_km(&nw))
    }

    /// Expands every edge outward by `margin_deg` degrees.
    pub fn expand(&self, margin_deg: f64) -> Self {
        Self {
            min_lat: self.min_lat - margin_deg,
            max_lat: self.max_lat + margin_deg,
            min_lon: self.min_lon - margin_deg,
            max_lon: self.max_lon + margin_deg,
        }
    }

    /// Maps a unit-square coordinate `(u, v) ∈ [0,1]²` to a point in the box
    /// (`u` along longitude, `v` along latitude).
    pub fn lerp(&self, u: f64, v: f64) -> Point {
        Point::new(self.min_lat + v * self.lat_span(), self.min_lon + u * self.lon_span())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nyc_box() -> BBox {
        BBox::new(40.49, 40.92, -74.27, -73.68)
    }

    #[test]
    #[should_panic(expected = "inverted latitude")]
    fn inverted_lat_panics() {
        let _ = BBox::new(41.0, 40.0, -74.0, -73.0);
    }

    #[test]
    fn contains_center_and_corners() {
        let b = nyc_box();
        assert!(b.contains(&b.center()));
        assert!(b.contains(&Point::new(b.min_lat, b.min_lon)));
        assert!(b.contains(&Point::new(b.max_lat, b.max_lon)));
        assert!(!b.contains(&Point::new(39.0, -74.0)));
    }

    #[test]
    fn clamp_moves_outside_point_to_edge() {
        let b = nyc_box();
        let p = b.clamp(&Point::new(50.0, -80.0));
        assert_eq!(p, Point::new(b.max_lat, b.min_lon));
        let inside = Point::new(40.7, -74.0);
        assert_eq!(b.clamp(&inside), inside);
    }

    #[test]
    fn enclosing_covers_all_points() {
        let pts = [Point::new(40.5, -74.2), Point::new(40.9, -73.7), Point::new(40.7, -74.0)];
        let b = BBox::enclosing(&pts).unwrap();
        for p in &pts {
            assert!(b.contains(p));
        }
        assert_eq!(b.min_lat, 40.5);
        assert_eq!(b.max_lon, -73.7);
    }

    #[test]
    fn enclosing_degenerate_is_widened() {
        let p = Point::new(40.7, -74.0);
        let b = BBox::enclosing(&[p, p]).unwrap();
        assert!(b.lat_span() > 0.0);
        assert!(b.lon_span() > 0.0);
        assert!(b.contains(&p));
    }

    #[test]
    fn enclosing_empty_is_none() {
        assert!(BBox::enclosing(&[]).is_none());
    }

    #[test]
    fn dims_km_reasonable_for_nyc() {
        let (ew, ns) = nyc_box().dims_km();
        // ~0.59 deg lon at 40.5N is ~50km; 0.43 deg lat is ~48km.
        assert!((ew - 50.0).abs() < 3.0, "ew {ew}");
        assert!((ns - 48.0).abs() < 3.0, "ns {ns}");
    }

    #[test]
    fn lerp_hits_corners_and_center() {
        let b = nyc_box();
        assert_eq!(b.lerp(0.0, 0.0), Point::new(b.min_lat, b.min_lon));
        assert_eq!(b.lerp(1.0, 1.0), Point::new(b.max_lat, b.max_lon));
        assert_eq!(b.lerp(0.5, 0.5), b.center());
    }

    #[test]
    fn expand_grows_box() {
        let b = nyc_box().expand(0.1);
        assert!(b.contains(&Point::new(40.45, -74.3)));
    }
}
