//! WGS-84 points and distance computations.

use serde::{Deserialize, Serialize};

use crate::{EARTH_RADIUS_KM, KM_PER_DEG_LAT};

/// A geographic point: latitude and longitude in decimal degrees.
///
/// Latitude is the first coordinate throughout this workspace, matching the
/// paper's convention that a mixture mean `μ` is "represented by latitude and
/// longitude" (Eq. 5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lon: f64,
}

impl Point {
    /// Creates a point from latitude and longitude in degrees.
    pub const fn new(lat: f64, lon: f64) -> Self {
        Self { lat, lon }
    }

    /// Great-circle distance to `other` in kilometres (haversine formula).
    pub fn haversine_km(&self, other: &Point) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().min(1.0).asin()
    }

    /// Projects `self` into a local planar frame centred at `origin`,
    /// returning `(east_km, north_km)`.
    ///
    /// Accurate to well under 0.1% over metro-area extents (≤ ~100 km),
    /// which is the scale of every dataset in the paper.
    pub fn to_local_km(&self, origin: &Point) -> (f64, f64) {
        let east = (self.lon - origin.lon) * KM_PER_DEG_LAT * origin.lat.to_radians().cos();
        let north = (self.lat - origin.lat) * KM_PER_DEG_LAT;
        (east, north)
    }

    /// Inverse of [`Point::to_local_km`].
    pub fn from_local_km(origin: &Point, east: f64, north: f64) -> Self {
        let lat = origin.lat + north / KM_PER_DEG_LAT;
        let lon = origin.lon + east / (KM_PER_DEG_LAT * origin.lat.to_radians().cos());
        Self { lat, lon }
    }

    /// Linear interpolation between two points (degree space).
    pub fn lerp(&self, other: &Point, t: f64) -> Self {
        Self {
            lat: self.lat + (other.lat - self.lat) * t,
            lon: self.lon + (other.lon - self.lon) * t,
        }
    }

    /// Converts the point to a 3-D unit vector on the sphere, the
    /// representation the MvMF baseline works in.
    pub fn to_unit_vec(&self) -> [f64; 3] {
        let lat = self.lat.to_radians();
        let lon = self.lon.to_radians();
        [lat.cos() * lon.cos(), lat.cos() * lon.sin(), lat.sin()]
    }

    /// Converts a 3-D unit vector back to a point. The vector need not be
    /// perfectly normalized; it is renormalized internally.
    pub fn from_unit_vec(v: [f64; 3]) -> Self {
        let norm = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
        let (x, y, z) = (v[0] / norm, v[1] / norm, v[2] / norm);
        Self { lat: z.asin().to_degrees(), lon: y.atan2(x).to_degrees() }
    }

    /// True when both coordinates are finite.
    pub fn is_finite(&self) -> bool {
        self.lat.is_finite() && self.lon.is_finite()
    }
}

/// The centroid of a non-empty slice of points (degree-space mean).
///
/// Returns `None` for an empty slice.
pub fn centroid(points: &[Point]) -> Option<Point> {
    if points.is_empty() {
        return None;
    }
    let n = points.len() as f64;
    let (mut lat, mut lon) = (0.0, 0.0);
    for p in points {
        lat += p.lat;
        lon += p.lon;
    }
    Some(Point::new(lat / n, lon / n))
}

#[cfg(test)]
mod tests {
    use super::*;

    const NYC: Point = Point::new(40.7128, -74.0060);
    const LA: Point = Point::new(34.0522, -118.2437);

    #[test]
    fn haversine_zero_for_identical_points() {
        assert_eq!(NYC.haversine_km(&NYC), 0.0);
    }

    #[test]
    fn haversine_is_symmetric() {
        assert!((NYC.haversine_km(&LA) - LA.haversine_km(&NYC)).abs() < 1e-9);
    }

    #[test]
    fn haversine_nyc_la_matches_known_distance() {
        // Known great-circle distance NYC <-> LA is ~3936 km.
        let d = NYC.haversine_km(&LA);
        assert!((d - 3936.0).abs() < 10.0, "got {d}");
    }

    #[test]
    fn haversine_one_degree_latitude() {
        let a = Point::new(40.0, -74.0);
        let b = Point::new(41.0, -74.0);
        let d = a.haversine_km(&b);
        assert!((d - KM_PER_DEG_LAT).abs() < 0.05, "got {d}");
    }

    #[test]
    fn local_projection_round_trips() {
        let p = Point::new(40.75, -73.98);
        let (e, n) = p.to_local_km(&NYC);
        let back = Point::from_local_km(&NYC, e, n);
        assert!((back.lat - p.lat).abs() < 1e-10);
        assert!((back.lon - p.lon).abs() < 1e-10);
    }

    #[test]
    fn local_projection_distance_agrees_with_haversine() {
        let p = Point::new(40.85, -73.90);
        let (e, n) = p.to_local_km(&NYC);
        let planar = (e * e + n * n).sqrt();
        let sphere = p.haversine_km(&NYC);
        assert!((planar - sphere).abs() / sphere < 5e-3, "planar {planar} vs haversine {sphere}");
    }

    #[test]
    fn unit_vec_round_trips() {
        for p in [NYC, LA, Point::new(-33.86, 151.21), Point::new(0.0, 0.0)] {
            let back = Point::from_unit_vec(p.to_unit_vec());
            assert!((back.lat - p.lat).abs() < 1e-9, "{p:?} -> {back:?}");
            assert!((back.lon - p.lon).abs() < 1e-9, "{p:?} -> {back:?}");
        }
    }

    #[test]
    fn unit_vec_is_normalized() {
        let v = NYC.to_unit_vec();
        let norm = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
        assert!((norm - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let mid = NYC.lerp(&LA, 0.5);
        assert_eq!(NYC.lerp(&LA, 0.0), NYC);
        assert_eq!(NYC.lerp(&LA, 1.0), LA);
        assert!((mid.lat - (NYC.lat + LA.lat) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn centroid_of_empty_is_none() {
        assert!(centroid(&[]).is_none());
    }

    #[test]
    fn centroid_of_single_point_is_itself() {
        assert_eq!(centroid(&[NYC]), Some(NYC));
    }

    #[test]
    fn centroid_averages() {
        let c = centroid(&[Point::new(0.0, 0.0), Point::new(2.0, 4.0)]).unwrap();
        assert_eq!(c, Point::new(1.0, 2.0));
    }
}
