//! Integration tests for the observability layer. The enable flags are
//! process-global, so each concern keeps to its own metric/span names and the
//! trace assertions live in a single test body.

use rayon::prelude::*;
use std::time::Duration;

use edge_obs::trace;

#[test]
fn concurrent_counter_increments_from_rayon_threads() {
    edge_obs::set_metrics_enabled(true);
    let c = edge_obs::metrics::counter("itest.concurrent.counter");
    let before = c.get();
    (0..64usize).into_par_iter().for_each(|_| {
        for _ in 0..1_000 {
            c.inc(1);
        }
    });
    assert_eq!(c.get() - before, 64_000, "relaxed increments must not be lost");
    let snap = edge_obs::metrics::snapshot();
    assert!(snap.counter("itest.concurrent.counter").unwrap() >= 64_000);
}

#[test]
fn span_nesting_self_time_and_jsonl_round_trip() {
    // One test body for all trace behavior: the enable flag is global, so a
    // second #[test] flipping it would race this one.
    edge_obs::set_trace_enabled(false);
    {
        let _span = edge_obs::span("itest.disabled");
    }
    assert!(trace::records().iter().all(|r| r.name != "itest.disabled"));

    edge_obs::set_trace_enabled(true);
    trace::reset();
    {
        let _outer = edge_obs::span("itest.outer");
        std::thread::sleep(Duration::from_millis(15));
        {
            let _inner = edge_obs::span("itest.inner");
            std::thread::sleep(Duration::from_millis(15));
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    edge_obs::set_trace_enabled(false);

    let records = trace::records();
    let outer = records.iter().find(|r| r.name == "itest.outer").expect("outer recorded");
    let inner = records.iter().find(|r| r.name == "itest.inner").expect("inner recorded");
    assert_eq!(outer.parent, 0, "outer is a root span");
    assert_eq!(inner.parent, outer.id, "nesting gives the inner span its parent");
    assert_eq!(inner.thread, outer.thread);
    assert!(inner.start_us >= outer.start_us);
    assert!(inner.dur_us >= 14_000, "inner covers its sleep: {}", inner.dur_us);
    assert!(outer.dur_us >= inner.dur_us + 15_000, "outer covers both sleeps");

    // Self time = total minus direct children, and self times partition the
    // root total exactly.
    let profile = trace::profile_of(&records);
    let outer_row = profile.rows.iter().find(|r| r.name == "itest.outer").unwrap();
    let inner_row = profile.rows.iter().find(|r| r.name == "itest.inner").unwrap();
    assert_eq!(outer_row.calls, 1);
    assert_eq!(outer_row.total_us, outer.dur_us);
    assert_eq!(outer_row.self_us, outer.dur_us - inner.dur_us);
    assert_eq!(inner_row.self_us, inner.dur_us);
    let self_sum: u64 = profile.rows.iter().map(|r| r.self_us).sum();
    assert_eq!(self_sum, profile.root_total_us);
    assert!(profile.coverage(&["itest.outer", "itest.inner"]) > 0.999);
    let table = profile.render();
    assert!(table.contains("itest.outer") && table.contains("traced wall time"));

    // JSONL round trip preserves every field.
    let dump = trace::dump_jsonl();
    let parsed = trace::parse_jsonl(&dump).expect("dump parses back");
    assert_eq!(parsed.len(), records.len());
    for (p, r) in parsed.iter().zip(&records) {
        assert_eq!((p.id, p.parent, p.thread), (r.id, r.parent, r.thread));
        assert_eq!(p.name, r.name);
        assert_eq!((p.start_us, p.dur_us), (r.start_us, r.dur_us));
    }
    assert!(trace::parse_jsonl("{not json}\n").is_none());
}
