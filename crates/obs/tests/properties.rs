//! Property tests for the metrics layer's concurrency contract: a
//! histogram's buckets — and therefore its estimated quantiles, which are
//! a pure function of the buckets — must not depend on how recording was
//! interleaved across threads, and `metrics::reset` must zero labeled
//! families along with everything else.

use std::sync::Mutex;

use proptest::prelude::*;

/// The registry is process-global and `reset` sweeps all of it, so the
/// two properties below must not interleave.
static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

/// A fresh labeled histogram cell, distinguished by a leaked unique label
/// (labels are `&'static str`; leaking in tests is fine).
fn fresh_cell(tag: &str) -> (&'static edge_obs::Histogram, &'static str) {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let id = NEXT.fetch_add(1, Ordering::Relaxed);
    let label: &'static str = Box::leak(format!("{tag}-{id}").into_boxed_str());
    let cell = edge_obs::labels::histogram_family(
        "obs_properties_us",
        "Scratch histogram cells for the concurrency property tests.",
    )
    .with(&[("case", label)]);
    (cell, label)
}

fn record_across(cell: &'static edge_obs::Histogram, values: &[f64], threads: usize) {
    std::thread::scope(|scope| {
        let chunk = values.len().div_ceil(threads).max(1);
        for part in values.chunks(chunk) {
            scope.spawn(move || {
                for &v in part {
                    cell.record(v);
                }
            });
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn bucket_counts_and_quantiles_are_interleaving_invariant(
        values in proptest::collection::vec(0.0f64..1e12, 1..400),
    ) {
        let _guard = REGISTRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _lease = edge_obs::metrics_lease();

        let (serial, serial_label) = fresh_cell("serial");
        for &v in &values {
            serial.record(v);
        }

        for threads in [1usize, 2, 8] {
            let (cell, label) = fresh_cell("conc");
            record_across(cell, &values, threads);
            let snap = edge_obs::metrics::snapshot();
            let serial_snap = snap
                .labeled_histogram("obs_properties_us", &[("case", serial_label)])
                .expect("serial cell snapshotted");
            let conc_snap = snap
                .labeled_histogram("obs_properties_us", &[("case", label)])
                .expect("concurrent cell snapshotted");

            prop_assert_eq!(conc_snap.count, values.len() as u64);
            prop_assert_eq!(
                &conc_snap.buckets,
                &serial_snap.buckets,
                "bucket counts must not depend on thread interleaving ({} threads)",
                threads
            );
            for q in [0.5, 0.95, 0.99] {
                prop_assert_eq!(
                    conc_snap.quantile(q),
                    serial_snap.quantile(q),
                    "q{} must match ({} threads)",
                    q,
                    threads
                );
            }
            // The CAS-accumulated sum can differ only by float addition
            // order.
            let tol = 1e-9 * serial_snap.sum.abs().max(1.0);
            prop_assert!((conc_snap.sum - serial_snap.sum).abs() <= tol);
        }
    }

    #[test]
    fn reset_zeroes_labeled_families(
        counts in proptest::collection::vec(1u64..50, 1..8),
        sample in 0.0f64..1e9,
    ) {
        let _guard = REGISTRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _lease = edge_obs::metrics_lease();

        let counter_family = edge_obs::labels::counter_family(
            "obs_properties_events",
            "Scratch labeled counters for the reset property test.",
        );
        static LANES: [&str; 8] = ["l0", "l1", "l2", "l3", "l4", "l5", "l6", "l7"];
        for (i, &n) in counts.iter().enumerate() {
            counter_family.with(&[("lane", LANES[i])]).inc(n);
        }
        let (hist, _) = fresh_cell("reset");
        hist.record(sample);

        let snap = edge_obs::metrics::snapshot();
        prop_assert_eq!(
            snap.labeled_counter("obs_properties_events", &[("lane", "l0")]),
            Some(counts[0])
        );

        edge_obs::metrics::reset();
        let snap = edge_obs::metrics::snapshot();
        for family in &snap.counter_families {
            for cell in &family.cells {
                prop_assert_eq!(cell.value, 0, "counter cell survived reset");
            }
        }
        for family in &snap.histogram_families {
            for cell in &family.cells {
                prop_assert_eq!(cell.value.count, 0, "histogram cell survived reset");
                prop_assert_eq!(cell.value.sum, 0.0);
                prop_assert!(cell.value.buckets.iter().all(|&(_, n)| n == 0));
            }
        }
    }
}
