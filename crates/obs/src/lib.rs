//! # edge-obs: observability for the EDGE pipeline
//!
//! A small, dependency-light observability layer shared by every crate in the
//! workspace. It has three pillars:
//!
//! * **Metrics** ([`metrics`]): a global registry of named counters, gauges,
//!   and log-scale histograms. The hot path is lock-free — an increment is a
//!   relaxed atomic add on a handle cached at the call site via the
//!   [`counter!`] / [`gauge!`] / [`histogram!`] macros — and compiles down to
//!   a single branch on a relaxed load when metrics are disabled (the
//!   default). Snapshots ([`metrics::snapshot`]) are cheap, serializable, and
//!   [`metrics::reset`] rewinds everything to zero between benchmark runs.
//!
//! * **Tracing** ([`trace`]): RAII span timers ([`span`]) that record a
//!   thread-aware in-memory trace. Each span knows its parent (per-thread
//!   stack), so the trace can be dumped either as JSONL (one span per line,
//!   [`trace::dump_jsonl`]) or aggregated into a self-time / total-time
//!   profile table ([`trace::profile`], [`trace::Profile::render`]) that
//!   attributes wall time to named phases (`gcn`, `attention`, `mdn`,
//!   `matmul`, `sgns`, ...).
//!
//! * **Training telemetry** ([`telemetry`]): a sink for per-epoch training
//!   records (NLL, per-parameter-group gradient norms, learning rate,
//!   tweets/sec, epoch wall time) fed by `EdgeModel::train` and written as
//!   one JSONL file per run under `results/telemetry/`.
//!
//! All three pillars are **off by default** and enabled explicitly (for
//! example by the CLI's `--trace` / `--metrics-out` flags or the `profile`
//! subcommand), so library code can be instrumented unconditionally without
//! taxing ordinary runs:
//!
//! ```
//! edge_obs::set_metrics_enabled(true);
//! edge_obs::counter!("demo.calls").inc(1);
//! {
//!     edge_obs::set_trace_enabled(true);
//!     let _span = edge_obs::span("demo.phase");
//!     // ... timed work ...
//! }
//! let snap = edge_obs::metrics::snapshot();
//! assert_eq!(snap.counter("demo.calls"), Some(1));
//! ```

pub mod alloc;
pub mod labels;
pub mod metrics;
pub mod openmetrics;
pub mod ring;
pub mod slo;
pub mod telemetry;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, MetricsSnapshot};
pub use ring::{RequestRecord, RequestRing};
pub use slo::{SloConfig, SloStatus, SloTracker};
pub use telemetry::{EpochRecord, TrainTelemetry};
pub use trace::{span, Profile, SpanContext, SpanGuard};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

static METRICS_ENABLED: AtomicBool = AtomicBool::new(false);
static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);

/// Globally enable or disable metric recording. Disabled recording is a
/// relaxed load + branch (see `crates/bench/benches/obs_overhead.rs`).
pub fn set_metrics_enabled(enabled: bool) {
    METRICS_ENABLED.store(enabled, Ordering::Relaxed);
}

struct LeaseState {
    count: usize,
    prior: bool,
}

static LEASES: Mutex<LeaseState> = Mutex::new(LeaseState { count: 0, prior: false });

/// Enables metrics for as long as the returned lease lives. The first
/// outstanding lease saves the prior global state and enables; dropping
/// the last restores it. Refcounted rather than save/restore so embedded
/// servers running concurrently (the in-process test suites) cannot turn
/// each other's metrics off mid-flight.
#[must_use = "metrics are re-disabled when the lease is dropped"]
pub fn metrics_lease() -> MetricsLease {
    let mut state = LEASES.lock().unwrap_or_else(|e| e.into_inner());
    if state.count == 0 {
        state.prior = metrics_enabled();
        set_metrics_enabled(true);
    }
    state.count += 1;
    MetricsLease { _priv: () }
}

/// RAII handle returned by [`metrics_lease`].
pub struct MetricsLease {
    _priv: (),
}

impl Drop for MetricsLease {
    fn drop(&mut self) {
        let mut state = LEASES.lock().unwrap_or_else(|e| e.into_inner());
        state.count -= 1;
        if state.count == 0 {
            set_metrics_enabled(state.prior);
        }
    }
}

#[inline(always)]
pub fn metrics_enabled() -> bool {
    METRICS_ENABLED.load(Ordering::Relaxed)
}

/// Globally enable or disable span tracing.
pub fn set_trace_enabled(enabled: bool) {
    TRACE_ENABLED.store(enabled, Ordering::Relaxed);
}

#[inline(always)]
pub fn trace_enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

/// Writes progress lines to stderr so stdout stays machine-parseable.
/// The single chokepoint for human-facing progress output across the CLI and
/// bench binaries.
pub fn progress(msg: std::fmt::Arguments<'_>) {
    eprintln!("{msg}");
}

/// Progress reporting macro: formats like `println!` but writes to stderr.
#[macro_export]
macro_rules! progress {
    ($($arg:tt)*) => {
        $crate::progress(format_args!($($arg)*))
    };
}
