//! Labeled metric families: counters, gauges, and histograms keyed by a
//! small static label set (`endpoint`, `status`, `stage`, ...).
//!
//! A family is registered once by name; each distinct label combination
//! resolves to a leaked `&'static` cell, so the hot path is exactly the
//! same relaxed atomic op as the unlabeled metrics in [`crate::metrics`].
//! Resolution (`with`) takes a lock — call it once at startup and keep the
//! returned handle (the serving layer pre-resolves its whole
//! endpoint × status grid into a struct of handles).

use serde::Serialize;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};

/// One label combination: `(key, value)` pairs in declaration order.
pub type LabelPairs = Vec<(&'static str, &'static str)>;

macro_rules! family {
    ($Family:ident, $Metric:ident, $doc:literal) => {
        #[doc = $doc]
        pub struct $Family {
            name: &'static str,
            help: &'static str,
            cells: Mutex<HashMap<LabelPairs, &'static $Metric>>,
        }

        impl $Family {
            fn new(name: &'static str, help: &'static str) -> Self {
                Self { name, help, cells: Mutex::new(HashMap::new()) }
            }

            /// Resolves (or creates) the cell for `labels`. Takes a lock:
            /// resolve once and cache the `&'static` handle on hot paths.
            pub fn with(&self, labels: &[(&'static str, &'static str)]) -> &'static $Metric {
                let mut cells = self.cells.lock().unwrap();
                if let Some(cell) = cells.get(labels) {
                    return cell;
                }
                let handle: &'static $Metric = Box::leak(Box::default());
                cells.insert(labels.to_vec(), handle);
                handle
            }

            pub fn name(&self) -> &'static str {
                self.name
            }

            pub fn help(&self) -> &'static str {
                self.help
            }

            fn cells(&self) -> Vec<(LabelPairs, &'static $Metric)> {
                let mut cells: Vec<_> =
                    self.cells.lock().unwrap().iter().map(|(k, v)| (k.clone(), *v)).collect();
                cells.sort_by(|a, b| a.0.cmp(&b.0));
                cells
            }
        }
    };
}

family!(CounterFamily, Counter, "A counter family: one [`Counter`] per label combination.");
family!(GaugeFamily, Gauge, "A gauge family: one [`Gauge`] per label combination.");
family!(HistogramFamily, Histogram, "A histogram family: one [`Histogram`] per label combination.");

#[derive(Default)]
struct LabeledRegistry {
    counters: Mutex<HashMap<&'static str, &'static CounterFamily>>,
    gauges: Mutex<HashMap<&'static str, &'static GaugeFamily>>,
    histograms: Mutex<HashMap<&'static str, &'static HistogramFamily>>,
}

fn registry() -> &'static LabeledRegistry {
    static REGISTRY: OnceLock<LabeledRegistry> = OnceLock::new();
    REGISTRY.get_or_init(LabeledRegistry::default)
}

/// Looks up or creates the counter family `name` (`help` is kept from the
/// first registration).
pub fn counter_family(name: &'static str, help: &'static str) -> &'static CounterFamily {
    let mut map = registry().counters.lock().unwrap();
    map.entry(name).or_insert_with(|| Box::leak(Box::new(CounterFamily::new(name, help))))
}

/// Looks up or creates the gauge family `name`.
pub fn gauge_family(name: &'static str, help: &'static str) -> &'static GaugeFamily {
    let mut map = registry().gauges.lock().unwrap();
    map.entry(name).or_insert_with(|| Box::leak(Box::new(GaugeFamily::new(name, help))))
}

/// Looks up or creates the histogram family `name`.
pub fn histogram_family(name: &'static str, help: &'static str) -> &'static HistogramFamily {
    let mut map = registry().histograms.lock().unwrap();
    map.entry(name).or_insert_with(|| Box::leak(Box::new(HistogramFamily::new(name, help))))
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// One labeled counter cell in a snapshot.
#[derive(Debug, Clone, Serialize)]
pub struct LabeledCounterCell {
    pub labels: Vec<(String, String)>,
    pub value: u64,
}

/// One labeled gauge cell in a snapshot.
#[derive(Debug, Clone, Serialize)]
pub struct LabeledGaugeCell {
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

/// One labeled histogram cell in a snapshot.
#[derive(Debug, Clone, Serialize)]
pub struct LabeledHistogramCell {
    pub labels: Vec<(String, String)>,
    pub value: HistogramSnapshot,
}

/// Point-in-time copy of one counter family.
#[derive(Debug, Clone, Serialize)]
pub struct CounterFamilySnapshot {
    pub name: String,
    pub help: String,
    pub cells: Vec<LabeledCounterCell>,
}

/// Point-in-time copy of one gauge family.
#[derive(Debug, Clone, Serialize)]
pub struct GaugeFamilySnapshot {
    pub name: String,
    pub help: String,
    pub cells: Vec<LabeledGaugeCell>,
}

/// Point-in-time copy of one histogram family.
#[derive(Debug, Clone, Serialize)]
pub struct HistogramFamilySnapshot {
    pub name: String,
    pub help: String,
    pub cells: Vec<LabeledHistogramCell>,
}

fn owned(labels: &LabelPairs) -> Vec<(String, String)> {
    labels.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect()
}

/// Appends every labeled family to `snap` (called by [`crate::metrics::snapshot`]).
pub(crate) fn snapshot_into(snap: &mut crate::metrics::MetricsSnapshot) {
    let reg = registry();
    for family in reg.counters.lock().unwrap().values() {
        snap.counter_families.push(CounterFamilySnapshot {
            name: family.name.to_string(),
            help: family.help.to_string(),
            cells: family
                .cells()
                .iter()
                .map(|(labels, c)| LabeledCounterCell { labels: owned(labels), value: c.get() })
                .collect(),
        });
    }
    for family in reg.gauges.lock().unwrap().values() {
        snap.gauge_families.push(GaugeFamilySnapshot {
            name: family.name.to_string(),
            help: family.help.to_string(),
            cells: family
                .cells()
                .iter()
                .map(|(labels, g)| LabeledGaugeCell { labels: owned(labels), value: g.get() })
                .collect(),
        });
    }
    for family in reg.histograms.lock().unwrap().values() {
        snap.histogram_families.push(HistogramFamilySnapshot {
            name: family.name.to_string(),
            help: family.help.to_string(),
            cells: family
                .cells()
                .iter()
                .map(|(labels, h)| LabeledHistogramCell {
                    labels: owned(labels),
                    value: h.snapshot(),
                })
                .collect(),
        });
    }
    snap.counter_families.sort_by(|a, b| a.name.cmp(&b.name));
    snap.gauge_families.sort_by(|a, b| a.name.cmp(&b.name));
    snap.histogram_families.sort_by(|a, b| a.name.cmp(&b.name));
}

/// Zeroes every cell of every family (names and cells stay registered).
/// Called by [`crate::metrics::reset`].
pub(crate) fn reset_all() {
    let reg = registry();
    for family in reg.counters.lock().unwrap().values() {
        for (_, c) in family.cells() {
            c.reset();
        }
    }
    for family in reg.gauges.lock().unwrap().values() {
        for (_, g) in family.cells() {
            g.reset();
        }
    }
    for family in reg.histograms.lock().unwrap().values() {
        for (_, h) in family.cells() {
            h.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_labels_resolve_to_the_same_cell() {
        let fam = counter_family("labels.test.same", "test");
        let a = fam.with(&[("endpoint", "predict"), ("status", "200")]);
        let b = fam.with(&[("endpoint", "predict"), ("status", "200")]);
        let c = fam.with(&[("endpoint", "predict"), ("status", "429")]);
        assert!(std::ptr::eq(a, b), "identical labels must share a cell");
        assert!(!std::ptr::eq(a, c), "distinct labels must not share a cell");
    }

    #[test]
    fn families_are_registered_once() {
        let a = counter_family("labels.test.once", "first help wins");
        let b = counter_family("labels.test.once", "ignored");
        assert!(std::ptr::eq(a, b));
        assert_eq!(a.help(), "first help wins");
    }
}
