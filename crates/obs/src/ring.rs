//! A fixed-capacity, lock-free ring of compact per-request records.
//!
//! The serving layer pushes one [`RequestRecord`] per HTTP request —
//! always, not just when metrics are enabled, so the last N requests are
//! inspectable (`GET /debug/requests`) even on a production server that
//! never turned detailed telemetry on. Writers claim a slot with one
//! `fetch_add` and publish through a per-slot sequence number (a seqlock):
//! readers skip slots that are mid-write or were overwritten while being
//! read. A reader never blocks a writer and vice versa.
//!
//! The one caveat of any seqlock ring: if the ring wraps *while a single
//! record is still being written* (capacity pushes in the lifetime of one
//! ~100ns write), two writers can interleave on a slot and the loser's
//! record is dropped by the sequence check. With the default capacity of
//! 1024 that window is unreachable in practice.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Stages of the serve→predict pipeline, in request order. Indexes into
/// [`RequestRecord::stage_us`].
pub const STAGE_NAMES: [&str; N_STAGES] = ["parse", "queue", "batch", "inference", "serialize"];
/// Number of tracked stages.
pub const N_STAGES: usize = 5;
/// Index of the parse stage (request read → jobs submitted).
pub const STAGE_PARSE: usize = 0;
/// Index of the queue-wait stage (submit → batch pop).
pub const STAGE_QUEUE: usize = 1;
/// Index of the batch-assembly stage (pop → inference fan-out).
pub const STAGE_BATCH: usize = 2;
/// Index of the inference stage (model call → fragment rendered).
pub const STAGE_INFERENCE: usize = 3;
/// Index of the serialize stage (fragments → response flushed).
pub const STAGE_SERIALIZE: usize = 4;

/// One compact per-request record.
#[derive(Debug, Clone, Copy)]
pub struct RequestRecord {
    /// The request id (also echoed as `X-Request-Id` and tagged on spans).
    pub id: u64,
    /// Endpoint label (`predict`, `healthz`, ...).
    pub endpoint: &'static str,
    /// HTTP status the response carried.
    pub status: u16,
    /// Number of texts in the request (0 for non-predict endpoints).
    pub batch: u32,
    /// How many of those texts were answered from the response cache.
    pub cache_hits: u32,
    /// Per-stage wall micros, indexed like [`STAGE_NAMES`].
    pub stage_us: [u64; N_STAGES],
    /// End-to-end request micros (read → response flushed).
    pub total_us: u64,
}

impl Default for RequestRecord {
    fn default() -> Self {
        RequestRecord {
            id: 0,
            endpoint: "",
            status: 0,
            batch: 0,
            cache_hits: 0,
            stage_us: [0; N_STAGES],
            total_us: 0,
        }
    }
}

impl RequestRecord {
    /// One JSON object, keys stable — the line format of `/debug/requests`
    /// and the slow-request log.
    pub fn to_json(&self) -> String {
        let stages: Vec<String> = STAGE_NAMES
            .iter()
            .zip(self.stage_us)
            .map(|(name, us)| format!("\"{name}\":{us}"))
            .collect();
        format!(
            "{{\"id\":{},\"endpoint\":\"{}\",\"status\":{},\"batch\":{},\"cache_hits\":{},\"stage_us\":{{{}}},\"total_us\":{}}}",
            self.id,
            self.endpoint,
            self.status,
            self.batch,
            self.cache_hits,
            stages.join(","),
            self.total_us
        )
    }
}

struct Slot {
    /// Seqlock: `2k+1` while push `k` is writing, `2k+2` once published.
    seq: AtomicU64,
    data: UnsafeCell<RequestRecord>,
}

// SAFETY: concurrent access to `data` is guarded by the per-slot sequence
// protocol — readers discard any value whose surrounding sequence reads
// disagree or are odd (write in progress).
unsafe impl Sync for Slot {}

/// The ring itself. See the module docs for the concurrency contract.
pub struct RequestRing {
    slots: Box<[Slot]>,
    head: AtomicU64,
}

impl RequestRing {
    /// A ring holding the last `capacity` records (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RequestRing {
            slots: (0..capacity)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    data: UnsafeCell::new(RequestRecord::default()),
                })
                .collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Number of records ever pushed (not capped by capacity).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Appends a record, overwriting the oldest once full. Lock-free: one
    /// `fetch_add` plus two sequence stores and the payload copy.
    pub fn push(&self, record: RequestRecord) {
        let k = self.head.fetch_add(1, Ordering::AcqRel);
        let slot = &self.slots[(k % self.slots.len() as u64) as usize];
        slot.seq.store(2 * k + 1, Ordering::Release);
        // SAFETY: the odd sequence marks the slot as mid-write; readers
        // that observe it discard the payload.
        unsafe { std::ptr::write_volatile(slot.data.get(), record) };
        slot.seq.store(2 * k + 2, Ordering::Release);
    }

    /// The last `n` consistently-readable records, oldest first. Records
    /// overwritten or mid-write during the read are skipped, so under
    /// write pressure fewer than `n` may come back.
    pub fn recent(&self, n: usize) -> Vec<RequestRecord> {
        let head = self.head.load(Ordering::Acquire);
        let take = (n as u64).min(self.slots.len() as u64).min(head);
        let mut out = Vec::with_capacity(take as usize);
        for k in (head - take)..head {
            let slot = &self.slots[(k % self.slots.len() as u64) as usize];
            let published = 2 * k + 2;
            if slot.seq.load(Ordering::Acquire) != published {
                continue;
            }
            // SAFETY: a stale read is detected by re-checking the sequence
            // below; a torn value is discarded, never used.
            let record = unsafe { std::ptr::read_volatile(slot.data.get()) };
            if slot.seq.load(Ordering::Acquire) == published {
                out.push(record);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64) -> RequestRecord {
        RequestRecord { id, endpoint: "predict", status: 200, ..Default::default() }
    }

    #[test]
    fn keeps_the_last_capacity_records_in_order() {
        let ring = RequestRing::new(4);
        assert!(ring.recent(8).is_empty());
        for id in 1..=10 {
            ring.push(rec(id));
        }
        let ids: Vec<u64> = ring.recent(8).iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![7, 8, 9, 10]);
        let ids: Vec<u64> = ring.recent(2).iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![9, 10]);
        assert_eq!(ring.pushed(), 10);
    }

    #[test]
    fn concurrent_pushes_never_tear_records() {
        let ring = std::sync::Arc::new(RequestRing::new(64));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let ring = std::sync::Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        // Every field derives from the id, so a torn record
                        // is detectable below.
                        let id = t * 10_000 + i;
                        ring.push(RequestRecord {
                            id,
                            endpoint: "predict",
                            status: 200,
                            batch: id as u32,
                            cache_hits: id as u32,
                            stage_us: [id; N_STAGES],
                            total_us: id,
                        });
                    }
                })
            })
            .collect();
        for _ in 0..50 {
            for r in ring.recent(64) {
                assert_eq!(r.batch, r.id as u32, "torn record: {r:?}");
                assert_eq!(r.total_us, r.id);
                assert!(r.stage_us.iter().all(|&s| s == r.id));
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(ring.pushed(), 8_000);
    }

    #[test]
    fn json_shape_is_stable() {
        let mut r = rec(7);
        r.stage_us = [1, 2, 3, 4, 5];
        r.total_us = 15;
        assert_eq!(
            r.to_json(),
            "{\"id\":7,\"endpoint\":\"predict\",\"status\":200,\"batch\":0,\"cache_hits\":0,\
             \"stage_us\":{\"parse\":1,\"queue\":2,\"batch\":3,\"inference\":4,\"serialize\":5},\
             \"total_us\":15}"
        );
    }
}
