//! Global metrics registry: counters, gauges, and log-scale histograms.
//!
//! Handles are `&'static` references to atomics; the [`counter!`],
//! [`gauge!`], and [`histogram!`] macros cache the registry lookup in a
//! call-site `OnceLock`, so steady-state recording never touches a lock.

use serde::Serialize;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of histogram buckets. Bucket `i` covers values in
/// `[2^(i - UNDERFLOW_EXP), 2^(i - UNDERFLOW_EXP + 1))`; the first and last
/// buckets absorb under- and overflow.
pub const N_BUCKETS: usize = 64;
/// Exponent offset: bucket 0's upper edge is `2^-32`.
const UNDERFLOW_EXP: i32 = 32;

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    #[inline(always)]
    pub fn inc(&self, by: u64) {
        if crate::metrics_enabled() {
            self.value.fetch_add(by, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Last-write-wins floating point level (stored as `f64` bits).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge { bits: AtomicU64::new(0f64.to_bits()) }
    }
}

impl Gauge {
    #[inline(always)]
    pub fn set(&self, value: f64) {
        if crate::metrics_enabled() {
            self.bits.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    pub(crate) fn reset(&self) {
        self.bits.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

/// Log-scale (base-2) histogram over positive `f64` values.
///
/// Recording is a relaxed `fetch_add` on one bucket plus count/sum updates;
/// non-positive and non-finite values land in the underflow/overflow buckets
/// rather than being dropped, so `count` always equals the number of
/// `record` calls while metrics were enabled.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    /// Sum of recorded values, accumulated via CAS on the f64 bit pattern.
    sum_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

/// Bucket index for a value: `floor(log2(v))` shifted so bucket 0 is the
/// underflow bin. Exposed for the bucketing-edge tests.
pub fn bucket_index(value: f64) -> usize {
    if value <= 0.0 || !value.is_finite() {
        // NaN fails both `<= 0.0` and `is_finite`, landing in overflow.
        return if value.is_finite() { 0 } else { N_BUCKETS - 1 };
    }
    // log2 via the exponent field is exact for normal floats and immune to
    // libm rounding at bucket edges (e.g. log2(8.0) = 2.999999...).
    let exp = if value >= f64::MIN_POSITIVE {
        ((value.to_bits() >> 52) & 0x7ff) as i32 - 1023
    } else {
        // Subnormals: all far below bucket 0's edge anyway.
        -1023
    };
    (exp + UNDERFLOW_EXP).clamp(0, N_BUCKETS as i32 - 1) as usize
}

/// Inclusive lower edge of bucket `i` (`0.0` for the underflow bucket).
pub fn bucket_lower_edge(i: usize) -> f64 {
    if i == 0 {
        0.0
    } else {
        2f64.powi(i as i32 - UNDERFLOW_EXP)
    }
}

impl Histogram {
    #[inline(always)]
    pub fn record(&self, value: f64) {
        if !crate::metrics_enabled() {
            return;
        }
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        if value.is_finite() {
            // CAS loop on the f64 bit pattern; contention here is rare
            // because recording sites are coarse (per-op, not per-element).
            let mut cur = self.sum_bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + value).to_bits();
                match self.sum_bits.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(actual) => cur = actual,
                }
            }
        }
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    pub(crate) fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((bucket_lower_edge(i), n))
                })
                .collect(),
        }
    }
}

/// Point-in-time copy of one histogram: `(lower_edge, count)` per non-empty
/// bucket.
#[derive(Debug, Clone, Serialize)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: f64,
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimated value at quantile `q` (in `[0, 1]`): walk the cumulative
    /// bucket counts to the bucket where the rank falls, then interpolate
    /// linearly inside that bucket. A deterministic function of the bucket
    /// counts, so concurrent and serial recordings of the same values
    /// estimate identical quantiles.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        for &(lower, n) in &self.buckets {
            let next = cum + n;
            if next as f64 >= rank {
                // Bucket 0 reports lower edge 0.0; its true upper edge is
                // bucket 1's lower edge.
                let upper = if lower == 0.0 { bucket_lower_edge(1) } else { lower * 2.0 };
                let within = (rank - cum as f64) / n as f64;
                return lower + (upper - lower) * within.clamp(0.0, 1.0);
            }
            cum = next;
        }
        self.buckets.last().map_or(0.0, |&(lower, _)| lower * 2.0)
    }

    /// `(p50, p95, p99)` — the quantiles the OpenMetrics exposition carries.
    pub fn percentiles(&self) -> (f64, f64, f64) {
        (self.quantile(0.50), self.quantile(0.95), self.quantile(0.99))
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Name → metric maps. `Box::leak` gives out `&'static` handles so the hot
/// path after the first lookup is a direct atomic op with no locking.
#[derive(Default)]
struct Registry {
    counters: Mutex<HashMap<&'static str, &'static Counter>>,
    gauges: Mutex<HashMap<&'static str, &'static Gauge>>,
    histograms: Mutex<HashMap<&'static str, &'static Histogram>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Look up or create the counter `name`. Prefer the [`counter!`] macro, which
/// caches this lookup at the call site.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut map = registry().counters.lock().unwrap();
    map.entry(name).or_insert_with(|| Box::leak(Box::default()))
}

/// Look up or create the gauge `name`. Prefer the [`gauge!`] macro.
pub fn gauge(name: &'static str) -> &'static Gauge {
    let mut map = registry().gauges.lock().unwrap();
    map.entry(name).or_insert_with(|| Box::leak(Box::default()))
}

/// Look up or create the histogram `name`. Prefer the [`histogram!`] macro.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut map = registry().histograms.lock().unwrap();
    map.entry(name).or_insert_with(|| Box::leak(Box::default()))
}

/// Call-site-cached counter handle: `counter!("tensor.matmul.calls").inc(1)`.
#[macro_export]
macro_rules! counter {
    ($name:literal) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::metrics::counter($name))
    }};
}

/// Call-site-cached gauge handle.
#[macro_export]
macro_rules! gauge {
    ($name:literal) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Gauge> = ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::metrics::gauge($name))
    }};
}

/// Call-site-cached histogram handle.
#[macro_export]
macro_rules! histogram {
    ($name:literal) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::metrics::histogram($name))
    }};
}

/// Point-in-time copy of every registered metric, sorted by name. Labeled
/// families ([`crate::labels`]) ride along so one snapshot covers the whole
/// registry.
#[derive(Debug, Clone, Default, Serialize)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
    pub counter_families: Vec<crate::labels::CounterFamilySnapshot>,
    pub gauge_families: Vec<crate::labels::GaugeFamilySnapshot>,
    pub histogram_families: Vec<crate::labels::HistogramFamilySnapshot>,
}

impl MetricsSnapshot {
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Value of one labeled counter cell (exact label match).
    pub fn labeled_counter(&self, family: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.counter_families
            .iter()
            .find(|f| f.name == family)
            .and_then(|f| f.cells.iter().find(|c| label_match(&c.labels, labels)).map(|c| c.value))
    }

    /// Value of one labeled gauge cell (exact label match).
    pub fn labeled_gauge(&self, family: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauge_families
            .iter()
            .find(|f| f.name == family)
            .and_then(|f| f.cells.iter().find(|c| label_match(&c.labels, labels)).map(|c| c.value))
    }

    /// One labeled histogram cell (exact label match).
    pub fn labeled_histogram(
        &self,
        family: &str,
        labels: &[(&str, &str)],
    ) -> Option<&HistogramSnapshot> {
        self.histogram_families
            .iter()
            .find(|f| f.name == family)
            .and_then(|f| f.cells.iter().find(|c| label_match(&c.labels, labels)).map(|c| &c.value))
    }

    /// Human-readable one-metric-per-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("counter   {name:<44} {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("gauge     {name:<44} {v}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "histogram {name:<44} count={} sum={:.4} mean={:.6}\n",
                h.count,
                h.sum,
                h.mean()
            ));
        }
        let labels_of = |labels: &[(String, String)]| {
            let pairs: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
            format!("{{{}}}", pairs.join(","))
        };
        for fam in &self.counter_families {
            for cell in &fam.cells {
                let name = format!("{}{}", fam.name, labels_of(&cell.labels));
                out.push_str(&format!("counter   {name:<44} {}\n", cell.value));
            }
        }
        for fam in &self.gauge_families {
            for cell in &fam.cells {
                let name = format!("{}{}", fam.name, labels_of(&cell.labels));
                out.push_str(&format!("gauge     {name:<44} {}\n", cell.value));
            }
        }
        for fam in &self.histogram_families {
            for cell in &fam.cells {
                let name = format!("{}{}", fam.name, labels_of(&cell.labels));
                let h = &cell.value;
                out.push_str(&format!(
                    "histogram {name:<44} count={} sum={:.4} mean={:.6}\n",
                    h.count,
                    h.sum,
                    h.mean()
                ));
            }
        }
        out
    }
}

fn label_match(cell: &[(String, String)], want: &[(&str, &str)]) -> bool {
    cell.len() == want.len()
        && cell.iter().zip(want).all(|((ck, cv), (wk, wv))| ck == wk && cv == wv)
}

/// Snapshot every registered metric.
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry();
    let mut snap = MetricsSnapshot::default();
    for (name, c) in reg.counters.lock().unwrap().iter() {
        snap.counters.push((name.to_string(), c.get()));
    }
    for (name, g) in reg.gauges.lock().unwrap().iter() {
        snap.gauges.push((name.to_string(), g.get()));
    }
    for (name, h) in reg.histograms.lock().unwrap().iter() {
        snap.histograms.push((name.to_string(), h.snapshot()));
    }
    snap.counters.sort();
    snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
    snap.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    crate::labels::snapshot_into(&mut snap);
    snap
}

/// Zero every registered metric, labeled families included (names stay
/// registered).
pub fn reset() {
    let reg = registry();
    for c in reg.counters.lock().unwrap().values() {
        c.reset();
    }
    for g in reg.gauges.lock().unwrap().values() {
        g.reset();
    }
    for h in reg.histograms.lock().unwrap().values() {
        h.reset();
    }
    crate::labels::reset_all();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_powers_of_two() {
        // Exactly-on-edge values land in the bucket whose lower edge they are.
        assert_eq!(bucket_index(1.0), bucket_index(1.5));
        assert_ne!(bucket_index(1.0), bucket_index(2.0));
        assert_eq!(bucket_index(2.0), bucket_index(3.999));
        assert_eq!(bucket_lower_edge(bucket_index(1.0)), 1.0);
        assert_eq!(bucket_lower_edge(bucket_index(8.0)), 8.0);
        // Degenerate values are absorbed, not dropped.
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-5.0), 0);
        assert_eq!(bucket_index(f64::INFINITY), N_BUCKETS - 1);
        assert_eq!(bucket_index(f64::NAN), N_BUCKETS - 1);
        assert_eq!(bucket_index(1e300), N_BUCKETS - 1);
        assert_eq!(bucket_index(1e-300), 0);
    }

    #[test]
    fn disabled_metrics_record_nothing() {
        crate::set_metrics_enabled(false);
        let c = counter("test.disabled.counter");
        let before = c.get();
        c.inc(10);
        assert_eq!(c.get(), before);
    }
}
