//! Training telemetry: per-epoch records fed by `EdgeModel::train` and
//! written as JSONL under `results/telemetry/`.
//!
//! The sink is global so training code doesn't need a handle threaded
//! through its config; it is inert until [`start_run`] is called.

use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

/// One epoch of training, as observed by the model's optimizer loop.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct EpochRecord {
    pub epoch: usize,
    /// Mean negative log-likelihood over the epoch (Eq. 13).
    pub nll: f64,
    /// L2 gradient norm per parameter group, e.g. `[("gcn", 0.8), ...]`.
    pub grad_norms: Vec<(String, f64)>,
    pub lr: f64,
    /// Training throughput for the epoch.
    pub tweets_per_sec: f64,
    pub wall_secs: f64,
    /// Divergence-guard rollbacks performed so far in the run (cumulative,
    /// so a jump in this series marks the epoch that diverged).
    pub rollbacks: u64,
    /// Minimum heap allocations observed in a single batch this epoch.
    /// `Some` only when the `alloc-stats` counting allocator is compiled in;
    /// after arena warmup this should be 0 at `--threads 1`.
    pub batch_allocs: Option<u64>,
}

/// In-memory sink for one training run.
#[derive(Debug, Default)]
pub struct TrainTelemetry {
    run: Option<String>,
    records: Vec<EpochRecord>,
}

fn sink() -> &'static Mutex<TrainTelemetry> {
    static SINK: OnceLock<Mutex<TrainTelemetry>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(TrainTelemetry::default()))
}

/// Begin collecting telemetry under the given run name, clearing any
/// previous records. Until this is called, [`record_epoch`] is a no-op.
pub fn start_run(name: &str) {
    let mut t = sink().lock().unwrap();
    t.run = Some(name.to_string());
    t.records.clear();
}

/// Stop collecting and drop any buffered records.
pub fn stop() {
    let mut t = sink().lock().unwrap();
    t.run = None;
    t.records.clear();
}

/// True if a run is active (so producers can skip building records).
pub fn active() -> bool {
    sink().lock().unwrap().run.is_some()
}

/// Append one epoch record to the active run (no-op when inactive).
pub fn record_epoch(record: EpochRecord) {
    let mut t = sink().lock().unwrap();
    if t.run.is_some() {
        t.records.push(record);
    }
}

/// Copy of the active run's records.
pub fn records() -> Vec<EpochRecord> {
    sink().lock().unwrap().records.clone()
}

/// Serialize records as JSONL, one epoch per line.
pub fn to_jsonl(records: &[EpochRecord]) -> String {
    let mut out = String::new();
    for rec in records {
        out.push_str(&serde_json::to_string(rec).expect("epoch record serializes"));
        out.push('\n');
    }
    out
}

/// Parse a JSONL telemetry file back into records.
pub fn from_jsonl(input: &str) -> Result<Vec<EpochRecord>, serde_json::Error> {
    input.lines().filter(|l| !l.trim().is_empty()).map(serde_json::from_str).collect()
}

/// Write the active run's records to `<dir>/<run>.jsonl` and return the
/// path. Returns `None` when no run is active.
pub fn write_to_dir(dir: impl AsRef<Path>) -> std::io::Result<Option<PathBuf>> {
    let t = sink().lock().unwrap();
    let Some(run) = &t.run else { return Ok(None) };
    let path = dir.as_ref().join(format!("{run}.jsonl"));
    // Crash-safe: a run killed mid-dump leaves either the previous telemetry
    // file or the new one, never a torn half of each.
    edge_faults::fsio::atomic_write(&path, to_jsonl(&t.records).as_bytes())?;
    Ok(Some(path))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(epoch: usize) -> EpochRecord {
        EpochRecord {
            epoch,
            nll: 3.25 - epoch as f64 * 0.1,
            grad_norms: vec![("gcn".to_string(), 0.5), ("mdn".to_string(), 1.25)],
            lr: 1e-3,
            tweets_per_sec: 800.0,
            wall_secs: 0.4,
            rollbacks: 0,
            batch_allocs: None,
        }
    }

    #[test]
    fn records_without_batch_allocs_still_parse() {
        // Telemetry written before the alloc-stats field existed must keep
        // round-tripping (the serde shim maps a missing `Option` to `None`).
        let legacy = r#"{"epoch":0,"nll":3.0,"grad_norms":[],"lr":0.001,"tweets_per_sec":1.0,"wall_secs":0.1,"rollbacks":0}"#;
        let recs = from_jsonl(legacy).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].batch_allocs, None);
    }

    #[test]
    fn inactive_sink_drops_records() {
        stop();
        record_epoch(sample(0));
        assert!(records().is_empty());
    }

    #[test]
    fn jsonl_round_trip_preserves_records() {
        let recs: Vec<EpochRecord> = (0..3).map(sample).collect();
        let text = to_jsonl(&recs);
        assert_eq!(text.lines().count(), 3);
        let back = from_jsonl(&text).unwrap();
        assert_eq!(back, recs);
    }
}
