//! Opt-in heap-allocation accounting (`alloc-stats` feature).
//!
//! With the feature enabled this module installs a `#[global_allocator]` that
//! wraps [`std::alloc::System`] and counts every allocation (and every
//! growing/shrinking reallocation) into two process-wide relaxed atomics.
//! The zero-allocation train-loop guarantee is *verified*, not assumed: the
//! `zero_alloc` test in `edge-tensor` and the pipeline bench diff
//! [`counts`] around a steady-state batch and assert the delta is zero.
//!
//! Without the feature, [`counts`] returns zeros and [`active`] is `false`,
//! so callers can gate their measurement logic on it at zero cost.

/// A snapshot of the process-wide allocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocCounts {
    /// Number of allocations (`alloc` + `realloc` calls) since process start.
    pub count: u64,
    /// Total bytes requested by those calls.
    pub bytes: u64,
}

/// Whether the counting allocator is compiled in.
pub const fn active() -> bool {
    cfg!(feature = "alloc-stats")
}

#[cfg(feature = "alloc-stats")]
mod counting {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub(super) static COUNT: AtomicU64 = AtomicU64::new(0);
    pub(super) static BYTES: AtomicU64 = AtomicU64::new(0);

    struct CountingAlloc;

    // SAFETY: defers every operation to `System`; only adds relaxed counter
    // updates, which are allocation-free and reentrancy-safe.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            COUNT.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            COUNT.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;
}

/// Current allocation counters (zeros when the feature is off). Diff two
/// snapshots around a region to measure its allocations; note the counters
/// are process-global, so only single-threaded regions measure precisely.
pub fn counts() -> AllocCounts {
    #[cfg(feature = "alloc-stats")]
    {
        use std::sync::atomic::Ordering;
        AllocCounts {
            count: counting::COUNT.load(Ordering::Relaxed),
            bytes: counting::BYTES.load(Ordering::Relaxed),
        }
    }
    #[cfg(not(feature = "alloc-stats"))]
    AllocCounts::default()
}

/// Publishes the current totals as `alloc.count` / `alloc.bytes` gauges (a
/// no-op when the feature is off or metrics are disabled).
pub fn publish_gauges() {
    if active() {
        let c = counts();
        crate::gauge!("alloc.count").set(c.count as f64);
        crate::gauge!("alloc.bytes").set(c.bytes as f64);
    }
}

#[cfg(all(test, feature = "alloc-stats"))]
mod tests {
    use super::*;

    #[test]
    fn boxing_is_counted() {
        let before = counts();
        let v = std::hint::black_box(vec![0u8; 4096]);
        let after = counts();
        drop(v);
        assert!(after.count > before.count);
        assert!(after.bytes - before.bytes >= 4096);
    }
}
