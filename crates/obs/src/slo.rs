//! Rolling-window SLO tracking: latency-objective violations, shed rate,
//! and error-budget burn.
//!
//! The objective is "p99 latency under `target_p99_us`": by definition at
//! most 1% of requests may exceed the target, so the **error budget** is
//! that 1% and the **burn rate** is the observed violation fraction over
//! the rolling window divided by it. Burn 1.0 means the budget is being
//! consumed exactly as fast as it accrues; above 1.0 the SLO is being
//! missed and `/healthz` degrades. Shedding (429) is tracked against its
//! own ceiling (`max_shed_rate`).
//!
//! The window is a circle of per-second buckets tagged with their epoch
//! second; recording is a few relaxed atomic adds (no locks), and a bucket
//! is lazily re-zeroed by the first recorder of a new second. A racing
//! recorder on the second's edge can land an event in the adjacent bucket
//! — acceptable smear for an alerting signal.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Fraction of requests a p99 objective allows over the target.
const BUDGET: f64 = 0.01;

/// The objective and window.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Latency target the p99 must stay under, in microseconds.
    pub target_p99_us: u64,
    /// Highest acceptable fraction of requests shed with 429.
    pub max_shed_rate: f64,
    /// Rolling window length in seconds.
    pub window_secs: u64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig { target_p99_us: 100_000, max_shed_rate: 0.01, window_secs: 60 }
    }
}

struct Bucket {
    /// Epoch second this bucket currently holds, +1 (0 = never used).
    sec: AtomicU64,
    requests: AtomicU64,
    violations: AtomicU64,
    sheds: AtomicU64,
}

/// The tracker. One per server (not global), so tests and multi-server
/// processes do not bleed into each other.
pub struct SloTracker {
    config: SloConfig,
    start: Instant,
    buckets: Box<[Bucket]>,
}

/// Point-in-time rollup over the window.
#[derive(Debug, Clone, Default)]
pub struct SloStatus {
    /// Completed requests observed in the window.
    pub requests: u64,
    /// Requests over the latency target.
    pub violations: u64,
    /// Requests shed with 429.
    pub sheds: u64,
    /// `violations / requests`.
    pub violation_rate: f64,
    /// `sheds / (requests + sheds)`.
    pub shed_rate: f64,
    /// `violation_rate / 0.01` — 1.0 burns the budget exactly as fast as
    /// it accrues.
    pub burn_rate: f64,
    /// `1 - burn_rate`, clamped to `[0, 1]`.
    pub budget_remaining: f64,
    /// The SLO is being missed: budget over-burning or shed rate above its
    /// ceiling.
    pub degraded: bool,
}

impl SloTracker {
    pub fn new(config: SloConfig) -> Self {
        let window = config.window_secs.max(1);
        SloTracker {
            config: SloConfig { window_secs: window, ..config },
            start: Instant::now(),
            buckets: (0..window)
                .map(|_| Bucket {
                    sec: AtomicU64::new(0),
                    requests: AtomicU64::new(0),
                    violations: AtomicU64::new(0),
                    sheds: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// The bucket for the current second, lazily re-zeroed on first touch.
    fn bucket(&self) -> &Bucket {
        let sec = self.start.elapsed().as_secs();
        let bucket = &self.buckets[(sec % self.config.window_secs) as usize];
        let tag = sec + 1;
        let current = bucket.sec.load(Ordering::Acquire);
        if current != tag
            && bucket
                .sec
                .compare_exchange(current, tag, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        {
            bucket.requests.store(0, Ordering::Relaxed);
            bucket.violations.store(0, Ordering::Relaxed);
            bucket.sheds.store(0, Ordering::Relaxed);
        }
        bucket
    }

    /// Records one completed request.
    pub fn record(&self, latency_us: u64) {
        let bucket = self.bucket();
        bucket.requests.fetch_add(1, Ordering::Relaxed);
        if latency_us > self.config.target_p99_us {
            bucket.violations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one request shed with 429.
    pub fn record_shed(&self) {
        self.bucket().sheds.fetch_add(1, Ordering::Relaxed);
    }

    /// Rolls up the window.
    pub fn status(&self) -> SloStatus {
        let now_tag = self.start.elapsed().as_secs() + 1;
        let oldest_tag = now_tag.saturating_sub(self.config.window_secs - 1);
        let (mut requests, mut violations, mut sheds) = (0u64, 0u64, 0u64);
        for bucket in &self.buckets {
            let tag = bucket.sec.load(Ordering::Acquire);
            if tag == 0 || tag < oldest_tag || tag > now_tag {
                continue;
            }
            requests += bucket.requests.load(Ordering::Relaxed);
            violations += bucket.violations.load(Ordering::Relaxed);
            sheds += bucket.sheds.load(Ordering::Relaxed);
        }
        let violation_rate = if requests == 0 { 0.0 } else { violations as f64 / requests as f64 };
        let admitted_or_shed = requests + sheds;
        let shed_rate =
            if admitted_or_shed == 0 { 0.0 } else { sheds as f64 / admitted_or_shed as f64 };
        let burn_rate = violation_rate / BUDGET;
        SloStatus {
            requests,
            violations,
            sheds,
            violation_rate,
            shed_rate,
            burn_rate,
            budget_remaining: (1.0 - burn_rate).clamp(0.0, 1.0),
            degraded: admitted_or_shed > 0
                && (burn_rate > 1.0 || shed_rate > self.config.max_shed_rate),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(target_us: u64) -> SloTracker {
        SloTracker::new(SloConfig { target_p99_us: target_us, ..SloConfig::default() })
    }

    #[test]
    fn no_traffic_is_not_degraded() {
        let t = tracker(1_000);
        let s = t.status();
        assert_eq!(s.requests, 0);
        assert!(!s.degraded);
        assert_eq!(s.budget_remaining, 1.0);
    }

    #[test]
    fn within_target_keeps_the_budget() {
        let t = tracker(1_000);
        for _ in 0..100 {
            t.record(500);
        }
        // Exactly 1% over target burns the budget at rate 1.0 — still OK.
        t.record(2_000);
        let s = t.status();
        assert_eq!(s.requests, 101);
        assert_eq!(s.violations, 1);
        assert!(!s.degraded, "burn {:.2} must not degrade", s.burn_rate);
    }

    #[test]
    fn sustained_violations_burn_the_budget() {
        let t = tracker(1_000);
        for _ in 0..10 {
            t.record(5_000);
        }
        let s = t.status();
        assert_eq!(s.violations, 10);
        assert!(s.burn_rate > 1.0);
        assert_eq!(s.budget_remaining, 0.0);
        assert!(s.degraded);
    }

    #[test]
    fn shedding_past_the_ceiling_degrades() {
        let t = SloTracker::new(SloConfig {
            target_p99_us: 1_000_000,
            max_shed_rate: 0.10,
            window_secs: 60,
        });
        for _ in 0..80 {
            t.record(10);
        }
        for _ in 0..20 {
            t.record_shed();
        }
        let s = t.status();
        assert_eq!(s.sheds, 20);
        assert!((s.shed_rate - 0.2).abs() < 1e-9);
        assert!(s.degraded, "20% shed over a 10% ceiling must degrade");
        assert_eq!(s.violations, 0, "shedding alone burns no latency budget");
    }

    #[test]
    fn window_buckets_expire() {
        // A 1-second window: events recorded now are gone two seconds later.
        let t = SloTracker::new(SloConfig { target_p99_us: 1, max_shed_rate: 0.0, window_secs: 1 });
        t.record(100);
        assert!(t.status().degraded);
        std::thread::sleep(std::time::Duration::from_millis(2_100));
        let s = t.status();
        assert_eq!(s.requests, 0, "bucket from an expired second must not count");
        assert!(!s.degraded);
    }
}
