//! OpenMetrics text exposition: render a [`MetricsSnapshot`] as an
//! OpenMetrics scrape, and parse one back.
//!
//! The renderer emits `# TYPE` / `# HELP` metadata per family, `_total`
//! counters, full `_bucket`/`_count`/`_sum` histogram exposition over the
//! log₂ buckets, estimated `_p50`/`_p95`/`_p99` gauges per histogram, and a
//! terminating `# EOF`. Metric names are sanitized (`.`/`-` → `_`) to the
//! OpenMetrics charset. The parser is the tiny in-repo consumer used by
//! `edge-cli top`, the exposition tests, and CI's obs-smoke gate — strict
//! enough to reject a malformed scrape (bad sample line, missing `# EOF`),
//! small enough to audit.

use crate::metrics::{HistogramSnapshot, MetricsSnapshot};

/// The `Content-Type` a compliant scraper expects from `/metrics`.
pub const CONTENT_TYPE: &str = "application/openmetrics-text; version=1.0.0";

/// Maps a registry name onto the OpenMetrics charset:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`. Dots and dashes become underscores.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, ch) in name.chars().enumerate() {
        let ok =
            ch.is_ascii_alphabetic() || ch == '_' || ch == ':' || (i > 0 && ch.is_ascii_digit());
        if ok {
            out.push(ch);
        } else if i == 0 && ch.is_ascii_digit() {
            out.push('_');
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize_name(k), escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Shortest-round-trip float formatting; `Display` for `f64` is shortest in
/// Rust, and integral values drop the fraction entirely (OpenMetrics allows
/// both).
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 {
            "+Inf".to_string()
        } else {
            "-Inf".to_string()
        }
    } else {
        format!("{v}")
    }
}

fn render_histogram(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    h: &HistogramSnapshot,
) {
    let mut cum = 0u64;
    for &(lower, n) in &h.buckets {
        cum += n;
        let upper = if lower == 0.0 { crate::metrics::bucket_lower_edge(1) } else { lower * 2.0 };
        out.push_str(&format!(
            "{name}_bucket{} {cum}\n",
            label_block(labels, Some(("le", &fmt_value(upper))))
        ));
    }
    out.push_str(&format!(
        "{name}_bucket{} {}\n",
        label_block(labels, Some(("le", "+Inf"))),
        h.count
    ));
    out.push_str(&format!("{name}_count{} {}\n", label_block(labels, None), h.count));
    out.push_str(&format!("{name}_sum{} {}\n", label_block(labels, None), fmt_value(h.sum)));
}

fn render_histogram_quantiles(
    out: &mut String,
    name: &str,
    cells: &[(Vec<(String, String)>, &HistogramSnapshot)],
) {
    for (suffix, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
        let qname = format!("{name}_{suffix}");
        out.push_str(&format!("# TYPE {qname} gauge\n"));
        out.push_str(&format!("# HELP {qname} Estimated {suffix} of {name}.\n"));
        for (labels, h) in cells {
            out.push_str(&format!(
                "{qname}{} {}\n",
                label_block(labels, None),
                fmt_value(h.quantile(q))
            ));
        }
    }
}

/// Renders the snapshot as one OpenMetrics scrape, `# EOF`-terminated.
pub fn render(snap: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(4096);

    for (name, value) in &snap.counters {
        let name = sanitize_name(name);
        out.push_str(&format!("# TYPE {name} counter\n"));
        out.push_str(&format!("# HELP {name} Counter {name}.\n"));
        out.push_str(&format!("{name}_total {value}\n"));
    }
    for fam in &snap.counter_families {
        let name = sanitize_name(&fam.name);
        out.push_str(&format!("# TYPE {name} counter\n"));
        out.push_str(&format!("# HELP {name} {}\n", fam.help));
        for cell in &fam.cells {
            out.push_str(&format!(
                "{name}_total{} {}\n",
                label_block(&cell.labels, None),
                cell.value
            ));
        }
    }

    for (name, value) in &snap.gauges {
        let name = sanitize_name(name);
        out.push_str(&format!("# TYPE {name} gauge\n"));
        out.push_str(&format!("# HELP {name} Gauge {name}.\n"));
        out.push_str(&format!("{name} {}\n", fmt_value(*value)));
    }
    for fam in &snap.gauge_families {
        let name = sanitize_name(&fam.name);
        out.push_str(&format!("# TYPE {name} gauge\n"));
        out.push_str(&format!("# HELP {name} {}\n", fam.help));
        for cell in &fam.cells {
            out.push_str(&format!(
                "{name}{} {}\n",
                label_block(&cell.labels, None),
                fmt_value(cell.value)
            ));
        }
    }

    for (name, h) in &snap.histograms {
        let name = sanitize_name(name);
        out.push_str(&format!("# TYPE {name} histogram\n"));
        out.push_str(&format!("# HELP {name} Histogram {name}.\n"));
        render_histogram(&mut out, &name, &[], h);
        render_histogram_quantiles(&mut out, &name, &[(Vec::new(), h)]);
    }
    for fam in &snap.histogram_families {
        let name = sanitize_name(&fam.name);
        out.push_str(&format!("# TYPE {name} histogram\n"));
        out.push_str(&format!("# HELP {name} {}\n", fam.help));
        for cell in &fam.cells {
            render_histogram(&mut out, &name, &cell.labels, &cell.value);
        }
        let cells: Vec<(Vec<(String, String)>, &HistogramSnapshot)> =
            fam.cells.iter().map(|c| (c.labels.clone(), &c.value)).collect();
        render_histogram_quantiles(&mut out, &name, &cells);
    }

    out.push_str("# EOF\n");
    out
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Family kind from a `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
    Unknown,
}

/// One sample line of a scrape.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Full sample name (including `_total`/`_bucket`-style suffixes).
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

/// One metric family: the `# TYPE` metadata plus its samples.
#[derive(Debug, Clone)]
pub struct Family {
    pub name: String,
    pub kind: MetricKind,
    pub help: String,
    pub samples: Vec<Sample>,
}

/// A parsed scrape.
#[derive(Debug, Clone, Default)]
pub struct Scrape {
    pub families: Vec<Family>,
}

impl Scrape {
    /// All samples across families.
    pub fn samples(&self) -> impl Iterator<Item = &Sample> {
        self.families.iter().flat_map(|f| f.samples.iter())
    }

    /// First sample named `name` whose labels include every pair in `want`.
    pub fn sample(&self, name: &str, want: &[(&str, &str)]) -> Option<&Sample> {
        self.samples().find(|s| {
            s.name == name
                && want.iter().all(|(wk, wv)| s.labels.iter().any(|(k, v)| k == wk && v == wv))
        })
    }

    /// Convenience: the value of [`Scrape::sample`].
    pub fn value(&self, name: &str, want: &[(&str, &str)]) -> Option<f64> {
        self.sample(name, want).map(|s| s.value)
    }

    /// The declared kind of family `name`.
    pub fn kind(&self, name: &str) -> Option<MetricKind> {
        self.families.iter().find(|f| f.name == name).map(|f| f.kind)
    }
}

fn parse_labels(block: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = block.chars().peekable();
    loop {
        // Label name up to '='.
        let mut name = String::new();
        while let Some(&c) = chars.peek() {
            if c == '=' {
                break;
            }
            if c == ',' || c == ' ' {
                return Err(format!("unexpected '{c}' in label name"));
            }
            name.push(c);
            chars.next();
        }
        if chars.next() != Some('=') || chars.next() != Some('"') {
            return Err("label value must be quoted".into());
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some('"') => break,
                Some(c) => value.push(c),
                None => return Err("unterminated label value".into()),
            }
        }
        labels.push((name, value));
        match chars.next() {
            Some(',') => continue,
            None => break,
            Some(c) => return Err(format!("unexpected '{c}' after label value")),
        }
    }
    Ok(labels)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_part, rest) = match line.find('{') {
        Some(open) => {
            let close = line.rfind('}').ok_or_else(|| format!("unclosed label block: {line}"))?;
            if close < open {
                return Err(format!("mismatched braces: {line}"));
            }
            (&line[..open], Some((&line[open + 1..close], &line[close + 1..])))
        }
        None => (line, None),
    };
    let (labels, value_part) = match rest {
        Some((block, tail)) => (parse_labels(block)?, tail.trim()),
        None => {
            let mut it = line.split_whitespace();
            let _name = it.next();
            (Vec::new(), line.split_once(char::is_whitespace).map(|(_, v)| v).unwrap_or("").trim())
        }
    };
    let name = name_part.split_whitespace().next().unwrap_or("").to_string();
    if name.is_empty() {
        return Err(format!("sample without a name: {line}"));
    }
    // Value is the first token; an optional timestamp may follow.
    let value_str = value_part
        .split_whitespace()
        .next()
        .ok_or_else(|| format!("sample without a value: {line}"))?;
    let value = match value_str {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        s => s.parse::<f64>().map_err(|_| format!("bad sample value {s:?} in: {line}"))?,
    };
    Ok(Sample { name, labels, value })
}

/// Parses an OpenMetrics scrape. Rejects malformed metadata or sample
/// lines, a missing `# EOF` terminator, and content after it.
pub fn parse(text: &str) -> Result<Scrape, String> {
    let mut scrape = Scrape::default();
    let mut saw_eof = false;
    for raw in text.lines() {
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if saw_eof {
            return Err(format!("content after # EOF: {line}"));
        }
        if let Some(meta) = line.strip_prefix('#') {
            let meta = meta.trim_start();
            if meta == "EOF" {
                saw_eof = true;
            } else if let Some(rest) = meta.strip_prefix("TYPE ") {
                let mut it = rest.split_whitespace();
                let name =
                    it.next().ok_or_else(|| format!("TYPE without a name: {line}"))?.to_string();
                let kind = match it.next() {
                    Some("counter") => MetricKind::Counter,
                    Some("gauge") => MetricKind::Gauge,
                    Some("histogram") => MetricKind::Histogram,
                    Some(_) => MetricKind::Unknown,
                    None => return Err(format!("TYPE without a kind: {line}")),
                };
                scrape.families.push(Family {
                    name,
                    kind,
                    help: String::new(),
                    samples: Vec::new(),
                });
            } else if let Some(rest) = meta.strip_prefix("HELP ") {
                let (name, help) = rest.split_once(' ').unwrap_or((rest, ""));
                if let Some(fam) = scrape.families.iter_mut().rev().find(|f| f.name == name) {
                    fam.help = help.to_string();
                }
            }
            // Other comments are ignored, as the spec requires.
            continue;
        }
        let sample = parse_sample(line)?;
        let owner = scrape.families.iter_mut().rev().find(|f| {
            sample.name == f.name
                || sample
                    .name
                    .strip_prefix(f.name.as_str())
                    .is_some_and(|suffix| suffix.starts_with('_'))
        });
        match owner {
            Some(fam) => fam.samples.push(sample),
            None => scrape.families.push(Family {
                name: sample.name.clone(),
                kind: MetricKind::Unknown,
                help: String::new(),
                samples: vec![sample],
            }),
        }
    }
    if !saw_eof {
        return Err("scrape does not end with # EOF".into());
    }
    Ok(scrape)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize_name("serve.request.us"), "serve_request_us");
        assert_eq!(sanitize_name("a-b c"), "a_b_c");
        assert_eq!(sanitize_name("9lives"), "_9lives");
    }

    #[test]
    fn parses_samples_with_and_without_labels() {
        let s = parse_sample("foo_total 12").unwrap();
        assert_eq!(s.name, "foo_total");
        assert!(s.labels.is_empty());
        assert_eq!(s.value, 12.0);
        let s = parse_sample("foo_bucket{endpoint=\"predict\",le=\"+Inf\"} 3").unwrap();
        assert_eq!(s.labels.len(), 2);
        assert_eq!(s.labels[0], ("endpoint".to_string(), "predict".to_string()));
        assert_eq!(s.value, 3.0);
        assert!(parse_sample("no_value").is_err());
        assert!(parse_sample("bad{x=unquoted} 1").is_err());
    }

    #[test]
    fn rejects_missing_eof_and_trailing_content() {
        assert!(parse("# TYPE a counter\na_total 1\n").is_err());
        assert!(parse("# TYPE a counter\na_total 1\n# EOF\nextra 2\n").is_err());
        assert!(parse("# TYPE a counter\na_total 1\n# EOF\n").is_ok());
    }

    #[test]
    fn label_values_round_trip_escapes() {
        let labels = vec![("k".to_string(), "a\"b\\c\nd".to_string())];
        let block = label_block(&labels, None);
        let inner = block.trim_start_matches('{').trim_end_matches('}');
        let parsed = parse_labels(inner).unwrap();
        assert_eq!(parsed, labels);
    }
}
