//! RAII span timers with a thread-aware in-memory trace.
//!
//! [`span("name")`](span) pushes onto a per-thread stack and, when the
//! returned [`SpanGuard`] drops, appends a [`SpanRecord`] (with its parent id
//! from the stack) to the global trace buffer. The buffer can be dumped as
//! JSONL ([`dump_jsonl`]) or aggregated into a self-time / total-time
//! [`Profile`] table.
//!
//! Spans also carry a **request id** so a serving-side trace can be sliced
//! per request even when its work hops threads: a handler enters a
//! [`request_scope`], captures its [`SpanContext`] ([`current_context`]),
//! threads it through queues alongside the work, and the thread that picks
//! the work up re-[`adopt`]s it — new spans there parent to the handler's
//! span and inherit its request id. [`record_manual`] appends a span for an
//! interval measured outside any guard (e.g. queue wait).

use serde::Serialize;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One completed span. Times are microseconds relative to the process's
/// first span (so traces from one run share a clock).
#[derive(Debug, Clone, Serialize)]
pub struct SpanRecord {
    pub id: u64,
    /// 0 for root spans.
    pub parent: u64,
    pub name: &'static str,
    /// Arbitrary but stable per-thread number.
    pub thread: u64,
    /// Request id from the enclosing [`request_scope`] / [`adopt`]
    /// (0 outside any request).
    pub request: u64,
    pub start_us: u64,
    pub dur_us: u64,
}

struct TraceState {
    records: Mutex<Vec<SpanRecord>>,
    epoch: Instant,
}

fn state() -> &'static TraceState {
    static STATE: OnceLock<TraceState> = OnceLock::new();
    STATE.get_or_init(|| TraceState { records: Mutex::new(Vec::new()), epoch: Instant::now() })
}

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Stack of open span ids on this thread (for parent attribution).
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
    /// Request id new spans on this thread are tagged with (0 = none).
    static CURRENT_REQUEST: Cell<u64> = const { Cell::new(0) };
}

/// Mints a process-unique request id (serve mints one per connection
/// request; ids are also usable while tracing is disabled, e.g. for the
/// `X-Request-Id` response header and the request ring).
pub fn next_request_id() -> u64 {
    NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed)
}

/// A portable span context: enough to re-parent work on another thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanContext {
    /// The request this work belongs to (0 = none).
    pub request: u64,
    /// The span id new child spans should parent to (0 = root).
    pub span: u64,
}

/// The context a span started *right now* on this thread would inherit:
/// the current request id and the innermost open span.
pub fn current_context() -> SpanContext {
    SpanContext {
        request: CURRENT_REQUEST.with(Cell::get),
        span: SPAN_STACK.with(|stack| stack.borrow().last().copied().unwrap_or(0)),
    }
}

/// Tags spans opened on this thread with `request` until the guard drops.
#[must_use = "the request scope ends when this guard is dropped"]
pub fn request_scope(request: u64) -> RequestScopeGuard {
    let prev = CURRENT_REQUEST.with(|c| c.replace(request));
    RequestScopeGuard { prev }
}

/// RAII handle returned by [`request_scope`].
pub struct RequestScopeGuard {
    prev: u64,
}

impl Drop for RequestScopeGuard {
    fn drop(&mut self) {
        CURRENT_REQUEST.with(|c| c.set(self.prev));
    }
}

/// Adopts a [`SpanContext`] captured on another thread: until the guard
/// drops, spans opened here carry the context's request id and parent to
/// its span. `edge-par` wraps pooled tasks in this so worker-thread spans
/// stay attached to the submitting span; the serving scheduler adopts each
/// job's context around its inference. Cheap when tracing is disabled
/// (two thread-local writes).
#[must_use = "the adopted context ends when this guard is dropped"]
pub fn adopt(ctx: SpanContext) -> AdoptGuard {
    let prev_request = CURRENT_REQUEST.with(|c| c.replace(ctx.request));
    let pushed = if crate::trace_enabled() && ctx.span != 0 {
        SPAN_STACK.with(|stack| stack.borrow_mut().push(ctx.span));
        Some(ctx.span)
    } else {
        None
    };
    AdoptGuard { prev_request, pushed }
}

/// RAII handle returned by [`adopt`].
pub struct AdoptGuard {
    prev_request: u64,
    pushed: Option<u64>,
}

impl Drop for AdoptGuard {
    fn drop(&mut self) {
        if let Some(id) = self.pushed {
            SPAN_STACK.with(|stack| {
                let mut stack = stack.borrow_mut();
                if let Some(pos) = stack.iter().rposition(|&s| s == id) {
                    stack.truncate(pos);
                }
            });
        }
        CURRENT_REQUEST.with(|c| c.set(self.prev_request));
    }
}

/// A span whose lifetime is detached from any thread's span stack: it is
/// opened with [`DetachedSpan::begin`], hands out its [`SpanContext`] for
/// children to [`adopt`] (possibly on other threads), and records itself
/// when dropped or [`finish`](DetachedSpan::finish)ed — from whatever
/// thread that happens on.
///
/// This is what an event-loop server needs for its per-request root span:
/// a [`span`] guard held across an asynchronous wait would sit on the loop
/// thread's stack and mis-parent every other request's spans, while a
/// detached span never touches the stack at all.
#[derive(Debug)]
pub struct DetachedSpan {
    /// 0 when tracing was disabled at `begin` (then drop is a no-op).
    id: u64,
    parent: u64,
    name: &'static str,
    request: u64,
    start: Instant,
}

impl DetachedSpan {
    /// Opens a detached span parented to the calling thread's current
    /// context (like [`span`]), without pushing the thread's span stack.
    #[must_use = "the span ends when this value is dropped"]
    pub fn begin(name: &'static str) -> DetachedSpan {
        let ctx = current_context();
        let id =
            if crate::trace_enabled() { NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed) } else { 0 };
        DetachedSpan { id, parent: ctx.span, name, request: ctx.request, start: Instant::now() }
    }

    /// The context child spans should [`adopt`]: this span's request id and
    /// (when tracing is live) this span's id as their parent.
    pub fn ctx(&self) -> SpanContext {
        SpanContext { request: self.request, span: self.id }
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for DetachedSpan {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        let end = Instant::now();
        let st = state();
        let record = SpanRecord {
            id: self.id,
            parent: self.parent,
            name: self.name,
            thread: THREAD_ID.with(|t| *t),
            request: self.request,
            start_us: self.start.saturating_duration_since(st.epoch).as_micros() as u64,
            dur_us: end.saturating_duration_since(self.start).as_micros() as u64,
        };
        st.records.lock().unwrap().push(record);
    }
}

/// Appends a span for an interval measured manually (no guard was open):
/// the caller supplies the parent context and both endpoints. Used for
/// cross-thread stages like queue wait, where the span conceptually starts
/// on one thread (submit) and ends on another (dispatch).
pub fn record_manual(name: &'static str, ctx: SpanContext, start: Instant, end: Instant) {
    if !crate::trace_enabled() {
        return;
    }
    let st = state();
    let record = SpanRecord {
        id: NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed),
        parent: ctx.span,
        name,
        thread: THREAD_ID.with(|t| *t),
        request: ctx.request,
        start_us: start.saturating_duration_since(st.epoch).as_micros() as u64,
        dur_us: end.saturating_duration_since(start).as_micros() as u64,
    };
    st.records.lock().unwrap().push(record);
}

/// Starts a span; the span ends (and is recorded) when the guard drops.
/// A no-op when tracing is disabled.
#[must_use = "the span ends when this guard is dropped"]
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::trace_enabled() {
        return SpanGuard { inner: None };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().copied().unwrap_or(0);
        stack.push(id);
        parent
    });
    let request = CURRENT_REQUEST.with(Cell::get);
    SpanGuard { inner: Some(OpenSpan { id, parent, name, request, start: Instant::now() }) }
}

struct OpenSpan {
    id: u64,
    parent: u64,
    name: &'static str,
    request: u64,
    start: Instant,
}

/// RAII handle returned by [`span`]; records the span on drop.
pub struct SpanGuard {
    inner: Option<OpenSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.inner.take() else { return };
        let end = Instant::now();
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Pop back to (and including) this span: tolerates guards dropped
            // out of order instead of corrupting parent attribution.
            if let Some(pos) = stack.iter().rposition(|&id| id == open.id) {
                stack.truncate(pos);
            }
        });
        let st = state();
        let start_us = open.start.saturating_duration_since(st.epoch).as_micros() as u64;
        let dur_us = end.saturating_duration_since(open.start).as_micros() as u64;
        let record = SpanRecord {
            id: open.id,
            parent: open.parent,
            name: open.name,
            thread: THREAD_ID.with(|t| *t),
            request: open.request,
            start_us,
            dur_us,
        };
        st.records.lock().unwrap().push(record);
    }
}

/// Copy of the trace buffer, in completion order.
pub fn records() -> Vec<SpanRecord> {
    state().records.lock().unwrap().clone()
}

/// Clear the trace buffer (span ids keep counting).
pub fn reset() {
    state().records.lock().unwrap().clear();
}

/// Serialize the trace as JSONL: one span object per line.
pub fn dump_jsonl() -> String {
    let mut out = String::new();
    for rec in records() {
        out.push_str(&serde_json::to_string(&rec).expect("span serializes"));
        out.push('\n');
    }
    out
}

/// Parse a JSONL trace dump back into records (for round-trip tooling).
/// Returns `None` on any malformed line.
pub fn parse_jsonl(input: &str) -> Option<Vec<ParsedSpanRecord>> {
    input
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|line| serde_json::from_str(line).ok())
        .collect()
}

/// Owned-name twin of [`SpanRecord`] used when reading traces back in.
#[derive(Debug, Clone, serde::Deserialize, Serialize, PartialEq)]
pub struct ParsedSpanRecord {
    pub id: u64,
    pub parent: u64,
    pub name: String,
    pub thread: u64,
    pub request: u64,
    pub start_us: u64,
    pub dur_us: u64,
}

/// Aggregated per-span-name timing statistics.
#[derive(Debug, Clone, Serialize)]
pub struct ProfileRow {
    pub name: String,
    pub calls: u64,
    /// Wall time inside spans of this name, including child spans.
    pub total_us: u64,
    /// Wall time inside spans of this name, excluding child spans.
    pub self_us: u64,
}

/// A profile table: rows sorted by self-time, plus the trace's wall span.
#[derive(Debug, Clone, Serialize)]
pub struct Profile {
    pub rows: Vec<ProfileRow>,
    /// Wall time covered by root (parentless) spans.
    pub root_total_us: u64,
}

/// Aggregate the given records into a profile table.
///
/// Self time is total time minus the total of direct children, so summing
/// `self_us` over all rows recovers `root_total_us` exactly: the table
/// attributes 100% of traced wall time to named spans.
pub fn profile_of(records: &[SpanRecord]) -> Profile {
    let mut child_time: HashMap<u64, u64> = HashMap::new();
    for rec in records {
        if rec.parent != 0 {
            *child_time.entry(rec.parent).or_insert(0) += rec.dur_us;
        }
    }
    let mut by_name: HashMap<&str, ProfileRow> = HashMap::new();
    let mut root_total_us = 0u64;
    for rec in records {
        let children = child_time.get(&rec.id).copied().unwrap_or(0);
        let row = by_name.entry(rec.name).or_insert_with(|| ProfileRow {
            name: rec.name.to_string(),
            calls: 0,
            total_us: 0,
            self_us: 0,
        });
        row.calls += 1;
        row.total_us += rec.dur_us;
        row.self_us += rec.dur_us.saturating_sub(children);
        if rec.parent == 0 {
            root_total_us += rec.dur_us;
        }
    }
    let mut rows: Vec<ProfileRow> = by_name.into_values().collect();
    rows.sort_by(|a, b| b.self_us.cmp(&a.self_us).then(a.name.cmp(&b.name)));
    Profile { rows, root_total_us }
}

/// Profile of the current global trace buffer.
pub fn profile() -> Profile {
    profile_of(&records())
}

impl Profile {
    /// Fraction of root wall time attributed to spans named in `names`
    /// (by self time). With a root span around the whole run, the named
    /// coverage is what the `profile` subcommand reports.
    pub fn coverage(&self, names: &[&str]) -> f64 {
        if self.root_total_us == 0 {
            return 0.0;
        }
        let named: u64 = self
            .rows
            .iter()
            .filter(|r| names.iter().any(|n| r.name.contains(n)))
            .map(|r| r.self_us)
            .sum();
        named as f64 / self.root_total_us as f64
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>8} {:>12} {:>12} {:>7}\n",
            "span", "calls", "total", "self", "self%"
        ));
        let denom = self.root_total_us.max(1) as f64;
        for row in &self.rows {
            out.push_str(&format!(
                "{:<28} {:>8} {:>12} {:>12} {:>6.1}%\n",
                row.name,
                row.calls,
                format_us(row.total_us),
                format_us(row.self_us),
                100.0 * row.self_us as f64 / denom,
            ));
        }
        out.push_str(&format!("traced wall time: {}\n", format_us(self.root_total_us)));
        out
    }
}

fn format_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us}us")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{:.3}s", us as f64 / 1e6)
    }
}
