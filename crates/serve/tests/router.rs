//! Multi-shard routing and HTTP/1.1 pipelining, end to end: responses
//! from a routed two-metro server must be byte-identical to direct
//! `Predictor` calls on whichever shard the router picks, per-shard
//! metric families must attribute traffic to the right shard, and
//! pipelined requests must come back strictly in request order with the
//! same bytes a sequential client gets.

mod util;

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};

use edge_core::{
    ArtifactLoad, EdgeConfig, EdgeModel, PredictOptions, PredictRequest, Predictor, QuantMode,
    TrainOptions,
};
use edge_data::{dataset_recognizer, lama, Dataset, PresetSize};
use edge_serve::{Client, Router, ServeConfig, Server};

/// Second metro shard (Los Angeles) alongside `util`'s New York world.
struct LamaWorld {
    model_path: String,
    model: EdgeModel,
    dataset: Dataset,
}

static LAMA: OnceLock<LamaWorld> = OnceLock::new();

fn lama_world() -> &'static LamaWorld {
    LAMA.get_or_init(|| {
        let dataset = lama(PresetSize::Smoke, 9393);
        let (train, _) = dataset.paper_split();
        let mut cfg = EdgeConfig::smoke();
        cfg.epochs = 2;
        let (model, _) = EdgeModel::train(
            train,
            dataset_recognizer(&dataset),
            &dataset.bbox,
            cfg,
            &TrainOptions::default(),
        )
        .expect("train");
        let path = std::env::temp_dir()
            .join(format!("edge_serve_router_lama_{}.model.json", std::process::id()));
        model.save_artifact(&path, QuantMode::None).expect("save");
        let model_path = path.to_string_lossy().into_owned();
        let model = EdgeModel::load_artifact(&model_path).expect("load");
        LamaWorld { model_path, model, dataset }
    })
}

/// Starts a two-shard server (nyma + lama) and returns it with a router
/// mirror built from the same artifacts, for computing expectations.
fn start_two_shards(mut config: ServeConfig) -> (Server, Router, Vec<Arc<EdgeModel>>) {
    config.addr = "127.0.0.1:0".to_string();
    let ny = EdgeModel::load_artifact(&util::world().model_path).expect("load nyma");
    let la = EdgeModel::load_artifact(&lama_world().model_path).expect("load lama");
    let server =
        Server::start_shards(vec![("nyma".to_string(), ny), ("lama".to_string(), la)], config)
            .expect("server starts");
    let models = vec![
        Arc::new(EdgeModel::load_artifact(&util::world().model_path).expect("load nyma")),
        Arc::new(EdgeModel::load_artifact(&lama_world().model_path).expect("load lama")),
    ];
    let router = Router::new(vec!["nyma".to_string(), "lama".to_string()], &models);
    (server, router, models)
}

/// Covered test-split texts from the lama dataset.
fn lama_texts(n: usize) -> Vec<String> {
    let w = lama_world();
    let (_, test) = w.dataset.paper_split();
    test.iter()
        .filter(|t| !w.model.resolve_entities(&t.text).is_empty())
        .take(n)
        .map(|t| t.text.clone())
        .collect()
}

/// The direct-prediction fragment from a specific shard's model.
fn shard_fragment(model: &EdgeModel, text: &str) -> Vec<u8> {
    match model.locate(&PredictRequest::text(text), &PredictOptions::default()) {
        Ok(resp) => edge_serve::json::render_response(&resp),
        Err(err) => edge_serve::json::render_error(&err),
    }
}

/// Extracts a labeled counter's value from an OpenMetrics exposition.
fn metric_value(text: &str, needle: &str) -> f64 {
    text.lines()
        .find(|l| l.starts_with(needle))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0)
}

#[test]
fn routed_responses_are_bit_identical_to_the_owning_shard() {
    let (server, router, models) = start_two_shards(ServeConfig {
        cache_capacity: 0, // every text goes through a model
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.addr()).unwrap();

    let mut texts = util::covered_texts(6);
    texts.extend(lama_texts(6));
    assert!(texts.len() >= 10, "both metros contribute covered texts");

    let mut routed = [0usize; 2];
    for text in &texts {
        let s = router.route_text(text, &models);
        routed[s] += 1;
        let resp = client.predict(text).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.body,
            shard_fragment(&models[s], text),
            "server bytes differ from direct rendering on shard {s}"
        );
    }
    assert!(routed[0] > 0, "some texts route to nyma");
    assert!(routed[1] > 0, "some texts route to lama");

    // The batch envelope mixes shards and still matches fragment-for-fragment.
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    let resp = client.predict_batch(&refs).unwrap();
    assert_eq!(resp.status, 200);
    let mut expected = b"{\"results\":[".to_vec();
    for (i, text) in texts.iter().enumerate() {
        if i > 0 {
            expected.push(b',');
        }
        let s = router.route_text(text, &models);
        expected.extend_from_slice(&shard_fragment(&models[s], text));
    }
    expected.extend_from_slice(b"]}");
    assert_eq!(resp.body, expected, "mixed-shard batch differs from direct rendering");

    // Per-shard attribution: both shards saw texts, and the exposition
    // says so under their own labels.
    let metrics = client.request("GET", "/metrics", b"").unwrap();
    assert_eq!(metrics.status, 200);
    let text = String::from_utf8_lossy(&metrics.body).into_owned();
    let ny = metric_value(&text, "serve_shard_texts_total{shard=\"nyma\"}");
    let la = metric_value(&text, "serve_shard_texts_total{shard=\"lama\"}");
    assert!(ny > 0.0, "nyma shard counter moved: {ny}");
    assert!(la > 0.0, "lama shard counter moved: {la}");
    server.shutdown();
}

#[test]
fn multi_shard_reload_requires_a_shard_name() {
    let (server, _, _) = start_two_shards(ServeConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();

    let body =
        format!("{{\"path\":{}}}", serde_json::to_string(&util::world().model_path).unwrap());
    let resp = client.request("POST", "/reload", body.as_bytes()).unwrap();
    assert_eq!(resp.status, 400, "ambiguous reload must be rejected");

    let body = format!(
        "{{\"path\":{},\"shard\":\"nyma\"}}",
        serde_json::to_string(&util::world().model_path).unwrap()
    );
    let resp = client.request("POST", "/reload", body.as_bytes()).unwrap();
    assert_eq!(resp.status, 200, "named-shard reload succeeds: {:?}", resp.json());

    let body = format!(
        "{{\"path\":{},\"shard\":\"atlantis\"}}",
        serde_json::to_string(&util::world().model_path).unwrap()
    );
    let resp = client.request("POST", "/reload", body.as_bytes()).unwrap();
    assert_eq!(resp.status, 400, "unknown shard is a typed client error");
    server.shutdown();
}

/// Reads one full HTTP/1.1 response (headers + Content-Length body) off
/// a stream that may already hold bytes of the next one.
struct RespReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl RespReader {
    fn next(&mut self) -> Vec<u8> {
        loop {
            if let Some(header_end) = find(&self.buf, b"\r\n\r\n") {
                let headers = String::from_utf8_lossy(&self.buf[..header_end]).into_owned();
                let len: usize = headers
                    .lines()
                    .find_map(|l| {
                        let (name, value) = l.split_once(':')?;
                        name.eq_ignore_ascii_case("content-length")
                            .then(|| value.trim().parse().ok())?
                    })
                    .expect("response has a Content-Length");
                let total = header_end + 4 + len;
                if self.buf.len() >= total {
                    let rest = self.buf.split_off(total);
                    return std::mem::replace(&mut self.buf, rest);
                }
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk).expect("read");
            assert!(n > 0, "connection closed mid-response");
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// Frames one predict request with a fixed request id so response bytes
/// are deterministic across runs and connections.
fn predict_request(text: &str, id: &str) -> Vec<u8> {
    let body = format!("{{\"text\":{}}}", serde_json::to_string(text).unwrap());
    format!(
        "POST /predict HTTP/1.1\r\nHost: t\r\nX-Request-Id: {id}\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

#[test]
fn pipelined_requests_answer_in_order_with_sequential_bytes() {
    let server = util::start_server(ServeConfig {
        max_batch: 4,
        cache_capacity: 0,
        ..ServeConfig::default()
    });
    let texts = util::covered_texts(6);
    assert!(texts.len() >= 4, "enough covered texts to pipeline");

    // Sequential leg: one request at a time on its own connection.
    let mut sequential = Vec::new();
    {
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = RespReader { stream, buf: Vec::new() };
        for (i, text) in texts.iter().enumerate() {
            reader.stream.write_all(&predict_request(text, &format!("pipe-{i}"))).unwrap();
            sequential.push(reader.next());
        }
    }

    // Pipelined leg: every request written back-to-back before any
    // response is read. Answers must arrive strictly in request order
    // and byte-identical to the sequential leg.
    let stream = TcpStream::connect(server.addr()).unwrap();
    let mut reader = RespReader { stream, buf: Vec::new() };
    let mut wire = Vec::new();
    for (i, text) in texts.iter().enumerate() {
        wire.extend_from_slice(&predict_request(text, &format!("pipe-{i}")));
    }
    reader.stream.write_all(&wire).unwrap();
    for (i, expected) in sequential.iter().enumerate() {
        let got = reader.next();
        assert_eq!(
            got,
            *expected,
            "pipelined response {i} differs from sequential:\n got: {}\nwant: {}",
            String::from_utf8_lossy(&got),
            String::from_utf8_lossy(expected)
        );
    }
    server.shutdown();
}
