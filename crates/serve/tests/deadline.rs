//! Deadline-propagation and request-bounding tests: a request's budget
//! (the `X-Deadline-Us` header or the server default) must produce a
//! typed 504 when exhausted, never a late answer; and oversized bodies
//! must be refused with 413 before a byte of the body is read.

mod util;

use edge_serve::{Client, ServeConfig};

fn predict_body(text: &str) -> Vec<u8> {
    format!("{{\"text\":{}}}", serde_json::to_string(&text).unwrap()).into_bytes()
}

/// A one-microsecond client deadline is spent before parsing finishes:
/// the request answers `504 deadline_exceeded`, and the connection (plus
/// the server) keeps working afterwards.
#[test]
fn tiny_client_deadline_yields_504() {
    let server = util::start_server(ServeConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();
    let text = util::covered_texts(1).remove(0);

    let resp = client
        .request_with_headers("POST", "/predict", &[("X-Deadline-Us", "1")], &predict_body(&text))
        .unwrap();
    assert_eq!(resp.status, 504, "{}", resp.text());
    assert_eq!(resp.json().get("error").unwrap().as_str(), Some("deadline_exceeded"));

    // The same connection still serves: the deadline bounded one request,
    // not the transport.
    let resp = client.predict(&text).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, util::expected_fragment(&text));
    server.shutdown();
}

/// Without `X-Deadline-Us`, the server default applies.
#[test]
fn server_default_deadline_bounds_unlabeled_requests() {
    let server = util::start_server(ServeConfig { default_deadline_us: 1, ..Default::default() });
    let mut client = Client::connect(server.addr()).unwrap();
    let text = util::covered_texts(1).remove(0);
    let resp = client.predict(&text).unwrap();
    assert_eq!(resp.status, 504, "{}", resp.text());
    assert_eq!(resp.json().get("error").unwrap().as_str(), Some("deadline_exceeded"));
    server.shutdown();
}

/// A generous budget changes nothing about the answer: bit-identical to
/// the direct model call. `X-Deadline-Us: 0` opts out of the server
/// default entirely (unbounded).
#[test]
fn bounded_and_unbounded_requests_stay_bit_identical() {
    let server = util::start_server(ServeConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();
    let text = util::covered_texts(1).remove(0);

    let resp = client
        .request_with_headers(
            "POST",
            "/predict",
            &[("X-Deadline-Us", "10000000")],
            &predict_body(&text),
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert_eq!(resp.body, util::expected_fragment(&text));

    let resp = client
        .request_with_headers("POST", "/predict", &[("X-Deadline-Us", "0")], &predict_body(&text))
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert_eq!(resp.body, util::expected_fragment(&text));
    server.shutdown();
}

/// A garbage deadline header is torn framing: typed 400, connection drops.
#[test]
fn malformed_deadline_header_is_a_bad_request() {
    let server = util::start_server(ServeConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();
    let text = util::covered_texts(1).remove(0);
    let resp = client
        .request_with_headers(
            "POST",
            "/predict",
            &[("X-Deadline-Us", "soonish")],
            &predict_body(&text),
        )
        .unwrap();
    assert_eq!(resp.status, 400, "{}", resp.text());
    server.shutdown();
}

/// A body bigger than `max_body_bytes` is refused with 413 and the
/// connection closes (the unread body means framing is gone); the server
/// itself keeps serving new connections.
#[test]
fn oversized_body_gets_413_and_the_server_survives() {
    let server = util::start_server(ServeConfig { max_body_bytes: 64, ..ServeConfig::default() });
    let addr = server.addr();
    let text = util::covered_texts(1).remove(0);

    let mut doomed = Client::connect(addr).unwrap();
    let big = format!("{{\"text\":\"{}\"}}", "x".repeat(256));
    let resp = doomed.request("POST", "/predict", big.as_bytes()).unwrap();
    assert_eq!(resp.status, 413, "{}", resp.text());
    assert_eq!(resp.json().get("error").unwrap().as_str(), Some("payload_too_large"));
    assert!(doomed.predict(&text).is_err(), "the oversize connection must be closed");

    let mut client = Client::connect(addr).unwrap();
    let resp = client.predict(&text).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, util::expected_fragment(&text));
    server.shutdown();
}
