//! Request-scoped observability, end to end over a real socket: every
//! response carries `X-Request-Id`, `/debug/requests` replays the ring,
//! `/healthz` degrades when the SLO budget burns, `/metrics` speaks
//! OpenMetrics, and a single `POST /predict` can be reconstructed from
//! the trace — its stage spans summing (±5%) to the root latency even
//! though inference happens on `edge-par` worker threads.

mod util;

use std::collections::HashMap;

use edge_serve::{Client, ServeConfig};

#[test]
fn every_response_carries_a_request_id() {
    let server = util::start_server(ServeConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();

    let health = client.request("GET", "/healthz", b"").unwrap();
    let minted = health.header("x-request-id").expect("minted id on plain requests");
    assert!(minted.starts_with("req-"), "minted ids look like req-<n>: {minted}");

    // A client-supplied id is echoed verbatim instead.
    let resp = client
        .request_with_headers("GET", "/healthz", &[("X-Request-Id", "caller-17")], b"")
        .unwrap();
    assert_eq!(resp.header("x-request-id"), Some("caller-17"));

    // Errors carry one too.
    let resp = client.request("GET", "/nope", b"").unwrap();
    assert_eq!(resp.status, 404);
    assert!(resp.header("x-request-id").is_some());
    server.shutdown();
}

#[test]
fn debug_requests_replays_recent_records() {
    let server = util::start_server(ServeConfig {
        cache_capacity: 0, // force every text through the model path
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.addr()).unwrap();
    let texts = util::covered_texts(3);
    for text in &texts {
        assert_eq!(client.predict(text).unwrap().status, 200);
    }

    let resp = client.request("GET", "/debug/requests", b"").unwrap();
    assert_eq!(resp.status, 200);
    let v = resp.json();
    let requests = v.get("requests").unwrap().as_array().unwrap();
    let predicts: Vec<_> = requests
        .iter()
        .filter(|r| r.get("endpoint").and_then(|e| e.as_str()) == Some("predict"))
        .collect();
    assert_eq!(predicts.len(), 3, "one record per predict: {v:?}");

    let mut last_id = 0u64;
    for record in &predicts {
        let id = record.get("id").unwrap().as_u64().unwrap();
        assert!(id > last_id, "ids are monotone (oldest first)");
        last_id = id;
        assert_eq!(record.get("status").unwrap().as_u64(), Some(200));
        assert_eq!(record.get("batch").unwrap().as_u64(), Some(1));
        let stages = record.get("stage_us").unwrap();
        let total = record.get("total_us").unwrap().as_u64().unwrap();
        let sum: u64 = ["parse", "queue", "batch", "inference", "serialize"]
            .iter()
            .map(|s| stages.get(s).unwrap().as_u64().unwrap())
            .sum();
        assert!(
            sum <= total + total / 20 + 50,
            "stage micros must not exceed the total: {sum} vs {total}"
        );
        assert!(
            stages.get("inference").unwrap().as_u64().unwrap() > 0,
            "an uncached predict spends time in inference"
        );
    }

    // ?n= caps the window.
    let resp = client.request("GET", "/debug/requests?n=2", b"").unwrap();
    let v = resp.json();
    assert!(v.get("requests").unwrap().as_array().unwrap().len() <= 2);
    server.shutdown();
}

#[test]
fn healthz_degrades_when_the_slo_burns() {
    // A 1µs p99 target: every real request is a violation.
    let server = util::start_server(ServeConfig { slo_target_p99_us: 1, ..ServeConfig::default() });
    let mut client = Client::connect(server.addr()).unwrap();

    let before = client.request("GET", "/healthz", b"").unwrap().json();
    assert_eq!(before.get("status").unwrap().as_str(), Some("ok"), "no traffic yet: budget intact");

    let text = util::covered_texts(1).remove(0);
    for _ in 0..5 {
        assert_eq!(client.predict(&text).unwrap().status, 200);
    }
    let after = client.request("GET", "/healthz", b"").unwrap().json();
    assert_eq!(after.get("status").unwrap().as_str(), Some("degraded"));
    assert_eq!(after.get("slo_budget_remaining").unwrap().as_str(), Some("0.0000"));

    // The same signal is scrapeable.
    let metrics = client.request("GET", "/metrics", b"").unwrap();
    let scrape = edge_obs::openmetrics::parse(metrics.text()).unwrap();
    assert_eq!(scrape.value("serve_slo_degraded", &[]), Some(1.0));
    assert!(scrape.value("serve_slo_burn_rate", &[]).unwrap() > 1.0);
    server.shutdown();
}

#[test]
fn metrics_expose_labeled_families_with_quantiles() {
    let server = util::start_server(ServeConfig { cache_capacity: 0, ..ServeConfig::default() });
    let mut client = Client::connect(server.addr()).unwrap();
    let texts = util::covered_texts(2);
    for text in &texts {
        assert_eq!(client.predict(text).unwrap().status, 200);
    }
    assert_eq!(client.request("GET", "/nope", b"").unwrap().status, 404);

    let metrics = client.request("GET", "/metrics", b"").unwrap();
    assert_eq!(metrics.header("content-type"), Some(edge_obs::openmetrics::CONTENT_TYPE));
    let text = metrics.text();
    assert!(text.ends_with("# EOF\n"), "exposition is EOF-terminated");
    let scrape = edge_obs::openmetrics::parse(text).expect("strict parse");

    // Labeled counters: endpoint × status, and the batch-path split.
    assert!(
        scrape
            .value("serve_http_requests_total", &[("endpoint", "predict"), ("status", "200")])
            .unwrap_or(0.0)
            >= 2.0
    );
    assert!(
        scrape
            .value("serve_http_requests_total", &[("endpoint", "other"), ("status", "404")])
            .unwrap_or(0.0)
            >= 1.0
    );
    assert!(
        scrape.value("serve_predict_texts_total", &[("batch_path", "batched")]).unwrap_or(0.0)
            >= 2.0
    );

    // Labeled stage histogram with estimated quantiles per cell.
    for stage in ["parse", "queue", "batch", "inference", "serialize"] {
        let labels = [("stage", stage)];
        assert!(
            scrape.value("serve_stage_us_count", &labels).unwrap_or(0.0) >= 1.0,
            "stage {stage} has samples"
        );
        for q in ["serve_stage_us_p50", "serve_stage_us_p95", "serve_stage_us_p99"] {
            assert!(scrape.value(q, &labels).is_some(), "{q}{{stage={stage}}} present");
        }
    }

    // The unlabeled request histogram also exposes quantile gauges.
    assert!(scrape.value("serve_request_us_p99", &[]).is_some());
    server.shutdown();
}

#[test]
fn a_single_predict_trace_reconstructs_end_to_end() {
    edge_obs::set_trace_enabled(true);
    let server = util::start_server(ServeConfig {
        max_batch: 8,
        // Hold the batch open ~20ms so scheduling noise (condvar wakeups,
        // thread hops) is far below the 5% tolerance.
        max_delay_us: 20_000,
        cache_capacity: 0,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.addr()).unwrap();
    let text = util::covered_texts(1).remove(0);
    let resp = client.predict(&text).unwrap();
    assert_eq!(resp.status, 200);
    let header = resp.header("x-request-id").expect("response carries X-Request-Id");
    let id: u64 = header.strip_prefix("req-").expect("minted id").parse().unwrap();
    server.shutdown();
    edge_obs::set_trace_enabled(false);

    // Slice the global trace by request id (other tests may be tracing
    // concurrently; the id isolates this request's spans exactly).
    let records = edge_obs::trace::records();
    let root = records
        .iter()
        .find(|r| r.name == "serve.request" && r.request == id)
        .expect("root span tagged with the request id");
    assert_eq!(root.parent, 0, "serve.request is a root span");

    let mut stage_durs: HashMap<&str, u64> = HashMap::new();
    let mut stage_threads: HashMap<&str, u64> = HashMap::new();
    for r in &records {
        if r.request == id && r.parent == root.id {
            if let Some(stage) = r.name.strip_prefix("serve.stage.") {
                *stage_durs.entry(stage).or_insert(0) += r.dur_us;
                stage_threads.insert(stage, r.thread);
            }
        }
    }
    for stage in ["parse", "queue", "batch", "inference", "serialize"] {
        assert!(stage_durs.contains_key(stage), "stage {stage} missing: {stage_durs:?}");
    }
    // The scheduler records queue/batch from its own thread, yet they
    // still parent to the handler's root span.
    assert_ne!(stage_threads["queue"], stage_threads["parse"], "queue span crossed threads");

    // The model's own spans nest under the inference stage (adopted on
    // the worker), not under some orphan root.
    let inference_id = records
        .iter()
        .find(|r| r.request == id && r.name == "serve.stage.inference")
        .map(|r| r.id)
        .unwrap();
    assert!(
        records
            .iter()
            .any(|r| r.request == id && r.name == "predict_batch" && r.parent == inference_id),
        "model spans stitch into the request's inference stage"
    );

    let sum: u64 = stage_durs.values().sum();
    let total = root.dur_us.max(1);
    let ratio = sum as f64 / total as f64;
    assert!(
        (0.95..=1.05).contains(&ratio),
        "stage spans must sum to the request latency: {sum}µs vs {total}µs \
         (ratio {ratio:.3}, stages {stage_durs:?})"
    );

    // The JSONL dump round-trips the same request id.
    let parsed = edge_obs::trace::parse_jsonl(&edge_obs::trace::dump_jsonl()).unwrap();
    assert!(parsed.iter().any(|r| r.request == id && r.name == "serve.request"));
}
