//! Brownout degradation-ladder tests, driven deterministically through
//! the `serve.mode.force` failpoint: each fired hit forces one unhealthy
//! controller tick, so the ladder position is exact regardless of timing.
//!
//! `FailScenario::setup` holds a global lock, so these tests serialize
//! against each other.

mod util;

use std::time::{Duration, Instant};

use edge_faults::FailScenario;
use edge_serve::brownout::Mode;
use edge_serve::{Client, ServeConfig};

/// A config whose controller ticks on every evaluation and escalates on
/// a single unhealthy tick — the ladder moves exactly one step per
/// forced failpoint hit.
fn ladder_config(recover_ticks: u32) -> ServeConfig {
    ServeConfig {
        brownout_tick_us: 0,
        brownout_escalate_ticks: 1,
        brownout_recover_ticks: recover_ticks,
        ..ServeConfig::default()
    }
}

fn await_mode(server: &edge_serve::Server, want: Mode) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.brownout_mode() != want {
        assert!(
            Instant::now() < deadline,
            "mode never reached {:?} (stuck at {:?})",
            want,
            server.brownout_mode()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// One forced unhealthy tick lands the ladder at CacheOnly: cached
/// answers still serve bit-identically, misses are rejected with
/// `503 + Retry-After`.
#[test]
fn cache_only_serves_hits_and_rejects_misses() {
    let scenario = FailScenario::setup();
    // Recovery is pinned far away so the mode holds still under test.
    let server = util::start_server(ladder_config(1_000_000));
    let mut client = Client::connect(server.addr()).unwrap();
    let texts = util::covered_texts(2);
    assert!(texts.len() >= 2, "need two covered texts");

    // Prime the cache with the first text while still Full.
    let resp = client.predict(&texts[0]).unwrap();
    assert_eq!(resp.status, 200);

    edge_faults::configure("serve.mode.force", "1*err").unwrap();
    await_mode(&server, Mode::CacheOnly);

    let hit = client.predict(&texts[0]).unwrap();
    assert_eq!(hit.status, 200, "cache hits keep serving: {}", hit.text());
    assert_eq!(hit.body, util::expected_fragment(&texts[0]));

    let miss = client.predict(&texts[1]).unwrap();
    assert_eq!(miss.status, 503, "misses are rejected: {}", miss.text());
    assert_eq!(miss.json().get("error").unwrap().as_str(), Some("browned_out"));
    assert_eq!(miss.json().get("mode").unwrap().as_str(), Some("cache_only"));
    assert!(miss.retry_after().is_some(), "brownout 503 must carry Retry-After");

    // /healthz reports the mode for operators.
    let health = client.request("GET", "/healthz", b"").unwrap();
    assert_eq!(health.json().get("mode").unwrap().as_str(), Some("cache_only"));

    server.shutdown();
    drop(scenario);
}

/// Two forced ticks land at PriorOnly: misses are answered from the
/// fallback prior Gaussian, explicitly marked `"degraded": true`.
#[test]
fn prior_only_answers_degraded_from_the_prior() {
    let scenario = FailScenario::setup();
    let server = util::start_server(ladder_config(1_000_000));
    let mut client = Client::connect(server.addr()).unwrap();
    let text = util::covered_texts(1).remove(0);

    edge_faults::configure("serve.mode.force", "2*err").unwrap();
    await_mode(&server, Mode::PriorOnly);

    let resp = client.predict(&text).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let v = resp.json();
    assert_eq!(v.get("degraded"), Some(&serde_json::Value::Bool(true)));
    assert!(v.get("point").is_some(), "a degraded answer is still a full prediction shape");

    server.shutdown();
    drop(scenario);
}

/// Three forced ticks land at Shed (everything rejected); once the fault
/// clears, the controller walks back to Full within a bounded window and
/// answers bit-identically again.
#[test]
fn shed_rejects_everything_then_recovers_to_full() {
    let scenario = FailScenario::setup();
    let server = util::start_server(ladder_config(2));
    let mut client = Client::connect(server.addr()).unwrap();
    let text = util::covered_texts(1).remove(0);

    edge_faults::configure("serve.mode.force", "3*err").unwrap();
    await_mode(&server, Mode::Shed);

    let resp = client.predict(&text).unwrap();
    assert_eq!(resp.status, 503, "Shed rejects all predicts: {}", resp.text());
    assert_eq!(resp.json().get("mode").unwrap().as_str(), Some("shed"));

    // The failpoint is exhausted: healthy ticks walk the ladder back up.
    await_mode(&server, Mode::Full);
    let resp = client.predict(&text).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert_eq!(resp.body, util::expected_fragment(&text));

    server.shutdown();
    drop(scenario);
}
