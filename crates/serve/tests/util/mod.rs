//! Shared fixture for the serve integration suites: one smoke-scale model
//! trained per test binary, saved as an artifact so every test (and the
//! server) loads bit-identical parameters.

use std::sync::OnceLock;

use edge_core::{
    ArtifactLoad, EdgeConfig, EdgeModel, PredictOptions, PredictRequest, Predictor, QuantMode,
    TrainOptions,
};
use edge_data::{dataset_recognizer, nyma, Dataset, PresetSize};
use edge_serve::{ServeConfig, Server};

pub struct TestWorld {
    /// Saved artifact (zero-copy mapped layout) both the server and
    /// direct-comparison models load.
    pub model_path: String,
    /// The same model saved in the legacy JSON envelope, for parity tests.
    #[allow(dead_code)] // not every test binary uses every fixture
    pub legacy_path: String,
    /// A direct handle on the same parameters (loaded from the artifact).
    pub model: EdgeModel,
    pub dataset: Dataset,
}

static WORLD: OnceLock<TestWorld> = OnceLock::new();

pub fn world() -> &'static TestWorld {
    WORLD.get_or_init(|| {
        let dataset = nyma(PresetSize::Smoke, 4242);
        let (train, _) = dataset.paper_split();
        let mut cfg = EdgeConfig::smoke();
        cfg.epochs = 2;
        let (model, _) = EdgeModel::train(
            train,
            dataset_recognizer(&dataset),
            &dataset.bbox,
            cfg,
            &TrainOptions::default(),
        )
        .expect("train");
        let path =
            std::env::temp_dir().join(format!("edge_serve_test_{}.edgemap", std::process::id()));
        model.save_artifact(&path, QuantMode::None).expect("save");
        let legacy =
            std::env::temp_dir().join(format!("edge_serve_test_{}.model.json", std::process::id()));
        #[allow(deprecated)] // parity suites compare against the old format
        model.save(&legacy).expect("legacy save");
        let model_path = path.to_string_lossy().into_owned();
        let model = EdgeModel::load_artifact(&model_path).expect("load");
        TestWorld { model_path, legacy_path: legacy.to_string_lossy().into_owned(), model, dataset }
    })
}

/// Starts a server on an ephemeral port with the shared model.
pub fn start_server(mut config: ServeConfig) -> Server {
    config.addr = "127.0.0.1:0".to_string();
    let model = EdgeModel::load_artifact(&world().model_path).expect("load");
    Server::start(model, config).expect("server starts")
}

/// Test-split texts the model covers (at least one resolved entity).
pub fn covered_texts(n: usize) -> Vec<String> {
    let w = world();
    let (_, test) = w.dataset.paper_split();
    test.iter()
        .filter(|t| !w.model.resolve_entities(&t.text).is_empty())
        .take(n)
        .map(|t| t.text.clone())
        .collect()
}

/// A test-split text with no recognized entity (abstention fixture).
#[allow(dead_code)] // not every test binary uses every fixture
pub fn uncovered_text() -> String {
    let w = world();
    let (_, test) = w.dataset.paper_split();
    test.iter()
        .find(|t| w.model.resolve_entities(&t.text).is_empty())
        .map(|t| t.text.clone())
        .unwrap_or_else(|| "nothing recognizable here".to_string())
}

/// What the server must answer for `text`, byte for byte: the rendered
/// direct `Predictor::locate` result.
#[allow(dead_code)] // not every test binary uses every fixture
pub fn expected_fragment(text: &str) -> Vec<u8> {
    let w = world();
    match w.model.locate(&PredictRequest::text(text), &PredictOptions::default()) {
        Ok(resp) => edge_serve::json::render_response(&resp),
        Err(err) => edge_serve::json::render_error(&err),
    }
}
