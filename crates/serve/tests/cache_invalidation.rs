//! Response-cache invalidation coverage: entries cached under an old
//! model generation must never be served after a reload (byte-level
//! check against a genuinely different model), and capacity-eviction
//! churn must keep the hit/miss accounting consistent.

mod util;

use edge_core::{
    ArtifactLoad, EdgeConfig, EdgeModel, PredictOptions, PredictRequest, Predictor, QuantMode,
    TrainOptions,
};
use edge_data::dataset_recognizer;
use edge_serve::{Client, ServeConfig};

/// Trains a second, genuinely different model (more epochs → different
/// parameters) and returns its artifact path plus a loaded handle.
fn second_model() -> (String, EdgeModel) {
    let w = util::world();
    let (train, _) = w.dataset.paper_split();
    let mut cfg = EdgeConfig::smoke();
    cfg.epochs = 4;
    let (model, _) = EdgeModel::train(
        train,
        dataset_recognizer(&w.dataset),
        &w.dataset.bbox,
        cfg,
        &TrainOptions::default(),
    )
    .expect("train second model");
    let path = std::env::temp_dir()
        .join(format!("edge_serve_cache_inval_{}.model.json", std::process::id()));
    model.save_artifact(&path, QuantMode::None).expect("save");
    let path = path.to_string_lossy().into_owned();
    let model = EdgeModel::load_artifact(&path).expect("load");
    (path, model)
}

/// After a reload, a text answered (and cached) under generation 1 must
/// be answered by the *new* model — the stale generation-1 bytes must
/// never appear again, verified byte-for-byte against both models.
#[test]
fn stale_entries_are_never_served_after_reload() {
    let (new_path, new_model) = second_model();
    let server = util::start_server(ServeConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();
    let text = util::covered_texts(1).remove(0);

    // Serve and cache under generation 1.
    let before = client.predict(&text).unwrap();
    assert_eq!(before.status, 200);
    assert_eq!(before.body, util::expected_fragment(&text));
    // Hit the cache once so the entry is demonstrably live.
    let cached = client.predict(&text).unwrap();
    assert_eq!(cached.body, before.body);
    let (hits, _) = server.cache_stats();
    assert!(hits >= 1, "second identical predict should hit the cache");

    // Swap in the different model.
    let body = format!("{{\"path\":{}}}", serde_json::to_string(&new_path).unwrap());
    let resp = client.request("POST", "/reload", body.as_bytes()).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert_eq!(server.generation(), 2);

    // The same text now answers with the new model's bytes, exactly.
    let after = client.predict(&text).unwrap();
    assert_eq!(after.status, 200);
    let expected_new =
        match new_model.locate(&PredictRequest::text(&text), &PredictOptions::default()) {
            Ok(resp) => edge_serve::json::render_response(&resp),
            Err(err) => edge_serve::json::render_error(&err),
        };
    assert_eq!(after.body, expected_new, "post-reload answer must come from the new model");
    assert_ne!(after.body, before.body, "the two models must actually disagree");

    std::fs::remove_file(&new_path).ok();
    server.shutdown();
}

/// Under heavy capacity churn (cache far smaller than the working set),
/// every response stays byte-identical and the hit/miss counters stay
/// consistent: each admitted text is exactly one lookup, so hits+misses
/// equals the lookup count and hits never exceed it.
#[test]
fn capacity_eviction_churn_keeps_stats_consistent() {
    let server = util::start_server(ServeConfig {
        cache_capacity: 2,
        cache_shards: 1,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.addr()).unwrap();
    let texts = util::covered_texts(4);
    assert!(texts.len() >= 3, "need a working set larger than the cache");

    let mut lookups = 0u64;
    for round in 0..3 {
        for text in &texts {
            let resp = client.predict(text).unwrap();
            assert_eq!(resp.status, 200, "round {round}: {}", resp.text());
            assert_eq!(resp.body, util::expected_fragment(text), "round {round}");
            lookups += 1;
        }
    }
    let (hits, misses) = server.cache_stats();
    assert_eq!(hits + misses, lookups, "every admitted text is exactly one lookup");
    assert!(misses >= texts.len() as u64, "cold first round must miss");
    assert!(hits <= lookups, "gauge consistency");
    server.shutdown();
}
