//! Fault-injection tests for the serving path: queue overflow must shed
//! with 429, a failing reload must leave the old model serving, and a
//! dropped accept must not take the listener down.
//!
//! `FailScenario::setup` holds a global lock, so these tests are
//! serialized against each other (and any other failpoint user).

mod util;

use std::time::Duration;

use edge_faults::FailScenario;
use edge_serve::{Client, ServeConfig};

/// With the scheduler held at the `serve.dispatch.hold` failpoint, a tiny
/// queue fills up and further texts are shed with 429 (and counted).
#[test]
fn full_queue_sheds_with_429() {
    let scenario = FailScenario::setup();
    let server = util::start_server(ServeConfig {
        max_batch: 4,
        queue_capacity: 4,
        cache_capacity: 0,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let texts = util::covered_texts(6);
    assert!(texts.len() >= 5, "need enough covered texts to overflow a queue of 4");

    // Freeze the scheduler before it can drain anything: it checks this
    // failpoint between idle waits (every ~20ms), so after a grace period
    // it is parked in the hold loop and nothing gets dispatched.
    edge_faults::configure("serve.dispatch.hold", "10000*err").unwrap();
    std::thread::sleep(Duration::from_millis(300));

    // Fill the queue from background threads (their requests will block in
    // Pending::wait until we release the scheduler).
    let filler = {
        let texts = texts.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let refs: Vec<&str> = texts[..4].iter().map(String::as_str).collect();
            client.predict_batch(&refs).unwrap()
        })
    };
    // Wait until the four jobs are actually queued.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.queue_depth() < 4 {
        assert!(std::time::Instant::now() < deadline, "queue never filled");
        std::thread::sleep(Duration::from_millis(5));
    }

    // The queue is full: the next text must be shed, all or nothing.
    let mut client = Client::connect(addr).unwrap();
    let shed = client.predict(&texts[4]).unwrap();
    assert_eq!(shed.status, 429, "full queue must shed: {}", shed.text());
    assert_eq!(shed.json().get("error").unwrap().as_str(), Some("overloaded"));

    // A batch that does not entirely fit is also rejected whole.
    let refs: Vec<&str> = texts[..2].iter().map(String::as_str).collect();
    assert_eq!(client.predict_batch(&refs).unwrap().status, 429);

    // Release the scheduler: the queued requests complete normally.
    edge_faults::remove("serve.dispatch.hold");
    let resp = filler.join().unwrap();
    assert_eq!(resp.status, 200, "queued batch completes after release");
    let after = client.predict(&texts[4]).unwrap();
    assert_eq!(after.status, 200);
    assert_eq!(after.body, util::expected_fragment(&texts[4]));

    server.shutdown();
    drop(scenario);
}

/// An injected failure on the reload path is surfaced as 422 and the old
/// model keeps serving; once the failpoint is exhausted, reload succeeds.
#[test]
fn failed_reload_keeps_old_model_serving() {
    let scenario = FailScenario::setup();
    let w = util::world();
    let server = util::start_server(ServeConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();

    edge_faults::configure("serve.reload", "1*err(injected reload fault)").unwrap();

    let body = format!("{{\"path\":{}}}", serde_json::to_string(&w.model_path).unwrap());
    let resp = client.request("POST", "/reload", body.as_bytes()).unwrap();
    assert_eq!(resp.status, 422, "injected fault must reject the reload: {}", resp.text());
    assert_eq!(server.generation(), 1, "failed reload must not bump the generation");

    // The old model still answers, bit for bit.
    let text = util::covered_texts(1).remove(0);
    let resp = client.predict(&text).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, util::expected_fragment(&text));

    // The failpoint fired once; the same reload now goes through.
    let resp = client.request("POST", "/reload", body.as_bytes()).unwrap();
    assert_eq!(resp.status, 200, "reload succeeds once the fault is spent: {}", resp.text());
    assert_eq!(server.generation(), 2);

    server.shutdown();
    drop(scenario);
}

/// An injected accept failure drops one connection; the listener survives
/// and the next connection is served normally.
#[test]
fn dropped_accept_does_not_kill_the_listener() {
    let scenario = FailScenario::setup();
    let server = util::start_server(ServeConfig::default());
    let addr = server.addr();
    let text = util::covered_texts(1).remove(0);

    edge_faults::configure("serve.accept", "1*err").unwrap();

    // The first connection is accepted then dropped: the request errors out
    // (reset or EOF, depending on timing).
    let mut doomed = Client::connect(addr).unwrap();
    assert!(doomed.predict(&text).is_err(), "the faulted connection must be dropped");

    // The listener is still alive: a fresh connection works.
    let mut client = Client::connect(addr).unwrap();
    let resp = client.predict(&text).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, util::expected_fragment(&text));

    server.shutdown();
    drop(scenario);
}
