//! Fault-injection tests for the serving path: queue overflow must shed
//! with 429, a failing reload must leave the old model serving, and a
//! dropped accept must not take the listener down.
//!
//! `FailScenario::setup` holds a global lock, so these tests are
//! serialized against each other (and any other failpoint user).

mod util;

use std::time::Duration;

use edge_faults::FailScenario;
use edge_serve::{Client, ServeConfig};

/// With the scheduler held at the `serve.dispatch.hold` failpoint, a tiny
/// queue fills up and further texts are shed with 429 (and counted).
#[test]
fn full_queue_sheds_with_429() {
    let scenario = FailScenario::setup();
    let server = util::start_server(ServeConfig {
        max_batch: 4,
        queue_capacity: 4,
        cache_capacity: 0,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let texts = util::covered_texts(6);
    assert!(texts.len() >= 5, "need enough covered texts to overflow a queue of 4");

    // Freeze the scheduler before it can drain anything: it checks this
    // failpoint between idle waits (every ~20ms), so after a grace period
    // it is parked in the hold loop and nothing gets dispatched.
    edge_faults::configure("serve.dispatch.hold", "10000*err").unwrap();
    std::thread::sleep(Duration::from_millis(300));

    // Fill the queue from background threads (their requests will block in
    // Pending::wait until we release the scheduler).
    let filler = {
        let texts = texts.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let refs: Vec<&str> = texts[..4].iter().map(String::as_str).collect();
            client.predict_batch(&refs).unwrap()
        })
    };
    // Wait until the four jobs are actually queued.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.queue_depth() < 4 {
        assert!(std::time::Instant::now() < deadline, "queue never filled");
        std::thread::sleep(Duration::from_millis(5));
    }

    // The queue is full: the next text must be shed, all or nothing.
    let mut client = Client::connect(addr).unwrap();
    let shed = client.predict(&texts[4]).unwrap();
    assert_eq!(shed.status, 429, "full queue must shed: {}", shed.text());
    assert_eq!(shed.json().get("error").unwrap().as_str(), Some("overloaded"));

    // A batch that does not entirely fit is also rejected whole.
    let refs: Vec<&str> = texts[..2].iter().map(String::as_str).collect();
    assert_eq!(client.predict_batch(&refs).unwrap().status, 429);

    // Release the scheduler: the queued requests complete normally.
    edge_faults::remove("serve.dispatch.hold");
    let resp = filler.join().unwrap();
    assert_eq!(resp.status, 200, "queued batch completes after release");
    let after = client.predict(&texts[4]).unwrap();
    assert_eq!(after.status, 200);
    assert_eq!(after.body, util::expected_fragment(&texts[4]));

    server.shutdown();
    drop(scenario);
}

/// An injected failure on the reload path is surfaced as 422 and the old
/// model keeps serving; once the failpoint is exhausted, reload succeeds.
#[test]
fn failed_reload_keeps_old_model_serving() {
    let scenario = FailScenario::setup();
    let w = util::world();
    let server = util::start_server(ServeConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();

    edge_faults::configure("serve.reload", "1*err(injected reload fault)").unwrap();

    let body = format!("{{\"path\":{}}}", serde_json::to_string(&w.model_path).unwrap());
    let resp = client.request("POST", "/reload", body.as_bytes()).unwrap();
    assert_eq!(resp.status, 422, "injected fault must reject the reload: {}", resp.text());
    assert_eq!(server.generation(), 1, "failed reload must not bump the generation");

    // The old model still answers, bit for bit.
    let text = util::covered_texts(1).remove(0);
    let resp = client.predict(&text).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, util::expected_fragment(&text));

    // The failpoint fired once; the same reload now goes through.
    let resp = client.request("POST", "/reload", body.as_bytes()).unwrap();
    assert_eq!(resp.status, 200, "reload succeeds once the fault is spent: {}", resp.text());
    assert_eq!(server.generation(), 2);

    server.shutdown();
    drop(scenario);
}

/// A worker stalled at the `serve.worker.stall` failpoint (sleep action)
/// past the request's deadline yields a typed 504 — never a silently
/// late answer — and the worker pool is healthy for the next request.
#[test]
fn stalled_worker_past_deadline_yields_504() {
    let scenario = FailScenario::setup();
    let server = util::start_server(ServeConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();
    let text = util::covered_texts(1).remove(0);
    let body = format!("{{\"text\":{}}}", serde_json::to_string(&text).unwrap());

    edge_faults::configure("serve.worker.stall", "1*sleep(400)").unwrap();
    let resp = client
        .request_with_headers("POST", "/predict", &[("X-Deadline-Us", "100000")], body.as_bytes())
        .unwrap();
    assert_eq!(resp.status, 504, "{}", resp.text());
    assert_eq!(resp.json().get("error").unwrap().as_str(), Some("deadline_exceeded"));

    // The stall was one hit; the pool answers normally afterwards.
    let resp = client.predict(&text).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert_eq!(resp.body, util::expected_fragment(&text));

    server.shutdown();
    drop(scenario);
}

/// With the scheduler held, the `serve.queue.expire` failpoint force-
/// evicts queued jobs: the waiting request answers 504 immediately
/// instead of blocking on a dispatch that never comes.
#[test]
fn forced_queue_eviction_answers_504() {
    let scenario = FailScenario::setup();
    let server = util::start_server(ServeConfig::default());
    let addr = server.addr();
    let text = util::covered_texts(1).remove(0);

    edge_faults::configure("serve.dispatch.hold", "10000*err").unwrap();
    std::thread::sleep(Duration::from_millis(300));

    let waiter = {
        let text = text.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client.predict(&text).unwrap()
        })
    };
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.queue_depth() < 1 {
        assert!(std::time::Instant::now() < deadline, "job never queued");
        std::thread::sleep(Duration::from_millis(5));
    }

    // The hold loop evicts between sleeps, so the fire lands within ~ms.
    edge_faults::configure("serve.queue.expire", "1*err").unwrap();
    let resp = waiter.join().unwrap();
    assert_eq!(resp.status, 504, "evicted request answers 504: {}", resp.text());
    assert_eq!(resp.json().get("error").unwrap().as_str(), Some("deadline_exceeded"));
    assert_eq!(server.queue_depth(), 0, "the queue drained by eviction");

    // Release the scheduler; fresh work completes normally.
    edge_faults::remove("serve.dispatch.hold");
    let mut client = Client::connect(addr).unwrap();
    let resp = client.predict(&text).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, util::expected_fragment(&text));

    server.shutdown();
    drop(scenario);
}

/// Repeated reload failures open the circuit breaker (503 circuit_open
/// with Retry-After); after the cooldown a healthy reload closes it.
#[test]
fn reload_breaker_opens_then_recovers_after_cooldown() {
    // No failpoints, but the scenario lock keeps other tests' global
    // failpoint state away from this server.
    let scenario = FailScenario::setup();
    let w = util::world();
    let server = util::start_server(ServeConfig {
        reload_breaker_threshold: 2,
        reload_breaker_cooldown_secs: 1,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.addr()).unwrap();

    let bad = b"{\"path\":\"/nonexistent/model.json\"}";
    assert_eq!(client.request("POST", "/reload", bad).unwrap().status, 422);
    assert_eq!(client.request("POST", "/reload", bad).unwrap().status, 422);
    assert!(server.reload_breaker_open(), "two failures at threshold 2 open the breaker");

    // Open breaker: rejected without touching the filesystem at all.
    let resp = client.request("POST", "/reload", bad).unwrap();
    assert_eq!(resp.status, 503, "{}", resp.text());
    assert_eq!(resp.json().get("error").unwrap().as_str(), Some("circuit_open"));
    assert!(resp.retry_after().is_some(), "an open breaker advertises Retry-After");
    assert_eq!(server.generation(), 1, "nothing reloaded while open");

    // Cooldown lapses: the half-open probe admits one attempt, and a
    // healthy artifact closes the breaker.
    std::thread::sleep(Duration::from_millis(1100));
    let good = format!("{{\"path\":{}}}", serde_json::to_string(&w.model_path).unwrap());
    let resp = client.request("POST", "/reload", good.as_bytes()).unwrap();
    assert_eq!(resp.status, 200, "half-open probe succeeds: {}", resp.text());
    assert!(!server.reload_breaker_open());
    assert_eq!(server.generation(), 2);

    server.shutdown();
    drop(scenario);
}

/// An injected accept failure drops one connection; the listener survives
/// and the next connection is served normally.
#[test]
fn dropped_accept_does_not_kill_the_listener() {
    let scenario = FailScenario::setup();
    let server = util::start_server(ServeConfig::default());
    let addr = server.addr();
    let text = util::covered_texts(1).remove(0);

    edge_faults::configure("serve.accept", "1*err").unwrap();

    // The first connection is accepted then dropped: the request errors out
    // (reset or EOF, depending on timing).
    let mut doomed = Client::connect(addr).unwrap();
    assert!(doomed.predict(&text).is_err(), "the faulted connection must be dropped");

    // The listener is still alive: a fresh connection works.
    let mut client = Client::connect(addr).unwrap();
    let resp = client.predict(&text).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, util::expected_fragment(&text));

    server.shutdown();
    drop(scenario);
}
