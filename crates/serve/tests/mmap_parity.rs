//! Cross-format serving parity: a server loading the zero-copy mapped
//! artifact must answer byte-for-byte what a server loading the legacy
//! JSON envelope answers (f32 artifacts are bit-identical by design), and
//! the LSH cache tier with `cache_hamming_max = 0` must leave response
//! bytes untouched.

mod util;

#[allow(deprecated)] // the parity baseline *is* the legacy loader
use edge_core::{EdgeModel, PredictOptions, PredictRequest, Predictor};
use edge_serve::{Client, ServeConfig, Server};

/// The serve-level twin of the core byte-identity test: the mapped-format
/// server's rendered predictions equal the legacy model's direct
/// rendering, float bits included.
#[test]
fn mapped_server_matches_legacy_rendering_bit_for_bit() {
    let w = util::world();
    #[allow(deprecated)]
    let legacy = EdgeModel::load(&w.legacy_path).expect("legacy load");

    let server = util::start_server(ServeConfig {
        cache_capacity: 0, // every text must go through the mmapped model
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.addr()).unwrap();

    let mut compared = 0;
    for text in util::covered_texts(16) {
        let resp = client.predict(&text).unwrap();
        assert_eq!(resp.status, 200);
        let direct = legacy
            .locate(&PredictRequest::text(&text), &PredictOptions::default())
            .map(|r| edge_serve::json::render_response(&r))
            .expect("legacy model covers the text");
        assert_eq!(resp.body, direct, "bytes diverged for: {text}");
        compared += 1;
    }
    assert!(compared >= 8, "compared only {compared}");
    server.shutdown();
}

/// A cold start from the mapped artifact must serve the very first
/// request correctly — the lazy sections must not be needed on the
/// predict path.
#[test]
fn first_request_after_mmap_cold_start_is_correct() {
    let server = Server::start_from_artifact(
        &util::world().model_path,
        ServeConfig { addr: "127.0.0.1:0".into(), ..ServeConfig::default() },
    )
    .expect("cold start");
    let mut client = Client::connect(server.addr()).unwrap();
    let text = util::covered_texts(1).remove(0);
    let resp = client.predict(&text).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, util::expected_fragment(&text));
    server.shutdown();
}

/// `cache_hamming_max = 0` keeps the approximate tier fully disabled:
/// responses (hits and misses alike) are byte-identical to the plain
/// exact-cache server.
#[test]
fn hamming_zero_server_is_byte_identical_to_exact_cache_server() {
    let exact = util::start_server(ServeConfig::default());
    let lsh_off = util::start_server(ServeConfig {
        cache_lsh_bits: 16,
        cache_hamming_max: 0,
        ..ServeConfig::default()
    });
    let mut c_exact = Client::connect(exact.addr()).unwrap();
    let mut c_off = Client::connect(lsh_off.addr()).unwrap();

    let texts = util::covered_texts(10);
    // Two passes so the second pass is served from each cache.
    for _ in 0..2 {
        for text in &texts {
            let a = c_exact.predict(text).unwrap();
            let b = c_off.predict(text).unwrap();
            assert_eq!(a.status, b.status);
            assert_eq!(a.body, b.body, "bytes diverged for: {text}");
        }
    }
    exact.shutdown();
    lsh_off.shutdown();
}

/// With the tier on, the served bytes are still valid rendered
/// predictions (the approximation trades *which* cached answer you get,
/// never its integrity), and generation safety holds across reloads.
#[test]
fn lsh_enabled_server_serves_wellformed_cached_bytes() {
    let server = util::start_server(ServeConfig {
        cache_lsh_bits: 16,
        cache_hamming_max: 2,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.addr()).unwrap();
    let texts = util::covered_texts(8);
    for _ in 0..2 {
        for text in &texts {
            let resp = client.predict(text).unwrap();
            assert_eq!(resp.status, 200);
            let body = resp.text();
            assert!(body.contains("\"point\""), "malformed cached body: {body}");
        }
    }
    server.shutdown();
}
