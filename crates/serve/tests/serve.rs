//! End-to-end serving tests over real sockets: batched responses must be
//! bit-identical to direct `Predictor` calls, concurrent clients must not
//! interleave, and hot reload must swap models atomically mid-traffic.

mod util;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use edge_core::{
    ArtifactLoad, EdgeConfig, EdgeModel, PredictOptions, PredictRequest, Predictor, QuantMode,
    TrainOptions,
};
use edge_data::{dataset_recognizer, nyma, PresetSize};
use edge_serve::{Client, ServeConfig};

#[test]
fn batched_responses_are_bit_identical_to_direct_calls() {
    let server = util::start_server(ServeConfig {
        max_batch: 8,
        max_delay_us: 200,
        cache_capacity: 0, // cache off: every text must go through the model
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.addr()).unwrap();

    let texts = util::covered_texts(12);
    assert!(texts.len() >= 8, "smoke corpus covers enough tweets");
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    let resp = client.predict_batch(&refs).unwrap();
    assert_eq!(resp.status, 200);

    // The batch envelope is exactly the direct fragments, comma-joined —
    // so responses are byte-identical to offline rendering, float bits
    // included.
    let mut expected = b"{\"results\":[".to_vec();
    for (i, text) in texts.iter().enumerate() {
        if i > 0 {
            expected.push(b',');
        }
        expected.extend_from_slice(&util::expected_fragment(text));
    }
    expected.extend_from_slice(b"]}");
    assert_eq!(resp.body, expected, "server bytes differ from direct rendering");

    // Single-shape requests return the bare fragment.
    let single = client.predict(&texts[0]).unwrap();
    assert_eq!(single.status, 200);
    assert_eq!(single.body, util::expected_fragment(&texts[0]));
    server.shutdown();
}

#[test]
fn abstentions_are_typed_in_the_batch_envelope() {
    let server = util::start_server(ServeConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();
    let covered = util::covered_texts(1).remove(0);
    let uncovered = util::uncovered_text();

    let resp = client.predict_batch(&[covered.as_str(), uncovered.as_str()]).unwrap();
    assert_eq!(resp.status, 200);
    let v = resp.json();
    let results = v.get("results").unwrap().as_array().unwrap();
    assert_eq!(results.len(), 2);
    assert!(results[0].get("point").is_some(), "covered text predicts");
    assert_eq!(
        results[1].get("error").and_then(|e| e.as_str()),
        Some("no_entities"),
        "uncovered text abstains with the typed error"
    );

    // The same request with the prior fallback answers both.
    let body = format!(
        "{{\"texts\":[{},{}],\"fallback_prior\":true}}",
        serde_json::to_string(&covered).unwrap(),
        serde_json::to_string(&uncovered).unwrap()
    );
    let resp = client.request("POST", "/predict", body.as_bytes()).unwrap();
    assert_eq!(resp.status, 200);
    let v = resp.json();
    let results = v.get("results").unwrap().as_array().unwrap();
    assert!(results[1].get("point").is_some(), "fallback answers the uncovered text");
    assert!(
        matches!(results[1].get("from_fallback"), Some(serde_json::Value::Bool(true))),
        "the fallback answer is flagged as such"
    );
    server.shutdown();
}

#[test]
fn concurrent_clients_get_unscrambled_answers() {
    let server = util::start_server(ServeConfig {
        max_batch: 16,
        max_delay_us: 300,
        cache_capacity: 0,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let texts = util::covered_texts(8);
    let handles: Vec<_> = (0..4)
        .map(|worker| {
            let texts = texts.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for round in 0..10 {
                    let text = &texts[(worker + round) % texts.len()];
                    let resp = client.predict(text).unwrap();
                    assert_eq!(resp.status, 200);
                    assert_eq!(
                        resp.body,
                        util::expected_fragment(text),
                        "worker {worker} round {round} got someone else's answer"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    server.shutdown();
}

#[test]
fn cache_serves_repeat_entity_sets_identically() {
    let server = util::start_server(ServeConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();
    let text = util::covered_texts(1).remove(0);
    let first = client.predict(&text).unwrap();
    let second = client.predict(&text).unwrap();
    assert_eq!(first.status, 200);
    assert_eq!(first.body, second.body);
    let (hits, _misses) = server.cache_stats();
    assert!(hits >= 1, "the repeat request must hit the cache");
    server.shutdown();
}

#[test]
fn healthz_metrics_and_unknown_routes() {
    let server = util::start_server(ServeConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();

    let health = client.request("GET", "/healthz", b"").unwrap();
    assert_eq!(health.status, 200);
    let v = health.json();
    assert_eq!(v.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(v.get("generation").unwrap().as_str(), Some("1"));

    let _ = client.predict(&util::covered_texts(1)[0]).unwrap();
    let metrics = client.request("GET", "/metrics", b"").unwrap();
    assert_eq!(metrics.status, 200);
    assert_eq!(metrics.header("content-type"), Some(edge_obs::openmetrics::CONTENT_TYPE));
    let scrape = edge_obs::openmetrics::parse(metrics.text()).expect("exposition parses");
    assert!(
        scrape.value("serve_requests_total", &[]).unwrap_or(0.0) >= 1.0,
        "exposition lists serve counters"
    );
    assert!(
        scrape.value("serve_cache_stats_hits", &[]).is_some(),
        "cache stats are proper gauges now"
    );

    assert_eq!(client.request("GET", "/nope", b"").unwrap().status, 404);
    assert_eq!(client.request("GET", "/predict", b"").unwrap().status, 405);
    assert_eq!(client.request("POST", "/predict", b"{malformed").unwrap().status, 400);
    server.shutdown();
}

#[test]
fn reload_swaps_the_model_mid_traffic_and_rejects_corruption() {
    let w = util::world();
    let server = util::start_server(ServeConfig::default());
    let addr = server.addr();

    // Continuous traffic in the background for the whole reload dance.
    let stop = Arc::new(AtomicBool::new(false));
    let traffic = {
        let stop = Arc::clone(&stop);
        let texts = util::covered_texts(6);
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let mut i = 0usize;
            while !stop.load(Ordering::Acquire) {
                let resp = client.predict(&texts[i % texts.len()]).unwrap();
                assert_eq!(resp.status, 200, "traffic must never fail during reloads");
                i += 1;
            }
            i
        })
    };

    let mut client = Client::connect(addr).unwrap();

    // 1. A corrupt artifact is rejected and the old model keeps serving.
    let corrupt_path =
        std::env::temp_dir().join(format!("edge_serve_corrupt_{}.json", std::process::id()));
    let mut bytes = std::fs::read(&w.model_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff; // flip a payload byte: CRC64 must catch it
    std::fs::write(&corrupt_path, &bytes).unwrap();
    let body = format!(
        "{{\"path\":{}}}",
        serde_json::to_string(&corrupt_path.to_string_lossy().into_owned()).unwrap()
    );
    let resp = client.request("POST", "/reload", body.as_bytes()).unwrap();
    assert_eq!(resp.status, 422, "corrupt artifact must be rejected: {}", resp.text());
    assert_eq!(server.generation(), 1, "rejected reload must not bump the generation");
    let text = util::covered_texts(1).remove(0);
    assert_eq!(
        client.predict(&text).unwrap().body,
        util::expected_fragment(&text),
        "old model keeps serving after a rejected reload"
    );

    // 2. A healthy artifact (a different model) swaps in atomically.
    let dataset2 = nyma(PresetSize::Smoke, 777);
    let (train2, _) = dataset2.paper_split();
    let mut cfg = EdgeConfig::smoke();
    cfg.epochs = 2;
    let (model2, _) = EdgeModel::train(
        train2,
        dataset_recognizer(&dataset2),
        &dataset2.bbox,
        cfg,
        &TrainOptions::default(),
    )
    .unwrap();
    let path2 = std::env::temp_dir().join(format!("edge_serve_reload_{}.json", std::process::id()));
    model2.save_artifact(&path2, QuantMode::None).unwrap();
    let body = format!(
        "{{\"path\":{}}}",
        serde_json::to_string(&path2.to_string_lossy().into_owned()).unwrap()
    );
    let resp = client.request("POST", "/reload", body.as_bytes()).unwrap();
    assert_eq!(resp.status, 200, "healthy reload: {}", resp.text());
    assert_eq!(server.generation(), 2);

    // Fresh requests are now answered by model2, bit for bit.
    let model2 = EdgeModel::load_artifact(&path2).unwrap();
    let (_, test2) = dataset2.paper_split();
    let text2 = test2
        .iter()
        .find(|t| !model2.resolve_entities(&t.text).is_empty())
        .map(|t| t.text.clone())
        .expect("model2 covers something");
    let direct = model2
        .locate(&PredictRequest::text(&text2), &PredictOptions::default())
        .map(|r| edge_serve::json::render_response(&r))
        .unwrap();
    assert_eq!(client.predict(&text2).unwrap().body, direct);

    stop.store(true, Ordering::Release);
    let sent = traffic.join().unwrap();
    assert!(sent > 0, "the traffic thread actually exercised the server");
    std::fs::remove_file(&corrupt_path).ok();
    std::fs::remove_file(&path2).ok();
    server.shutdown();
}

#[test]
fn graceful_shutdown_answers_inflight_requests() {
    let server = util::start_server(ServeConfig {
        max_batch: 4,
        max_delay_us: 50_000, // a long batching window to shut down into
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let text = util::covered_texts(1).remove(0);
    let handle = {
        let text = text.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client.predict(&text).unwrap()
        })
    };
    // Let the request reach the queue, then drain.
    std::thread::sleep(std::time::Duration::from_millis(100));
    server.shutdown();
    let resp = handle.join().unwrap();
    assert_eq!(resp.status, 200, "queued request is answered during drain");
    assert_eq!(resp.body, util::expected_fragment(&text));
}
