//! A circuit breaker for `/reload`: after repeated checksum/deserialize
//! failures the breaker opens and rejects further reload attempts with
//! `503 + Retry-After` instead of re-verifying a corrupt artifact (a full
//! CRC64 pass plus a deserialize attempt) on every call — a corrupt-reload
//! storm must not become a CPU denial of service.
//!
//! Classic three-state machine: **closed** (attempts flow), **open**
//! (attempts rejected until the cooldown expires), **half-open** (the
//! first attempt after cooldown is let through as a probe; failure
//! re-opens immediately, success closes).

use std::sync::Mutex;
use std::time::{Duration, Instant};

struct BreakerState {
    consecutive_failures: u32,
    open_until: Option<Instant>,
}

/// See the module docs.
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    state: Mutex<BreakerState>,
}

impl CircuitBreaker {
    /// Opens after `threshold` consecutive failures, for `cooldown`.
    /// `threshold == 0` disables the breaker (always closed).
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        CircuitBreaker {
            threshold,
            cooldown,
            state: Mutex::new(BreakerState { consecutive_failures: 0, open_until: None }),
        }
    }

    /// `Ok` when an attempt may proceed; `Err(retry_after_secs)` while
    /// open. The first call after the cooldown expires transitions to
    /// half-open and is allowed as the probe.
    pub fn check(&self) -> Result<(), u64> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(until) = s.open_until {
            let now = Instant::now();
            if now < until {
                let secs = (until - now).as_secs_f64().ceil() as u64;
                return Err(secs.max(1));
            }
            // Cooldown over: half-open. Clear the gate so this caller
            // probes; a failure re-opens via record_failure.
            s.open_until = None;
        }
        Ok(())
    }

    /// Notes a failed attempt; opens the breaker at the threshold (and on
    /// every failure past it, including the half-open probe).
    pub fn record_failure(&self) {
        if self.threshold == 0 {
            return;
        }
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.consecutive_failures = s.consecutive_failures.saturating_add(1);
        if s.consecutive_failures >= self.threshold {
            s.open_until = Some(Instant::now() + self.cooldown);
        }
    }

    /// Notes a successful attempt: closes the breaker and resets.
    pub fn record_success(&self) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.consecutive_failures = 0;
        s.open_until = None;
    }

    /// True while attempts would be rejected right now.
    pub fn is_open(&self) -> bool {
        let s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        matches!(s.open_until, Some(until) if Instant::now() < until)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_at_threshold_and_reports_retry_after() {
        let b = CircuitBreaker::new(3, Duration::from_secs(10));
        assert!(b.check().is_ok());
        b.record_failure();
        b.record_failure();
        assert!(b.check().is_ok(), "below threshold stays closed");
        b.record_failure();
        let retry = b.check().unwrap_err();
        assert!((1..=10).contains(&retry), "{retry}");
        assert!(b.is_open());
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let b = CircuitBreaker::new(2, Duration::from_secs(10));
        b.record_failure();
        b.record_success();
        b.record_failure();
        assert!(b.check().is_ok(), "streak broke, still closed");
    }

    #[test]
    fn half_open_probe_failure_reopens_success_closes() {
        let b = CircuitBreaker::new(1, Duration::from_millis(20));
        b.record_failure();
        assert!(b.check().is_err(), "open");
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.check().is_ok(), "cooldown over: half-open probe allowed");
        b.record_failure();
        assert!(b.check().is_err(), "probe failed: re-opened");
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.check().is_ok());
        b.record_success();
        assert!(b.check().is_ok());
        assert!(!b.is_open());
    }

    #[test]
    fn zero_threshold_disables() {
        let b = CircuitBreaker::new(0, Duration::from_secs(10));
        for _ in 0..100 {
            b.record_failure();
        }
        assert!(b.check().is_ok());
    }
}
