//! # edge-serve — batched, hot-reloadable inference serving
//!
//! An HTTP/1.1 inference server for trained EDGE models, built directly
//! on `std::net` plus raw `epoll` syscalls ([`reactor`]; the workspace is
//! offline — see `shims/README.md` for the no-external-crates policy).
//! Endpoints:
//!
//! | endpoint | method | purpose |
//! |---|---|---|
//! | `/predict` | POST | single (`{"text": ...}`) or batch (`{"texts": [...]}`) prediction |
//! | `/healthz` | GET | liveness, current model generation, SLO budget (degrades when burning) |
//! | `/metrics` | GET | OpenMetrics exposition of the `edge-obs` registry, with p50/p95/p99 per histogram |
//! | `/reload` | POST | atomically swap in a new model artifact (`{"path": ...}`) |
//! | `/debug/requests` | GET | the last N per-request records (status, batch, per-stage micros) |
//!
//! Every response carries an `X-Request-Id` header (echoing the client's,
//! if sent), and the same id tags every span the request produced — on the
//! connection thread, the scheduler, and the `edge-par` workers — so one
//! request can be reconstructed end-to-end from the JSONL trace.
//!
//! ## Architecture
//!
//! Connections are multiplexed by a small pool of **event loops**
//! ([`reactor`], [`server`]): each loop thread owns one edge-triggered
//! `epoll` instance and a set of non-blocking connection state machines
//! supporting HTTP/1.1 keep-alive *and pipelining* (responses strictly in
//! request order). An idle keep-alive connection is one fd in an interest
//! list — 10k+ of them cost zero threads. Wakeups between threads use
//! `eventfd`: batch completions and `SIGTERM` both unpark a sleeping
//! loop in microseconds.
//!
//! A server can load **multiple model shards** (one per metro, say) behind
//! an entity **router** ([`router`]): each text's resolved entity set
//! picks a shard — by gazetteer affinity when one shard uniquely knows
//! the mentioned entities, by consistent hashing otherwise — and every
//! shard runs its own micro-batch queue, scheduler replicas, response
//! cache partition, SLO tracker, and brownout ladder. Per-shard state is
//! visible as `serve_shard_*` labeled metric families.
//!
//! Texts flow through a micro-batching scheduler ([`batch`]): the event
//! loop resolves entities, consults the shard's response cache
//! ([`cache`]), and enqueues the misses into its bounded queue, which
//! scheduler threads drain in batches of up to `max_batch`, dispatched
//! through the model's order-preserving `locate_batch`. Responses are
//! **bit-identical** to direct [`edge_core::Predictor`] calls: batching,
//! caching, routing, and the wire format never change a single float bit
//! (the JSON writer emits shortest-round-trip decimals).
//!
//! Overload is explicit: a `POST` whose texts do not all fit in the
//! queue is shed with `429` and counted in `serve.shed`. Hot reload is
//! atomic: the artifact is checksum-verified *before* the swap, in-flight
//! batches finish on the model they started with, and a corrupt artifact
//! leaves the old model serving. SIGTERM (CLI mode) drains gracefully.
//!
//! ## Robustness
//!
//! Every request carries a deadline budget ([`deadline`]): the client's
//! `X-Deadline-Us` header, or the server default. The budget bounds queue
//! admission, batch flush, inference, and the final wait; an expired
//! request answers a typed `504 deadline_exceeded`, and queued jobs past
//! budget are evicted rather than flushed. Socket read budgets bound
//! slow-loris senders (the request must finish arriving within the budget
//! once its first byte lands) and write timeouts bound stalled readers.
//! Oversized bodies are refused with `413` before a byte of the body is
//! read.
//!
//! Under sustained overload a load controller ([`brownout`]) walks a
//! degradation ladder — `Full → CacheOnly → PriorOnly → Shed` — with
//! hysteresis, trading answer quality for survival, and walks back up
//! when the pressure clears. `/reload` sits behind a circuit breaker
//! ([`breaker`]) so a corrupt-artifact storm cannot churn the serving
//! path. The [`client`] retries idempotent requests with capped,
//! decorrelated-jitter backoff, honoring `Retry-After`.

pub mod batch;
pub mod breaker;
pub mod brownout;
pub mod cache;
pub mod client;
pub mod config;
pub mod deadline;
pub mod http;
pub mod json;
mod metrics;
pub mod reactor;
pub mod router;
pub mod server;
pub mod slot;

pub use brownout::Mode;
pub use cache::{CacheKey, ResponseCache};
pub use client::{Client, RetryPolicy};
pub use config::ServeConfig;
pub use deadline::Deadline;
pub use router::{HashRing, Router};
pub use server::Server;
pub use slot::ModelSlot;
