//! The micro-batching scheduler: connection threads enqueue resolved
//! texts into a bounded queue; one scheduler thread drains it in batches
//! of up to `max_batch`, holding an under-full batch open for at most
//! `max_delay_us` before flushing. Each popped batch fans out across the
//! `edge-par` worker pool, one order-preserving model call per job, so
//! responses are bit-identical to direct calls regardless of how texts
//! were grouped — and each job carries its request's span context, so
//! queue-wait, batch-assembly, and inference show up as stages of the
//! originating request in both the trace and `/debug/requests`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use edge_core::{PredictOptions, PredictRequest, Predictor};
use edge_obs::trace;

use crate::cache::{CacheKey, ResponseCache};
use crate::deadline::Deadline;
use crate::json::{render_deadline_error, render_error, render_response};
use crate::slot::ModelSlot;

/// One text admitted to the queue.
pub struct Job {
    /// Entity ids resolved against `generation`'s model at admission.
    pub entities: Vec<usize>,
    /// Generation the entities were resolved under.
    pub generation: u64,
    /// The original text, kept so the scheduler can re-resolve after a
    /// hot reload swapped the model underneath this job.
    pub text: String,
    /// Zero-entity policy for this job.
    pub fallback: bool,
    /// Where the rendered fragment lands.
    pub pending: Arc<Pending>,
    /// Index into the pending response.
    pub index: usize,
    /// Span context of the originating request: the scheduler and the
    /// `edge-par` workers adopt it, so queue/batch/inference spans parent
    /// to the request's root span even across threads.
    pub ctx: trace::SpanContext,
    /// Admission time — the queue-wait stage starts here.
    pub submitted: Instant,
    /// Per-request stage accumulators, read by the handler after its
    /// [`Pending`] resolves.
    pub stages: Arc<StageCells>,
    /// The originating request's deadline budget. Expired jobs are
    /// evicted from the queue (and skipped at dispatch) with a typed
    /// `deadline_exceeded` fragment instead of burning model time.
    pub deadline: Deadline,
}

/// Stage wall-micros for one request, written scheduler/worker-side and
/// read by the connection handler once all fragments arrived. A request's
/// texts can land in different batches; `fetch_max` keeps the slowest
/// path, which is what a per-request latency decomposition means.
#[derive(Default)]
pub struct StageCells {
    queue: AtomicU64,
    batch: AtomicU64,
    inference: AtomicU64,
}

impl StageCells {
    fn note(cell: &AtomicU64, us: u64) {
        cell.fetch_max(us, Ordering::Relaxed);
    }

    /// `(queue, batch, inference)` micros recorded so far.
    pub fn load(&self) -> (u64, u64, u64) {
        (
            self.queue.load(Ordering::Relaxed),
            self.batch.load(Ordering::Relaxed),
            self.inference.load(Ordering::Relaxed),
        )
    }
}

/// A connection thread's rendezvous for one `POST /predict`: the
/// scheduler fills slots as batches complete; the handler blocks on
/// [`Pending::wait`] until all of its texts are answered.
pub struct Pending {
    state: Mutex<PendingState>,
    done: Condvar,
    /// Ran once when the last fragment lands — how the event loop learns
    /// (via its waker) that an async request is ready to serialize,
    /// without any thread blocking in [`Pending::wait`].
    notifier: Option<Box<dyn Fn() + Send + Sync>>,
}

/// Fragment slots plus the count still outstanding.
type PendingState = (Vec<Option<Arc<Vec<u8>>>>, usize);

impl Pending {
    /// A pending response expecting `n` fragments.
    pub fn new(n: usize) -> Self {
        Self { state: Mutex::new((vec![None; n], n)), done: Condvar::new(), notifier: None }
    }

    /// [`Pending::new`] plus a completion callback, invoked exactly once
    /// from whichever thread delivers the final fragment.
    pub fn with_notifier(n: usize, notifier: impl Fn() + Send + Sync + 'static) -> Self {
        Self {
            state: Mutex::new((vec![None; n], n)),
            done: Condvar::new(),
            notifier: Some(Box::new(notifier)),
        }
    }

    /// Delivers fragment `i`. First delivery wins: a duplicate (a late
    /// batch result racing a deadline eviction, say) neither overwrites
    /// the fragment nor re-notifies.
    pub fn fulfill(&self, i: usize, bytes: Arc<Vec<u8>>) {
        let completed = {
            let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
            let newly_filled = state.0[i].is_none();
            if newly_filled {
                state.0[i] = Some(bytes);
                state.1 -= 1;
            }
            // Only the fulfill that *drops the count to zero* completes;
            // a duplicate arriving after completion must not re-notify.
            newly_filled && state.1 == 0
        };
        // Wake outside the lock; `wait` re-checks the count under it, so
        // the early drop costs nothing and the notifier can take locks of
        // its own without ordering against ours.
        if completed {
            self.done.notify_all();
            if let Some(notifier) = &self.notifier {
                notifier();
            }
        }
    }

    /// The fragments if all arrived, without blocking — the event loop's
    /// check when a completion wake (or a timeout tick) comes in.
    pub fn try_results(&self) -> Option<Vec<Arc<Vec<u8>>>> {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.1 > 0 {
            return None;
        }
        Some(state.0.iter().map(|slot| Arc::clone(slot.as_ref().expect("filled"))).collect())
    }

    /// Blocks until every fragment arrived; `None` on timeout (scheduler
    /// wedged — the handler turns this into a 500).
    pub fn wait(&self, timeout: Duration) -> Option<Vec<Arc<Vec<u8>>>> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while state.1 > 0 {
            let remaining = deadline.checked_duration_since(Instant::now())?;
            let (s, timed_out) =
                self.done.wait_timeout(state, remaining).unwrap_or_else(|e| e.into_inner());
            state = s;
            if timed_out.timed_out() && state.1 > 0 {
                return None;
            }
        }
        Some(state.0.iter().map(|slot| Arc::clone(slot.as_ref().expect("filled"))).collect())
    }
}

/// The bounded admission queue. `try_submit` is all-or-nothing: either
/// every text of a POST fits, or none are queued and the request is shed
/// with 429 — a partial admission would block the handler forever on the
/// texts that were dropped.
pub struct BatchQueue {
    inner: Mutex<VecDeque<Job>>,
    capacity: usize,
    arrived: Condvar,
}

impl BatchQueue {
    pub fn new(capacity: usize) -> Self {
        Self { inner: Mutex::new(VecDeque::new()), capacity, arrived: Condvar::new() }
    }

    /// Admits all jobs or none. Returns whether they were queued.
    pub fn try_submit(&self, jobs: Vec<Job>) -> bool {
        let mut q = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if q.len() + jobs.len() > self.capacity {
            return false;
        }
        q.extend(jobs);
        edge_obs::gauge!("serve.queue.depth").set(q.len() as f64);
        self.arrived.notify_one();
        true
    }

    /// Queue length right now.
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Wakes every scheduler parked in `pop_batch` so a shutdown is
    /// observed immediately instead of at the next 20ms idle poll.
    pub fn notify_waiters(&self) {
        let _q = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        self.arrived.notify_all();
    }

    /// Evicts every queued job whose deadline has passed, fulfilling it
    /// with the typed `deadline_exceeded` fragment so its handler answers
    /// 504 immediately instead of waiting for a batch that would be
    /// wasted work. The `serve.queue.expire` failpoint (err action)
    /// force-expires everything queued — the deterministic handle the
    /// fault suite uses to cover this path. Returns the eviction count.
    pub fn evict_expired(&self) -> usize {
        let force = edge_faults::enabled() && edge_faults::fired("serve.queue.expire");
        let evicted: Vec<Job> = {
            let mut q = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            if q.is_empty() {
                return 0;
            }
            let mut kept = VecDeque::with_capacity(q.len());
            let mut evicted = Vec::new();
            for job in q.drain(..) {
                if force || job.deadline.expired() {
                    evicted.push(job);
                } else {
                    kept.push_back(job);
                }
            }
            *q = kept;
            if !evicted.is_empty() {
                edge_obs::gauge!("serve.queue.depth").set(q.len() as f64);
            }
            evicted
            // Lock dropped before fulfill wakes the waiting handlers.
        };
        let n = evicted.len();
        if n > 0 {
            edge_obs::counter!("serve.queue.evicted").inc(n as u64);
            let fragment = Arc::new(render_deadline_error());
            for job in evicted {
                job.pending.fulfill(job.index, Arc::clone(&fragment));
            }
        }
        n
    }

    /// Waits briefly for a first job, then keeps the batch open until it
    /// holds `max_batch` jobs or `max_delay` elapsed since the first
    /// arrival. Returns an empty batch when nothing arrived within the
    /// idle window (so the caller's loop can observe failpoints and
    /// shutdown between waits), and `None` only when shutting down with
    /// an empty queue.
    fn pop_batch(
        &self,
        max_batch: usize,
        max_delay: Duration,
        shutdown: &dyn Fn() -> bool,
    ) -> Option<Vec<Job>> {
        let mut q = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if q.is_empty() {
            if shutdown() {
                return None;
            }
            let (guard, _) = self
                .arrived
                .wait_timeout(q, Duration::from_millis(20))
                .unwrap_or_else(|e| e.into_inner());
            q = guard;
            if q.is_empty() {
                return if shutdown() { None } else { Some(Vec::new()) };
            }
        }
        let deadline = Instant::now() + max_delay;
        while q.len() < max_batch && !shutdown() {
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else { break };
            let (guard, timed_out) =
                self.arrived.wait_timeout(q, remaining).unwrap_or_else(|e| e.into_inner());
            q = guard;
            if timed_out.timed_out() {
                break;
            }
        }
        let take = q.len().min(max_batch);
        let batch: Vec<Job> = q.drain(..take).collect();
        edge_obs::gauge!("serve.queue.depth").set(q.len() as f64);
        Some(batch)
    }
}

/// The scheduler loop: runs on its own thread until `shutdown()` holds
/// *and* the queue is drained, so accepted requests are answered even
/// during a graceful shutdown.
pub fn run_scheduler(
    queue: &BatchQueue,
    slot: &ModelSlot,
    cache: &ResponseCache,
    max_batch: usize,
    max_delay: Duration,
    shutdown: impl Fn() -> bool,
    tick: impl Fn(),
) {
    loop {
        // Test hook: hold the scheduler while a failpoint has hits left —
        // before popping, so the queue-overflow suite can fill the queue
        // deterministically and watch submissions shed. Expired jobs are
        // still evicted (and the brownout controller still ticks) while
        // held: a wedged dispatch path must not pin doomed requests.
        while edge_faults::enabled() && edge_faults::fired("serve.dispatch.hold") {
            queue.evict_expired();
            tick();
            std::thread::sleep(Duration::from_millis(1));
        }
        queue.evict_expired();
        tick();
        let Some(batch) = queue.pop_batch(max_batch, max_delay, &shutdown) else { return };
        if batch.is_empty() {
            continue;
        }
        dispatch(&batch, slot, cache);
    }
}

/// Runs one batch through the current model and fulfills its jobs.
fn dispatch(batch: &[Job], slot: &ModelSlot, cache: &ResponseCache) {
    let _span = edge_obs::span("serve.dispatch");
    edge_obs::histogram!("serve.batch.size").record(batch.len() as f64);
    let popped = Instant::now();
    let (model, generation) = slot.get();

    // Jobs resolved under an older generation re-resolve against the model
    // that will actually answer them (entity ids are not stable across
    // models); their admission-time cache key is stale either way.
    let resolved: Vec<Vec<usize>> = batch
        .iter()
        .map(|job| {
            if job.generation == generation {
                job.entities.clone()
            } else {
                model.resolve_entities(&job.text)
            }
        })
        .collect();

    // Queue-wait (submit → pop) and batch assembly (pop → fan-out) are
    // recorded per job against the *request's* span context, so the trace
    // shows them under the request root even though they happen on the
    // scheduler thread.
    let assembled = Instant::now();
    for job in batch {
        trace::record_manual("serve.stage.queue", job.ctx, job.submitted, popped);
        trace::record_manual("serve.stage.batch", job.ctx, popped, assembled);
        StageCells::note(&job.stages.queue, (popped - job.submitted).as_micros() as u64);
        StageCells::note(&job.stages.batch, (assembled - popped).as_micros() as u64);
    }

    // Fan out across the worker pool, one model call per job. Each worker
    // adopts the job's context, so its inference span (and the model's
    // `predict_*` spans under it) stitch into the right request. `locate`
    // delegates to the same order-preserving single-item `locate_batch`
    // path as before, so responses stay bit-identical to unbatched calls.
    edge_par::parallel_for(batch.len(), |i| {
        let job = &batch[i];
        let _adopt = trace::adopt(job.ctx);
        // Injected worker stall (`sleep(ms)` action) — the wedged-worker
        // simulation the chaos harness drives. Placed before the expiry
        // check so a stalled worker plus a tight budget yields a typed
        // 504, never a silently late answer.
        if edge_faults::enabled() {
            let _ = edge_faults::eval("serve.worker.stall");
        }
        if job.deadline.expired() {
            edge_obs::counter!("serve.deadline.expired").inc(1);
            job.pending.fulfill(job.index, Arc::new(render_deadline_error()));
            return;
        }
        let inference_started = Instant::now();
        let _inf = edge_obs::span("serve.stage.inference");
        let opts = PredictOptions::default().with_fallback_prior(job.fallback);
        let result = model.locate(&PredictRequest::entities(resolved[i].clone()), &opts);
        let bytes = Arc::new(match &result {
            Ok(resp) => render_response(resp),
            Err(err) => render_error(err),
        });
        if result.is_ok() {
            let key =
                CacheKey { generation, entities: resolved[i].clone(), fallback: job.fallback };
            cache.insert(key, Arc::clone(&bytes));
        }
        // Note the stage before fulfilling: fulfill wakes the handler,
        // which reads the cells immediately.
        StageCells::note(&job.stages.inference, inference_started.elapsed().as_micros() as u64);
        job.pending.fulfill(job.index, bytes);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pending_collects_out_of_order_fragments() {
        let p = Pending::new(3);
        p.fulfill(2, Arc::new(b"c".to_vec()));
        p.fulfill(0, Arc::new(b"a".to_vec()));
        p.fulfill(1, Arc::new(b"b".to_vec()));
        let got = p.wait(Duration::from_secs(1)).unwrap();
        let joined: Vec<u8> = got.iter().flat_map(|b| b.iter().copied()).collect();
        assert_eq!(joined, b"abc");
    }

    #[test]
    fn pending_wait_times_out_when_unfulfilled() {
        let p = Pending::new(1);
        assert!(p.wait(Duration::from_millis(10)).is_none());
    }

    #[test]
    fn pending_notifier_fires_once_on_the_last_fragment() {
        let fired = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&fired);
        let p = Pending::with_notifier(2, move || {
            seen.fetch_add(1, Ordering::SeqCst);
        });
        assert!(p.try_results().is_none());
        p.fulfill(1, Arc::new(b"b".to_vec()));
        assert_eq!(fired.load(Ordering::SeqCst), 0, "not complete yet");
        assert!(p.try_results().is_none());
        p.fulfill(0, Arc::new(b"a".to_vec()));
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        // Duplicate fulfills never re-notify.
        p.fulfill(0, Arc::new(b"x".to_vec()));
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        let got = p.try_results().unwrap();
        assert_eq!(&*got[0], b"a");
        assert_eq!(&*got[1], b"b");
    }

    fn job(pending: &Arc<Pending>, index: usize) -> Job {
        job_with_deadline(pending, index, Deadline::none())
    }

    fn job_with_deadline(pending: &Arc<Pending>, index: usize, deadline: Deadline) -> Job {
        Job {
            entities: vec![],
            generation: 1,
            text: String::new(),
            fallback: false,
            pending: Arc::clone(pending),
            index,
            ctx: trace::SpanContext::default(),
            submitted: Instant::now(),
            stages: Arc::new(StageCells::default()),
            deadline,
        }
    }

    #[test]
    fn submission_is_all_or_nothing() {
        let q = BatchQueue::new(3);
        let p = Arc::new(Pending::new(4));
        assert!(q.try_submit(vec![job(&p, 0), job(&p, 1)]));
        // Two queued + two more would exceed capacity 3: nothing admitted.
        assert!(!q.try_submit(vec![job(&p, 2), job(&p, 3)]));
        assert_eq!(q.depth(), 2);
        assert!(q.try_submit(vec![job(&p, 2)]));
        assert_eq!(q.depth(), 3);
    }

    #[test]
    fn pop_batch_flushes_on_deadline_and_on_size() {
        let q = BatchQueue::new(16);
        let shutdown = || false;
        let p = Arc::new(Pending::new(8));
        q.try_submit((0..2).map(|i| job(&p, i)).collect());
        let started = Instant::now();
        let batch = q.pop_batch(8, Duration::from_millis(5), &shutdown).unwrap();
        assert_eq!(batch.len(), 2, "under-full batch flushes at the deadline");
        assert!(started.elapsed() >= Duration::from_millis(4));
        q.try_submit((0..8).map(|i| job(&p, i)).collect());
        let batch = q.pop_batch(4, Duration::from_secs(5), &shutdown).unwrap();
        assert_eq!(batch.len(), 4, "full batch flushes immediately");
        assert_eq!(q.depth(), 4);
    }

    #[test]
    fn expired_jobs_are_evicted_with_a_typed_fragment() {
        let q = BatchQueue::new(16);
        let p = Arc::new(Pending::new(2));
        q.try_submit(vec![
            job_with_deadline(&p, 0, Deadline::after_us(1)),
            job_with_deadline(&p, 1, Deadline::none()),
        ]);
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(q.evict_expired(), 1, "only the expired job goes");
        assert_eq!(q.depth(), 1, "the unbounded job stays queued");
        // The evicted slot resolved to the deadline fragment; fulfill the
        // survivor so wait() returns.
        p.fulfill(1, Arc::new(b"ok".to_vec()));
        let got = p.wait(Duration::from_secs(1)).unwrap();
        assert!(
            std::str::from_utf8(&got[0]).unwrap().contains("deadline_exceeded"),
            "{:?}",
            std::str::from_utf8(&got[0])
        );
        assert_eq!(&*got[1], b"ok");
    }

    #[test]
    fn expire_failpoint_force_evicts_everything() {
        let _s = edge_faults::FailScenario::setup();
        edge_faults::configure("serve.queue.expire", "1*err").unwrap();
        let q = BatchQueue::new(16);
        let p = Arc::new(Pending::new(2));
        q.try_submit(vec![job(&p, 0), job(&p, 1)]);
        assert_eq!(q.evict_expired(), 2, "failpoint expires unbounded jobs too");
        assert_eq!(q.depth(), 0);
        let got = p.wait(Duration::from_secs(1)).unwrap();
        for frag in &got {
            assert!(std::str::from_utf8(frag).unwrap().contains("deadline_exceeded"));
        }
        // Failpoint exhausted: eviction is a no-op again.
        q.try_submit(vec![job(&Arc::new(Pending::new(1)), 0)]);
        assert_eq!(q.evict_expired(), 0);
    }

    #[test]
    fn shutdown_drains_the_queue_before_stopping() {
        let q = BatchQueue::new(16);
        let shutdown = || true;
        let p = Arc::new(Pending::new(1));
        q.try_submit(vec![job(&p, 0)]);
        // Shutdown already requested, but the queued job still comes out.
        let batch = q.pop_batch(8, Duration::from_millis(1), &shutdown).unwrap();
        assert_eq!(batch.len(), 1);
        assert!(q.pop_batch(8, Duration::from_millis(1), &shutdown).is_none());
    }
}
