//! A tiny blocking HTTP/1.1 client over one keep-alive connection — the
//! counterpart of [`crate::http`] for integration tests, the serving
//! bench, and anything else in-workspace that needs to talk to the
//! server without a network crate.
//!
//! [`Client::request_with_retry`] layers a [`RetryPolicy`] on top:
//! capped exponential backoff with decorrelated jitter, reconnecting on
//! transport errors, honoring `Retry-After`, and retrying **idempotent
//! requests only** (GETs, and `/predict` — which is read-only — but
//! never `/reload`).

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One HTTP response.
#[derive(Debug)]
pub struct Response {
    /// Status code (200, 429, ...).
    pub status: u16,
    /// Response headers in arrival order, names as sent.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// The body as UTF-8 (panics on binary bodies — fine for JSON APIs).
    pub fn text(&self) -> &str {
        std::str::from_utf8(&self.body).expect("utf-8 body")
    }

    /// Parses the body as a JSON value tree.
    pub fn json(&self) -> serde_json::Value {
        serde_json::from_str(self.text()).expect("json body")
    }

    /// First header with this name (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }

    /// The `Retry-After` header in whole seconds, when present and valid.
    pub fn retry_after(&self) -> Option<u64> {
        self.header("Retry-After").and_then(|v| v.trim().parse().ok())
    }
}

/// Backoff shape for [`Client::request_with_retry`]: capped exponential
/// with decorrelated jitter (each sleep is drawn from
/// `uniform(base, 3 * previous_sleep)` then clamped to `cap`), so a
/// thundering herd of clients decorrelates itself after one round.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts including the first (1 disables retries).
    pub max_attempts: u32,
    /// Lower bound of every backoff draw.
    pub base: Duration,
    /// Upper clamp on any single sleep.
    pub cap: Duration,
    /// Jitter seed; any nonzero value (zero is remapped internally).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            seed: 0x9e3779b97f4a7c15,
        }
    }
}

impl RetryPolicy {
    /// True when this response status is worth retrying: the server
    /// explicitly asked us to back off and try again.
    fn retryable_status(status: u16) -> bool {
        matches!(status, 429 | 503)
    }
}

fn xorshift64(state: &mut u64) -> u64 {
    let mut x = if *state == 0 { 0x9e3779b97f4a7c15 } else { *state };
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// One decorrelated-jitter backoff step: `min(cap, uniform(base,
/// 3 * prev))`. Pure, so the schedule is unit-testable.
pub fn decorrelated_backoff(
    prev: Duration,
    base: Duration,
    cap: Duration,
    rng: &mut u64,
) -> Duration {
    let lo = base.as_millis() as u64;
    let hi = (prev.as_millis() as u64).saturating_mul(3).max(lo + 1);
    let draw = lo + xorshift64(rng) % (hi - lo);
    Duration::from_millis(draw).min(cap)
}

/// A persistent connection to one server.
pub struct Client {
    addr: SocketAddr,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects (keep-alive; one connection reused for every call).
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client { addr, reader: BufReader::new(stream), writer })
    }

    /// Drops the current connection and dials the server again — the
    /// recovery step after a transport error mid-retry.
    pub fn reconnect(&mut self) -> std::io::Result<()> {
        let fresh = Client::connect(self.addr)?;
        self.reader = fresh.reader;
        self.writer = fresh.writer;
        Ok(())
    }

    /// Sends an **idempotent** request with retries under `policy`:
    /// transport errors reconnect and retry; `429`/`503` honor
    /// `Retry-After` when sent, else back off with decorrelated jitter.
    /// Returns the last response (or last transport error) once attempts
    /// are exhausted. Never use for non-idempotent calls like `/reload` —
    /// a retried reload that half-applied is worse than a failed one.
    pub fn request_with_retry(
        &mut self,
        method: &str,
        path: &str,
        extra_headers: &[(&str, &str)],
        body: &[u8],
        policy: &RetryPolicy,
    ) -> std::io::Result<Response> {
        let mut rng = policy.seed;
        let mut prev_sleep = policy.base;
        let attempts = policy.max_attempts.max(1);
        let mut last_err: Option<std::io::Error> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(prev_sleep);
            }
            let result = self.request_with_headers(method, path, extra_headers, body);
            match result {
                Ok(resp) if !RetryPolicy::retryable_status(resp.status) => return Ok(resp),
                Ok(resp) => {
                    if attempt + 1 == attempts {
                        return Ok(resp);
                    }
                    // The server's own hint wins over our jitter schedule.
                    prev_sleep = match resp.retry_after() {
                        Some(secs) => Duration::from_secs(secs).min(policy.cap),
                        None => decorrelated_backoff(prev_sleep, policy.base, policy.cap, &mut rng),
                    };
                }
                Err(e) => {
                    prev_sleep =
                        decorrelated_backoff(prev_sleep, policy.base, policy.cap, &mut rng);
                    last_err = Some(e);
                    // A torn connection poisons framing; always redial.
                    let _ = self.reconnect();
                }
            }
        }
        Err(last_err.unwrap_or_else(|| std::io::Error::other("retries exhausted")))
    }

    /// Sends one request and reads the response.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> std::io::Result<Response> {
        self.request_with_headers(method, path, &[], body)
    }

    /// [`Client::request`] with extra request headers.
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        extra_headers: &[(&str, &str)],
        body: &[u8],
    ) -> std::io::Result<Response> {
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nHost: edge-serve\r\nContent-Length: {}\r\n",
            body.len()
        )?;
        for (name, value) in extra_headers {
            write!(self.writer, "{name}: {value}\r\n")?;
        }
        self.writer.write_all(b"\r\n")?;
        self.writer.write_all(body)?;
        self.writer.flush()?;
        self.read_response()
    }

    /// `POST /predict` with a single text.
    pub fn predict(&mut self, text: &str) -> std::io::Result<Response> {
        let value = serde_json::Value::Object(vec![(
            "text".to_string(),
            serde_json::Value::Str(text.to_string()),
        )]);
        let body = serde_json::to_string(&value).unwrap();
        self.request("POST", "/predict", body.as_bytes())
    }

    /// `POST /predict` with a batch of texts.
    pub fn predict_batch(&mut self, texts: &[&str]) -> std::io::Result<Response> {
        let items: Vec<serde_json::Value> =
            texts.iter().map(|t| serde_json::Value::Str(t.to_string())).collect();
        let value =
            serde_json::Value::Object(vec![("texts".to_string(), serde_json::Value::Array(items))]);
        let body = serde_json::to_string(&value).unwrap();
        self.request("POST", "/predict", body.as_bytes())
    }

    fn read_response(&mut self) -> std::io::Result<Response> {
        use std::io::BufRead;
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before status line",
            ));
        }
        let status: u16 =
            status_line.split_whitespace().nth(1).and_then(|s| s.parse().ok()).ok_or_else(
                || std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"),
            )?;
        let mut content_length = 0usize;
        let mut headers = Vec::new();
        loop {
            let mut header = String::new();
            if self.reader.read_line(&mut header)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof in headers",
                ));
            }
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                let value = value.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.parse().map_err(|_| {
                        std::io::Error::new(std::io::ErrorKind::InvalidData, "bad content-length")
                    })?;
                }
                headers.push((name.to_string(), value.to_string()));
            }
        }
        let mut body = vec![0u8; content_length];
        std::io::Read::read_exact(&mut self.reader, &mut body)?;
        Ok(Response { status, headers, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_bounded_and_jittered() {
        let policy = RetryPolicy::default();
        let mut rng = policy.seed;
        let mut prev = policy.base;
        let mut sleeps = Vec::new();
        for _ in 0..32 {
            prev = decorrelated_backoff(prev, policy.base, policy.cap, &mut rng);
            assert!(prev >= policy.base, "never below base: {prev:?}");
            assert!(prev <= policy.cap, "never above cap: {prev:?}");
            sleeps.push(prev);
        }
        // Decorrelated jitter must actually vary, not walk a fixed ladder.
        let distinct: std::collections::HashSet<_> = sleeps.iter().collect();
        assert!(distinct.len() > 8, "jitter produced only {} values", distinct.len());
        // A zero seed is remapped, not a degenerate all-base schedule.
        let mut zero = 0u64;
        let step = decorrelated_backoff(policy.base, policy.base, policy.cap, &mut zero);
        assert!(step >= policy.base && step <= policy.cap);
        assert_ne!(zero, 0);
    }

    #[test]
    fn retry_after_header_parses() {
        let resp = Response {
            status: 503,
            headers: vec![("retry-after".to_string(), "2".to_string())],
            body: Vec::new(),
        };
        assert_eq!(resp.retry_after(), Some(2));
        let resp = Response {
            status: 503,
            headers: vec![("Retry-After".to_string(), "soon".to_string())],
            body: Vec::new(),
        };
        assert_eq!(resp.retry_after(), None);
        assert!(RetryPolicy::retryable_status(429));
        assert!(RetryPolicy::retryable_status(503));
        assert!(!RetryPolicy::retryable_status(500));
        assert!(!RetryPolicy::retryable_status(200));
    }
}
