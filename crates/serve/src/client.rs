//! A tiny blocking HTTP/1.1 client over one keep-alive connection — the
//! counterpart of [`crate::http`] for integration tests, the serving
//! bench, and anything else in-workspace that needs to talk to the
//! server without a network crate.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};

/// One HTTP response.
#[derive(Debug)]
pub struct Response {
    /// Status code (200, 429, ...).
    pub status: u16,
    /// Response headers in arrival order, names as sent.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// The body as UTF-8 (panics on binary bodies — fine for JSON APIs).
    pub fn text(&self) -> &str {
        std::str::from_utf8(&self.body).expect("utf-8 body")
    }

    /// Parses the body as a JSON value tree.
    pub fn json(&self) -> serde_json::Value {
        serde_json::from_str(self.text()).expect("json body")
    }

    /// First header with this name (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }
}

/// A persistent connection to one server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects (keep-alive; one connection reused for every call).
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Sends one request and reads the response.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> std::io::Result<Response> {
        self.request_with_headers(method, path, &[], body)
    }

    /// [`Client::request`] with extra request headers.
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        extra_headers: &[(&str, &str)],
        body: &[u8],
    ) -> std::io::Result<Response> {
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nHost: edge-serve\r\nContent-Length: {}\r\n",
            body.len()
        )?;
        for (name, value) in extra_headers {
            write!(self.writer, "{name}: {value}\r\n")?;
        }
        self.writer.write_all(b"\r\n")?;
        self.writer.write_all(body)?;
        self.writer.flush()?;
        self.read_response()
    }

    /// `POST /predict` with a single text.
    pub fn predict(&mut self, text: &str) -> std::io::Result<Response> {
        let value = serde_json::Value::Object(vec![(
            "text".to_string(),
            serde_json::Value::Str(text.to_string()),
        )]);
        let body = serde_json::to_string(&value).unwrap();
        self.request("POST", "/predict", body.as_bytes())
    }

    /// `POST /predict` with a batch of texts.
    pub fn predict_batch(&mut self, texts: &[&str]) -> std::io::Result<Response> {
        let items: Vec<serde_json::Value> =
            texts.iter().map(|t| serde_json::Value::Str(t.to_string())).collect();
        let value =
            serde_json::Value::Object(vec![("texts".to_string(), serde_json::Value::Array(items))]);
        let body = serde_json::to_string(&value).unwrap();
        self.request("POST", "/predict", body.as_bytes())
    }

    fn read_response(&mut self) -> std::io::Result<Response> {
        use std::io::BufRead;
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before status line",
            ));
        }
        let status: u16 =
            status_line.split_whitespace().nth(1).and_then(|s| s.parse().ok()).ok_or_else(
                || std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"),
            )?;
        let mut content_length = 0usize;
        let mut headers = Vec::new();
        loop {
            let mut header = String::new();
            if self.reader.read_line(&mut header)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof in headers",
                ));
            }
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                let value = value.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.parse().map_err(|_| {
                        std::io::Error::new(std::io::ErrorKind::InvalidData, "bad content-length")
                    })?;
                }
                headers.push((name.to_string(), value.to_string()));
            }
        }
        let mut body = vec![0u8; content_length];
        std::io::Read::read_exact(&mut self.reader, &mut body)?;
        Ok(Response { status, headers, body })
    }
}
