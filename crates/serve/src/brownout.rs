//! Brownout degradation: a load controller that steps the server through
//! an explicit quality ladder instead of falling off a cliff.
//!
//! ```text
//! Full → CacheOnly → PriorOnly → Shed
//! ```
//!
//! * **Full** — normal operation.
//! * **CacheOnly** — only response-cache hits (and inline abstentions) are
//!   served; a miss is rejected with `503 + Retry-After` before touching
//!   the model.
//! * **PriorOnly** — diffusion/attention inference is skipped; misses are
//!   answered from the fallback prior Gaussian, marked `"degraded":true`.
//! * **Shed** — every predict is rejected with `503 + Retry-After`.
//!
//! The controller owns its *own* short-window [`SloTracker`] fed by real
//! predict completions and 429 queue sheds — deliberately separate from
//! the `/healthz` alerting tracker, so tightening the alerting SLO (e.g.
//! `--slo-p99-us 1` in the obs smoke gate) observes degradation without
//! self-inflicting a brownout. Brownout rejections (503) are *not* fed
//! back into the controller's tracker: a mode must never sustain itself
//! on the load it sheds, or it would latch.
//!
//! Hysteresis: escalate one step after `escalate_ticks` consecutive
//! unhealthy ticks, recover one step after `recover_ticks` consecutive
//! healthy ones; counters reset on every transition, so flapping input
//! walks the ladder slowly instead of oscillating per tick.
//!
//! The failpoint `serve.mode.force` (err action) makes a tick report
//! unhealthy regardless of the tracker — the deterministic handle the
//! fault suite and the chaos harness use to walk the ladder.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use edge_obs::{SloConfig, SloStatus, SloTracker};

/// The degradation ladder, best to worst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Mode {
    /// Normal operation.
    Full = 0,
    /// Cache hits only; misses get `503 + Retry-After`.
    CacheOnly = 1,
    /// Misses answered from the fallback prior, marked `degraded`.
    PriorOnly = 2,
    /// Every predict rejected with `503 + Retry-After`.
    Shed = 3,
}

impl Mode {
    /// Stable lower-snake name (metrics labels, healthz, logs).
    pub fn name(self) -> &'static str {
        match self {
            Mode::Full => "full",
            Mode::CacheOnly => "cache_only",
            Mode::PriorOnly => "prior_only",
            Mode::Shed => "shed",
        }
    }

    fn from_u8(v: u8) -> Mode {
        match v {
            1 => Mode::CacheOnly,
            2 => Mode::PriorOnly,
            3 => Mode::Shed,
            _ => Mode::Full,
        }
    }

    fn escalate(self) -> Mode {
        Mode::from_u8((self as u8 + 1).min(Mode::Shed as u8))
    }

    fn recover(self) -> Mode {
        Mode::from_u8((self as u8).saturating_sub(1))
    }
}

/// Controller tuning. Defaults live in [`crate::ServeConfig`].
#[derive(Debug, Clone)]
pub struct BrownoutConfig {
    /// Master switch; disabled pins the mode at [`Mode::Full`].
    pub enabled: bool,
    /// Latency target driving escalation, microseconds.
    pub target_p99_us: u64,
    /// Queue-shed (429) fraction driving escalation.
    pub max_shed_rate: f64,
    /// Rolling window of the controller's tracker, seconds. Short on
    /// purpose: the controller must notice recovery fast.
    pub window_secs: u64,
    /// Consecutive unhealthy ticks before stepping down the ladder.
    pub escalate_ticks: u32,
    /// Consecutive healthy ticks before stepping back up.
    pub recover_ticks: u32,
    /// Minimum spacing between ticks; zero ticks on every call (tests).
    pub tick_interval: Duration,
}

struct TickState {
    last: Option<Instant>,
    bad: u32,
    good: u32,
}

/// One transition observed by [`LoadController::maybe_tick`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    pub from: Mode,
    pub to: Mode,
}

/// The load controller: a mode atomic readable from any thread, advanced
/// by rate-limited ticks from the request handlers and the scheduler.
pub struct LoadController {
    config: BrownoutConfig,
    tracker: SloTracker,
    mode: AtomicU8,
    tick: Mutex<TickState>,
}

impl LoadController {
    pub fn new(config: BrownoutConfig) -> Self {
        let tracker = SloTracker::new(SloConfig {
            target_p99_us: config.target_p99_us,
            max_shed_rate: config.max_shed_rate,
            window_secs: config.window_secs,
        });
        LoadController {
            config,
            tracker,
            mode: AtomicU8::new(Mode::Full as u8),
            tick: Mutex::new(TickState { last: None, bad: 0, good: 0 }),
        }
    }

    /// The mode right now (one relaxed load).
    pub fn mode(&self) -> Mode {
        Mode::from_u8(self.mode.load(Ordering::Relaxed))
    }

    /// Feeds one completed predict into the controller's window. Never
    /// call this for brownout rejections — see the module docs.
    pub fn record(&self, latency_us: u64) {
        if self.config.enabled {
            self.tracker.record(latency_us);
        }
    }

    /// Feeds one 429 queue shed into the controller's window.
    pub fn record_shed(&self) {
        if self.config.enabled {
            self.tracker.record_shed();
        }
    }

    /// The controller's own rollup (for healthz/debug, not alerting).
    pub fn status(&self) -> SloStatus {
        self.tracker.status()
    }

    /// Advances the hysteresis state machine if a tick is due. Returns
    /// the transition when the mode changed. Cheap when rate-limited out;
    /// concurrent callers skip instead of queueing on the lock.
    pub fn maybe_tick(&self) -> Option<Transition> {
        if !self.config.enabled {
            return None;
        }
        let mut t = self.tick.try_lock().ok()?;
        if let Some(last) = t.last {
            if !self.config.tick_interval.is_zero() && last.elapsed() < self.config.tick_interval {
                return None;
            }
        }
        t.last = Some(Instant::now());
        // Deterministic handle for the fault suite: while the failpoint
        // has err hits left, every tick reads as unhealthy.
        let forced = edge_faults::enabled() && edge_faults::fired("serve.mode.force");
        let unhealthy = forced || self.tracker.status().degraded;
        if unhealthy {
            t.bad += 1;
            t.good = 0;
        } else {
            t.good += 1;
            t.bad = 0;
        }
        let from = self.mode();
        let to = if unhealthy && t.bad >= self.config.escalate_ticks {
            from.escalate()
        } else if !unhealthy && t.good >= self.config.recover_ticks {
            from.recover()
        } else {
            from
        };
        if to == from {
            return None;
        }
        t.bad = 0;
        t.good = 0;
        self.mode.store(to as u8, Ordering::Release);
        Some(Transition { from, to })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(escalate: u32, recover: u32) -> LoadController {
        LoadController::new(BrownoutConfig {
            enabled: true,
            target_p99_us: 1_000,
            max_shed_rate: 0.05,
            window_secs: 1,
            escalate_ticks: escalate,
            recover_ticks: recover,
            tick_interval: Duration::ZERO,
        })
    }

    #[test]
    fn ladder_order_and_names() {
        assert!(Mode::Full < Mode::CacheOnly && Mode::CacheOnly < Mode::Shed);
        assert_eq!(Mode::Full.escalate(), Mode::CacheOnly);
        assert_eq!(Mode::Shed.escalate(), Mode::Shed, "shed is the floor");
        assert_eq!(Mode::Full.recover(), Mode::Full, "full is the ceiling");
        assert_eq!(Mode::Shed.recover(), Mode::PriorOnly);
        assert_eq!(Mode::PriorOnly.name(), "prior_only");
    }

    #[test]
    fn healthy_traffic_stays_full() {
        let c = controller(1, 1);
        for _ in 0..50 {
            c.record(10);
        }
        assert!(c.maybe_tick().is_none());
        assert_eq!(c.mode(), Mode::Full);
    }

    #[test]
    fn sustained_violations_escalate_with_hysteresis() {
        let c = controller(2, 2);
        for _ in 0..20 {
            c.record(1_000_000); // way over the 1ms target
        }
        assert!(c.maybe_tick().is_none(), "one bad tick is not enough");
        let t = c.maybe_tick().expect("second consecutive bad tick escalates");
        assert_eq!((t.from, t.to), (Mode::Full, Mode::CacheOnly));
        assert_eq!(c.mode(), Mode::CacheOnly);
        // Counters reset on transition: two more bad ticks for the next step.
        assert!(c.maybe_tick().is_none());
        assert_eq!(c.maybe_tick().unwrap().to, Mode::PriorOnly);
    }

    #[test]
    fn recovery_steps_back_one_mode_at_a_time() {
        let c = controller(1, 2);
        for _ in 0..10 {
            c.record(1_000_000);
        }
        assert_eq!(c.maybe_tick().unwrap().to, Mode::CacheOnly);
        assert_eq!(c.maybe_tick().unwrap().to, Mode::PriorOnly);
        // Wait out the 1s window so the violations age away.
        std::thread::sleep(Duration::from_millis(2_100));
        assert!(c.maybe_tick().is_none(), "one healthy tick is not enough");
        let t = c.maybe_tick().expect("second consecutive healthy tick recovers");
        assert_eq!((t.from, t.to), (Mode::PriorOnly, Mode::CacheOnly));
        assert!(c.maybe_tick().is_none());
        assert_eq!(c.maybe_tick().unwrap().to, Mode::Full);
        assert!(c.maybe_tick().is_none(), "full does not over-recover");
    }

    #[test]
    fn disabled_controller_is_inert() {
        let c = LoadController::new(BrownoutConfig {
            enabled: false,
            target_p99_us: 1,
            max_shed_rate: 0.0,
            window_secs: 1,
            escalate_ticks: 1,
            recover_ticks: 1,
            tick_interval: Duration::ZERO,
        });
        c.record(1_000_000);
        c.record_shed();
        assert!(c.maybe_tick().is_none());
        assert_eq!(c.mode(), Mode::Full);
    }

    #[test]
    fn tick_interval_rate_limits() {
        let c = LoadController::new(BrownoutConfig {
            enabled: true,
            target_p99_us: 1,
            max_shed_rate: 0.0,
            window_secs: 1,
            escalate_ticks: 1,
            recover_ticks: 1,
            tick_interval: Duration::from_secs(3600),
        });
        for _ in 0..10 {
            c.record(1_000_000);
        }
        assert!(c.maybe_tick().is_some(), "first tick evaluates immediately");
        assert!(c.maybe_tick().is_none(), "second call inside the interval is skipped");
        assert_eq!(c.mode(), Mode::CacheOnly, "the interval froze the ladder after one step");
    }

    #[test]
    fn forced_failpoint_escalates_deterministically() {
        let _s = edge_faults::FailScenario::setup();
        edge_faults::configure("serve.mode.force", "2*err").unwrap();
        let c = controller(1, 1);
        // No traffic at all: only the failpoint drives the ladder.
        assert_eq!(c.maybe_tick().unwrap().to, Mode::CacheOnly);
        assert_eq!(c.maybe_tick().unwrap().to, Mode::PriorOnly);
        // Failpoint exhausted: empty window is healthy, recovery begins.
        assert_eq!(c.maybe_tick().unwrap().to, Mode::CacheOnly);
    }
}
