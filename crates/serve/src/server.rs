//! The HTTP server: a small pool of `epoll` event loops multiplexing
//! every connection, a per-metro-shard serving stack behind the entity
//! router, and graceful drain.
//!
//! Threading model: `event_loops` threads each own one `epoll` instance
//! and a set of non-blocking connections (loop 0 also owns the
//! listener; accepted sockets are handed off round-robin). A request is
//! parsed, routed, and admitted on its loop thread; batched inference
//! happens on the per-shard scheduler threads; completion wakes the loop
//! through an `eventfd`, which serializes and flushes the response. An
//! idle keep-alive connection is one fd in an interest list — 10k+ of
//! them cost zero threads and zero per-tick work.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicI32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use edge_core::{ArtifactLoad, EdgeModel, Predictor};
use edge_obs::ring::{
    RequestRecord, N_STAGES, STAGE_BATCH, STAGE_INFERENCE, STAGE_PARSE, STAGE_QUEUE,
    STAGE_SERIALIZE,
};
use edge_obs::trace::DetachedSpan;
use edge_obs::{RequestRing, SloConfig, SloStatus, SloTracker};

use crate::batch::{run_scheduler, BatchQueue, Job, Pending, StageCells};
use crate::breaker::CircuitBreaker;
use crate::brownout::{BrownoutConfig, LoadController, Mode};
use crate::cache::{CacheKey, ResponseCache};
use crate::config::ServeConfig;
use crate::deadline::Deadline;
use crate::http::{parse_buffered, write_response_with, ParseStatus, ReadLimits, Request};
use crate::json::{
    parse_predict_body, render_deadline_error, render_error, render_response_degraded,
    simple_object,
};
use crate::metrics::{
    batch_path_counter, mode_rejection_counter, mode_transition_counter, request_counter,
    shard_cells, stage_hists, ShardCells,
};
use crate::reactor::{
    self, event_buffer, interest_rw, Poller, Waker, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT,
    EPOLLRDHUP,
};
use crate::router::Router;
use crate::slot::ModelSlot;

/// How long an admitted predict may wait on the scheduler before the
/// loop gives up with 500.
const PREDICT_TIMEOUT: Duration = Duration::from_secs(60);
/// How long shutdown waits for in-flight work before force-exiting.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(5);
/// Headroom over `max_body_bytes` for the request line and headers
/// before an unparseable read buffer is cut off with 400.
const HEADER_SLACK: usize = 16 * 1024;
/// Epoll tick when any timed state (read budgets, write stalls,
/// in-flight predicts) needs enforcing.
const TICK_MS: i32 = 25;
/// Epoll tick when fully idle — bounds how late a drain is observed.
const IDLE_MS: i32 = 200;

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;

/// Process-wide flag set by SIGTERM/SIGINT when `handle_signals` is on.
static SIGNALLED: AtomicBool = AtomicBool::new(false);
/// The eventfd a signal handler writes so [`Server::wait`] unparks in
/// microseconds instead of at a poll tick. Created once, never closed
/// (the handler may race a close).
static SIGNAL_FD: AtomicI32 = AtomicI32::new(-1);

extern "C" fn on_signal(_sig: i32) {
    SIGNALLED.store(true, Ordering::Release);
    let fd = SIGNAL_FD.load(Ordering::Acquire);
    if fd >= 0 {
        // One write syscall: async-signal-safe.
        reactor::eventfd_write(fd);
    }
}

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: *const ()) -> *const ();
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    if SIGNAL_FD.load(Ordering::Acquire) < 0 {
        if let Ok(fd) = reactor::raw_eventfd() {
            SIGNAL_FD.store(fd, Ordering::Release);
        }
    }
    unsafe {
        signal(SIGTERM, on_signal as extern "C" fn(i32) as *const ());
        signal(SIGINT, on_signal as extern "C" fn(i32) as *const ());
    }
}

/// One metro shard: a full serving stack behind its router slot.
pub(crate) struct Shard {
    name: &'static str,
    slot: ModelSlot,
    queue: BatchQueue,
    cache: ResponseCache,
    slo: SloTracker,
    brownout: LoadController,
    reload_breaker: CircuitBreaker,
    cells: ShardCells,
}

/// Per-event-loop mailbox: how other threads reach a loop. Both vectors
/// are drained on the loop thread right after every wake.
struct LoopShared {
    waker: Waker,
    /// Connections handed off by the accepting loop.
    incoming: Mutex<Vec<TcpStream>>,
    /// Tokens of async predicts whose last fragment just landed.
    completions: Mutex<Vec<u64>>,
}

/// Everything the event loops and schedulers share.
struct ServerState {
    config: ServeConfig,
    shards: Vec<Shard>,
    router: Router,
    ring: RequestRing,
    read_limits: ReadLimits,
    shutdown: AtomicBool,
    loops: Vec<Arc<LoopShared>>,
    /// Round-robin cursor for connection handoff at accept.
    next_loop: AtomicUsize,
}

impl ServerState {
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::Acquire) || SIGNALLED.load(Ordering::Acquire)
    }
}

/// A running inference server. Dropping the handle does *not* stop it;
/// call [`Server::shutdown`] (or send SIGTERM with `handle_signals`).
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    loop_threads: Vec<JoinHandle<()>>,
    scheduler_threads: Vec<JoinHandle<()>>,
    /// Keeps metrics recording for the server's lifetime; the prior
    /// global state is restored when the last lease drops.
    _metrics_lease: Option<edge_obs::MetricsLease>,
}

impl Server {
    /// Binds and starts a single-shard server — the pre-router API,
    /// byte-identical in behavior to a one-entry shard list.
    pub fn start(model: EdgeModel, config: ServeConfig) -> Result<Server, String> {
        Server::start_shards(vec![("default".to_string(), model)], config)
    }

    /// Binds, spawns the event loops and per-shard batching schedulers,
    /// and returns once the socket is listening. One shard per loaded
    /// metro model; requests route by resolved entity affinity with a
    /// consistent-hash tiebreak.
    pub fn start_shards(
        shards: Vec<(String, EdgeModel)>,
        config: ServeConfig,
    ) -> Result<Server, String> {
        config.validate()?;
        if shards.is_empty() {
            return Err("at least one model shard is required".into());
        }
        {
            let mut names: Vec<&str> = shards.iter().map(|(n, _)| n.as_str()).collect();
            names.sort_unstable();
            names.dedup();
            if names.len() != shards.len() {
                return Err("shard names must be unique".into());
            }
        }
        let metrics_lease = config.enable_metrics.then(edge_obs::metrics_lease);
        if config.handle_signals {
            #[cfg(unix)]
            install_signal_handlers();
        }
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("bind {}: {e}", config.addr))?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;
        listener.set_nonblocking(true).map_err(|e| e.to_string())?;

        let names: Vec<String> = shards.iter().map(|(n, _)| n.clone()).collect();
        let shard_stacks: Vec<Shard> = shards
            .into_iter()
            .map(|(name, model)| {
                // Shard topology is fixed for the process lifetime, so
                // leaking the name buys `&'static` labels for the metric
                // cells without a registry of interned strings.
                let name: &'static str = Box::leak(name.into_boxed_str());
                Shard {
                    cells: shard_cells(name),
                    name,
                    slot: ModelSlot::new(model),
                    queue: BatchQueue::new(config.queue_capacity),
                    cache: ResponseCache::new(
                        config.cache_capacity,
                        config.cache_shards,
                        config.cache_lsh_bits,
                        config.cache_hamming_max,
                    ),
                    slo: SloTracker::new(SloConfig {
                        target_p99_us: config.slo_target_p99_us,
                        max_shed_rate: config.slo_max_shed_rate,
                        window_secs: config.slo_window_secs,
                    }),
                    brownout: LoadController::new(BrownoutConfig {
                        enabled: config.brownout_enabled,
                        target_p99_us: config.brownout_p99_us,
                        max_shed_rate: config.brownout_max_shed_rate,
                        window_secs: config.brownout_window_secs,
                        escalate_ticks: config.brownout_escalate_ticks,
                        recover_ticks: config.brownout_recover_ticks,
                        tick_interval: Duration::from_micros(config.brownout_tick_us),
                    }),
                    reload_breaker: CircuitBreaker::new(
                        config.reload_breaker_threshold,
                        Duration::from_secs(config.reload_breaker_cooldown_secs),
                    ),
                }
            })
            .collect();
        let models: Vec<Arc<EdgeModel>> = shard_stacks.iter().map(|s| s.slot.get().0).collect();
        let router = Router::new(names, &models);
        drop(models);

        let loops: Vec<Arc<LoopShared>> = (0..config.event_loops)
            .map(|_| {
                Ok(Arc::new(LoopShared {
                    waker: Waker::new().map_err(|e| format!("eventfd: {e}"))?,
                    incoming: Mutex::new(Vec::new()),
                    completions: Mutex::new(Vec::new()),
                }))
            })
            .collect::<Result<_, String>>()?;

        let state = Arc::new(ServerState {
            read_limits: ReadLimits {
                max_body_bytes: config.max_body_bytes,
                read_budget: Duration::from_micros(config.read_budget_us),
            },
            ring: RequestRing::new(config.ring_capacity),
            shards: shard_stacks,
            router,
            shutdown: AtomicBool::new(false),
            loops,
            next_loop: AtomicUsize::new(0),
            config,
        });

        let mut scheduler_threads = Vec::new();
        for shard_idx in 0..state.shards.len() {
            for replica in 0..state.config.replicas {
                let state = Arc::clone(&state);
                let name = format!("edge-serve-sched-{}-{replica}", state.shards[shard_idx].name);
                scheduler_threads.push(
                    std::thread::Builder::new()
                        .name(name)
                        .spawn(move || scheduler_entry(state, shard_idx))
                        .map_err(|e| e.to_string())?,
                );
            }
        }
        let mut loop_threads = Vec::new();
        let mut listener = Some(listener);
        for idx in 0..state.config.event_loops {
            let state = Arc::clone(&state);
            let listener = listener.take(); // loop 0 owns the accept path
            loop_threads.push(
                std::thread::Builder::new()
                    .name(format!("edge-serve-loop-{idx}"))
                    .spawn(move || event_loop(idx, listener, state))
                    .map_err(|e| e.to_string())?,
            );
        }
        Ok(Server { addr, state, loop_threads, scheduler_threads, _metrics_lease: metrics_lease })
    }

    /// Loads the model from a saved artifact — mmap layout or legacy
    /// envelope, sniffed by [`ModelArtifact::open`] — then starts.
    pub fn start_from_artifact(path: &str, config: ServeConfig) -> Result<Server, String> {
        let model = EdgeModel::load_artifact(path).map_err(|e| format!("loading {path}: {e}"))?;
        Server::start(model, config)
    }

    /// Loads one artifact per named shard, then starts the routed server.
    pub fn start_from_artifacts(
        specs: &[(String, String)],
        config: ServeConfig,
    ) -> Result<Server, String> {
        let mut shards = Vec::with_capacity(specs.len());
        for (name, path) in specs {
            let model =
                EdgeModel::load_artifact(path).map_err(|e| format!("loading {path}: {e}"))?;
            shards.push((name.clone(), model));
        }
        Server::start_shards(shards, config)
    }

    /// The actually bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Loaded shard names, in routing index order.
    pub fn shard_names(&self) -> Vec<&str> {
        self.state.shards.iter().map(|s| s.name).collect()
    }

    /// Current model generation (shard 0 — the whole server pre-router).
    pub fn generation(&self) -> u64 {
        self.state.shards[0].slot.generation()
    }

    /// Lifetime cache (hits, misses), summed across shards.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.state.shards.iter().fold((0, 0), |(h, m), s| {
            let (sh, sm) = s.cache.stats();
            (h + sh, m + sm)
        })
    }

    /// Jobs currently waiting across every shard's batching queue.
    pub fn queue_depth(&self) -> usize {
        self.state.shards.iter().map(|s| s.queue.depth()).sum()
    }

    /// Current SLO rollup of shard 0 (what `/healthz` reports for a
    /// single-shard server).
    pub fn slo_status(&self) -> SloStatus {
        self.state.shards[0].slo.status()
    }

    /// The brownout load-controller mode of shard 0 right now.
    pub fn brownout_mode(&self) -> Mode {
        self.state.shards[0].brownout.mode()
    }

    /// True while shard 0's `/reload` circuit breaker rejects attempts.
    pub fn reload_breaker_open(&self) -> bool {
        self.state.shards[0].reload_breaker.is_open()
    }

    /// The last `n` request records from the debug ring, oldest first
    /// (what `GET /debug/requests` serves).
    pub fn recent_requests(&self, n: usize) -> Vec<RequestRecord> {
        self.state.ring.recent(n)
    }

    /// Requests a graceful drain and blocks until the event loops and
    /// schedulers exit (bounded by the drain timeout).
    pub fn shutdown(mut self) {
        self.state.shutdown.store(true, Ordering::Release);
        for shared in &self.state.loops {
            shared.waker.wake();
        }
        for shard in &self.state.shards {
            shard.queue.notify_waiters();
        }
        for t in self.loop_threads.drain(..) {
            let _ = t.join();
        }
        for t in self.scheduler_threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Blocks until a signal (or programmatic shutdown) stops the server.
    /// The CLI's foreground mode. With signal handling on, the park is an
    /// `eventfd` the handler writes — the drain starts within
    /// microseconds of SIGTERM, not at a poll tick.
    pub fn wait(self) {
        let fd = SIGNAL_FD.load(Ordering::Acquire);
        while !self.state.shutdown.load(Ordering::Acquire) && !SIGNALLED.load(Ordering::Acquire) {
            if fd >= 0 {
                // The coarse timeout only covers flag flips that bypass
                // the eventfd; a signal wakes this immediately.
                reactor::wait_readable(fd, 1000);
            } else {
                std::thread::sleep(Duration::from_millis(20));
            }
        }
        edge_obs::progress!("edge-serve: draining ({} in flight)", self.queue_depth());
        self.shutdown();
    }
}

fn scheduler_entry(state: Arc<ServerState>, shard_idx: usize) {
    let max_batch = state.config.max_batch;
    let max_delay = Duration::from_micros(state.config.max_delay_us);
    let shard = &state.shards[shard_idx];
    run_scheduler(
        &shard.queue,
        &shard.slot,
        &shard.cache,
        max_batch,
        max_delay,
        || state.draining(),
        || tick_brownout(&state, shard_idx),
    );
}

/// Advances one shard's load controller and publishes a transition
/// everywhere an operator can see it: labeled counters, the mode gauges,
/// the request ring (as a synthetic `mode:<name>` record with a freshly
/// minted id, so ring replay stays ordered), and the progress log.
fn tick_brownout(state: &ServerState, shard_idx: usize) {
    let shard = &state.shards[shard_idx];
    let Some(transition) = shard.brownout.maybe_tick() else { return };
    mode_transition_counter(transition.to.name()).inc(1);
    shard.cells.mode.set(transition.to as u8 as f64);
    // The unlabeled gauge keeps its pre-router meaning: the worst mode
    // any shard is in right now.
    let worst = state.shards.iter().map(|s| s.brownout.mode()).max().unwrap_or(Mode::Full);
    edge_obs::gauge!("serve.mode").set(worst as u8 as f64);
    let endpoint: &'static str = match transition.to {
        Mode::Full => "mode:full",
        Mode::CacheOnly => "mode:cache_only",
        Mode::PriorOnly => "mode:prior_only",
        Mode::Shed => "mode:shed",
    };
    state.ring.push(RequestRecord {
        id: edge_obs::trace::next_request_id(),
        endpoint,
        status: 0,
        batch: transition.from as u8 as u32,
        cache_hits: 0,
        stage_us: [0; N_STAGES],
        total_us: 0,
    });
    if state.shards.len() == 1 {
        edge_obs::progress!(
            "edge-serve: brownout {} -> {}",
            transition.from.name(),
            transition.to.name()
        );
    } else {
        edge_obs::progress!(
            "edge-serve: brownout[{}] {} -> {}",
            shard.name,
            transition.from.name(),
            transition.to.name()
        );
    }
}

// ---------------------------------------------------------------------------
// Request bookkeeping shared by the sync and async completion paths.
// ---------------------------------------------------------------------------

/// What the predict handler learned about its request, for the debug
/// ring and the labeled stage histograms.
#[derive(Default)]
struct PredictStats {
    stage_us: [u64; N_STAGES],
    batch: u32,
    cache_hits: u32,
}

/// How a finished predict feeds the per-shard SLO/brownout trackers.
enum SloAction {
    /// Not a predict — no SLO accounting.
    None,
    /// Latency recorded into each participating shard (shard 0 when the
    /// request failed before routing).
    Record(Vec<usize>),
    /// Queue shed: counts against both trackers of the refusing shard.
    Shed429(usize),
    /// Brownout rejection: honest shed reporting in `/healthz`, but never
    /// fed back into the controller (a mode must not sustain itself on
    /// the load it sheds).
    Shed503(Vec<usize>),
}

/// Identity and timing of one in-flight request, carried from parse to
/// the final accounting no matter which thread finishes it.
struct RequestMeta {
    started: Instant,
    request_id: u64,
    endpoint: &'static str,
    /// Root span; detached because the request may complete on a later
    /// loop iteration. Dropped (= recorded) by [`finish_request`].
    root: DetachedSpan,
}

/// The single exit point for every request: ends the root span, feeds
/// the global and per-shard metric families and SLO trackers, pushes the
/// debug-ring record, and advances the brownout controllers — the exact
/// bookkeeping the blocking server did at the tail of `handle_request`.
fn finish_request(
    state: &ServerState,
    meta: RequestMeta,
    status: u16,
    stats: &PredictStats,
    action: SloAction,
) {
    let RequestMeta { started, request_id, endpoint, root } = meta;
    // The root span ends before the total is measured, matching the
    // blocking server's drop-then-measure order.
    drop(root);
    let total_us = started.elapsed().as_micros() as u64;
    edge_obs::counter!("serve.requests").inc(1);
    edge_obs::histogram!("serve.request.us").record(total_us as f64);
    request_counter(endpoint, status).inc(1);
    for (i, &us) in stats.stage_us.iter().enumerate() {
        if us > 0 {
            stage_hists()[i].record(us as f64);
        }
    }
    match action {
        SloAction::None => {}
        SloAction::Record(mut shards) => {
            if shards.is_empty() {
                shards.push(0);
            }
            shards.sort_unstable();
            shards.dedup();
            for s in shards {
                let shard = &state.shards[s];
                shard.slo.record(total_us);
                shard.brownout.record(total_us);
                shard.cells.requests.inc(1);
                shard.cells.request_us.record(total_us as f64);
            }
        }
        SloAction::Shed429(s) => {
            let shard = &state.shards[s];
            shard.slo.record_shed();
            shard.brownout.record_shed();
            shard.cells.requests.inc(1);
        }
        SloAction::Shed503(mut shards) => {
            shards.sort_unstable();
            shards.dedup();
            for s in shards {
                let shard = &state.shards[s];
                shard.slo.record_shed();
                shard.cells.requests.inc(1);
            }
        }
    }
    let record = RequestRecord {
        id: request_id,
        endpoint,
        status,
        batch: stats.batch,
        cache_hits: stats.cache_hits,
        stage_us: stats.stage_us,
        total_us,
    };
    state.ring.push(record);
    if state.config.slow_request_us > 0 && total_us >= state.config.slow_request_us {
        edge_obs::progress!("{}", record.to_json());
    }
    // Advance the load controllers after the ring push so a transition
    // record minted now carries an id above this request's.
    for shard_idx in 0..state.shards.len() {
        tick_brownout(state, shard_idx);
    }
}

/// An endpoint's answer before it is framed onto the wire.
struct Reply {
    status: u16,
    content_type: &'static str,
    extra: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Reply {
    fn json(status: u16, body: Vec<u8>) -> Reply {
        Reply { status, content_type: "application/json", extra: Vec::new(), body }
    }

    fn with_retry_after(mut self, secs: u64) -> Reply {
        self.extra.push(("Retry-After".to_string(), secs.to_string()));
        self
    }
}

/// Frames a reply as wire bytes, stamping `X-Request-Id` like the
/// blocking responder did.
fn to_wire(reply: &Reply, header_id: &str, keep_alive: bool) -> Vec<u8> {
    let mut headers: Vec<(&str, &str)> = Vec::with_capacity(reply.extra.len() + 1);
    headers.push(("X-Request-Id", header_id));
    for (name, value) in &reply.extra {
        headers.push((name, value));
    }
    let mut out = Vec::with_capacity(reply.body.len() + 128);
    write_response_with(
        &mut out,
        reply.status,
        reply.content_type,
        &headers,
        &reply.body,
        keep_alive,
    )
    .expect("writing to a Vec cannot fail");
    out
}

// ---------------------------------------------------------------------------
// Endpoint handlers (synchronous; predict may instead go async).
// ---------------------------------------------------------------------------

fn handle_healthz(state: &ServerState) -> Reply {
    // Aggregate across shards: degraded if any shard is, the tightest
    // budget, the worst burn/shed, the worst brownout mode. Identical to
    // the pre-router body for a single shard.
    let statuses: Vec<SloStatus> = state.shards.iter().map(|s| s.slo.status()).collect();
    let degraded = statuses.iter().any(|s| s.degraded);
    let budget = statuses.iter().map(|s| s.budget_remaining).fold(f64::INFINITY, f64::min);
    let burn = statuses.iter().map(|s| s.burn_rate).fold(0.0, f64::max);
    let shed = statuses.iter().map(|s| s.shed_rate).fold(0.0, f64::max);
    let mode = state.shards.iter().map(|s| s.brownout.mode()).max().unwrap_or(Mode::Full);
    let generation = state.shards[0].slot.generation().to_string();
    let status = if degraded { "degraded" } else { "ok" };
    let budget = format!("{budget:.4}");
    let burn = format!("{burn:.4}");
    let shed = format!("{shed:.4}");
    let body = simple_object(&[
        ("status", status),
        ("model", "EDGE"),
        ("generation", &generation),
        ("mode", mode.name()),
        ("slo_budget_remaining", &budget),
        ("slo_burn_rate", &burn),
        ("slo_shed_rate", &shed),
    ]);
    Reply::json(200, body)
}

fn handle_metrics(state: &ServerState) -> Reply {
    // Point-in-time gauges are refreshed at scrape so the exposition is
    // self-contained. Unlabeled gauges keep their pre-router meaning as
    // whole-server rollups; the `serve_shard_*` families carry the
    // per-shard truth.
    let (hits, misses) = state.shards.iter().fold((0u64, 0u64), |(h, m), s| {
        let (sh, sm) = s.cache.stats();
        (h + sh, m + sm)
    });
    edge_obs::gauge!("serve.cache.stats.hits").set(hits as f64);
    edge_obs::gauge!("serve.cache.stats.misses").set(misses as f64);
    let depth: usize = state.shards.iter().map(|s| s.queue.depth()).sum();
    edge_obs::gauge!("serve.queue.depth").set(depth as f64);
    let statuses: Vec<SloStatus> = state.shards.iter().map(|s| s.slo.status()).collect();
    let burn = statuses.iter().map(|s| s.burn_rate).fold(0.0, f64::max);
    let budget = statuses.iter().map(|s| s.budget_remaining).fold(f64::INFINITY, f64::min);
    let shed = statuses.iter().map(|s| s.shed_rate).fold(0.0, f64::max);
    let degraded = statuses.iter().any(|s| s.degraded);
    edge_obs::gauge!("serve.slo.burn.rate").set(burn);
    edge_obs::gauge!("serve.slo.budget.remaining").set(budget);
    edge_obs::gauge!("serve.slo.shed.rate").set(shed);
    edge_obs::gauge!("serve.slo.degraded").set(if degraded { 1.0 } else { 0.0 });
    let worst = state.shards.iter().map(|s| s.brownout.mode()).max().unwrap_or(Mode::Full);
    edge_obs::gauge!("serve.mode").set(worst as u8 as f64);
    for (shard, status) in state.shards.iter().zip(&statuses) {
        let (sh, sm) = shard.cache.stats();
        shard.cells.queue_depth.set(shard.queue.depth() as f64);
        shard.cells.shed_rate.set(status.shed_rate);
        shard.cells.cache_hits.set(sh as f64);
        shard.cells.cache_misses.set(sm as f64);
        shard.cells.mode.set(shard.brownout.mode() as u8 as f64);
        shard.cells.generation.set(shard.slot.generation() as f64);
    }
    let text = edge_obs::openmetrics::render(&edge_obs::metrics::snapshot());
    Reply {
        status: 200,
        content_type: edge_obs::openmetrics::CONTENT_TYPE,
        extra: Vec::new(),
        body: text.into_bytes(),
    }
}

fn handle_debug_requests(req: &Request, state: &ServerState) -> Reply {
    let n = req.query_param("n").and_then(|v| v.parse().ok()).unwrap_or(64usize);
    let records = state.ring.recent(n);
    let mut body = String::from("{\"requests\":[");
    for (i, record) in records.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&record.to_json());
    }
    body.push_str("]}");
    Reply::json(200, body.into_bytes())
}

fn handle_reload(req: &Request, state: &ServerState) -> Reply {
    let parsed = std::str::from_utf8(&req.body)
        .ok()
        .and_then(|s| serde_json::from_str::<serde_json::Value>(s).ok());
    let path =
        parsed.as_ref().and_then(|v| v.get("path").and_then(|p| p.as_str().map(str::to_string)));
    let Some(path) = path else {
        let body = simple_object(&[("error", "bad_request"), ("detail", "body needs a \"path\"")]);
        return Reply::json(400, body);
    };
    // Which shard swaps: explicit `"shard": NAME`, defaulting to the only
    // shard when there is exactly one.
    let shard_name =
        parsed.as_ref().and_then(|v| v.get("shard").and_then(|s| s.as_str().map(str::to_string)));
    let shard_idx = match (&shard_name, state.shards.len()) {
        (Some(name), _) => match state.router.shard_index(name) {
            Some(idx) => idx,
            None => {
                let detail = format!("unknown shard {name:?}");
                let body = simple_object(&[("error", "bad_request"), ("detail", &detail)]);
                return Reply::json(400, body);
            }
        },
        (None, 1) => 0,
        (None, _) => {
            let body = simple_object(&[
                ("error", "bad_request"),
                ("detail", "body needs a \"shard\" on a multi-shard server"),
            ]);
            return Reply::json(400, body);
        }
    };
    let shard = &state.shards[shard_idx];
    // A corrupt-artifact storm (checksum/deserialize failures in a row)
    // opens the breaker: further attempts are refused outright until the
    // cooldown lapses, protecting the serving path from reload churn.
    if let Err(retry_after) = shard.reload_breaker.check() {
        edge_obs::counter!("serve.reload.breaker.rejected").inc(1);
        let body = simple_object(&[
            ("error", "circuit_open"),
            ("detail", "reload breaker open after repeated failures"),
        ]);
        return Reply::json(503, body).with_retry_after(retry_after);
    }
    match shard.slot.reload_from(&path) {
        Ok(generation) => {
            shard.reload_breaker.record_success();
            // Entries keyed under older generations can never be returned
            // (the key carries the generation); clearing reclaims memory.
            shard.cache.clear();
            edge_obs::counter!("serve.reloads").inc(1);
            edge_obs::progress!("edge-serve: reloaded {path} as generation {generation}");
            let generation = generation.to_string();
            let body = simple_object(&[("status", "ok"), ("generation", &generation)]);
            Reply::json(200, body)
        }
        Err(msg) => {
            shard.reload_breaker.record_failure();
            edge_obs::counter!("serve.reload.failures").inc(1);
            let body = simple_object(&[("error", "reload_rejected"), ("detail", &msg)]);
            Reply::json(422, body)
        }
    }
}

// ---------------------------------------------------------------------------
// Predict: routed, admitted on the loop thread, completed asynchronously.
// ---------------------------------------------------------------------------

/// An admitted predict waiting for its shard schedulers, owned by the
/// event loop that parsed it.
struct InFlight {
    conn: u64,
    pending: Arc<Pending>,
    deadline: Deadline,
    /// When the loop gives up waiting (deadline-capped scheduler-wedge
    /// bound — the async mirror of the blocking `pending.wait` limit).
    timeout_at: Instant,
    /// Per-text fragments; inline answers prefilled, seeds filled at
    /// completion.
    fragments: Vec<Option<Arc<Vec<u8>>>>,
    /// Fragment index of each pending slot, in pending order.
    seeds: Vec<usize>,
    stages: Arc<StageCells>,
    single: bool,
    meta: RequestMeta,
    stats: PredictStats,
    participants: Vec<usize>,
    header_id: String,
    keep_alive: bool,
}

/// A brownout 503 for `mode`, charged to `shards`.
fn browned_out_reply(state: &ServerState, mode: Mode, shards: Vec<usize>) -> (Reply, SloAction) {
    mode_rejection_counter(mode.name()).inc(1);
    let body = simple_object(&[("error", "browned_out"), ("mode", mode.name())]);
    let reply = Reply::json(503, body).with_retry_after(state.config.retry_after_secs);
    (reply, SloAction::Shed503(shards))
}

/// What dispatching one parsed request produced.
enum Outcome {
    /// Fully answered: wire bytes ready to flush.
    Ready(Vec<u8>),
    /// Predict admitted to shard queues; answered when `InFlight`
    /// completes or times out.
    Pending(u64),
}

/// Parses, routes, and either answers or admits one request. Runs on the
/// event-loop thread; never blocks.
#[allow(clippy::too_many_arguments)]
fn dispatch_request(
    state: &ServerState,
    shared: &Arc<LoopShared>,
    inflight: &mut HashMap<u64, InFlight>,
    next_token: &mut u64,
    conn_token: u64,
    req: Request,
    keep_alive: bool,
) -> Outcome {
    let started = Instant::now();
    // Every request gets a fresh id; spans opened anywhere below (this
    // thread, the scheduler, the worker pool) carry it, and the response
    // echoes the client's X-Request-Id when it sent one.
    let request_id = edge_obs::trace::next_request_id();
    let _scope = edge_obs::trace::request_scope(request_id);
    let header_id = req.request_id.clone().unwrap_or_else(|| format!("req-{request_id}"));
    let endpoint: &'static str = match req.path.as_str() {
        "/predict" => "predict",
        "/healthz" => "healthz",
        "/metrics" => "metrics",
        "/reload" => "reload",
        "/debug/requests" => "debug_requests",
        _ => "other",
    };
    // The request's budget: the client's X-Deadline-Us when sent, the
    // server default otherwise.
    let deadline = Deadline::resolve(req.deadline_us, state.config.default_deadline_us);
    let meta =
        RequestMeta { started, request_id, endpoint, root: DetachedSpan::begin("serve.request") };

    if let ("POST", "predict") = (req.method.as_str(), endpoint) {
        return handle_predict(
            state, shared, inflight, next_token, conn_token, &req, meta, deadline, header_id,
            keep_alive,
        );
    }
    let reply = match (req.method.as_str(), endpoint) {
        ("GET", "healthz") => handle_healthz(state),
        ("GET", "metrics") => handle_metrics(state),
        ("GET", "debug_requests") => handle_debug_requests(&req, state),
        ("POST", "reload") => handle_reload(&req, state),
        (_, "other") => Reply::json(404, simple_object(&[("error", "not_found")])),
        _ => Reply::json(405, simple_object(&[("error", "method_not_allowed")])),
    };
    let wire = to_wire(&reply, &header_id, keep_alive);
    finish_request(state, meta, reply.status, &PredictStats::default(), SloAction::None);
    Outcome::Ready(wire)
}

#[allow(clippy::too_many_arguments)]
fn handle_predict(
    state: &ServerState,
    shared: &Arc<LoopShared>,
    inflight: &mut HashMap<u64, InFlight>,
    next_token: &mut u64,
    conn_token: u64,
    req: &Request,
    meta: RequestMeta,
    deadline: Deadline,
    header_id: String,
    keep_alive: bool,
) -> Outcome {
    let mut stats = PredictStats::default();
    let finish = |meta: RequestMeta, reply: Reply, stats: &PredictStats, action: SloAction| {
        let wire = to_wire(&reply, &header_id, keep_alive);
        finish_request(state, meta, reply.status, stats, action);
        Outcome::Ready(wire)
    };

    // Shed rejects before spending anything on the body — but only when
    // *every* shard is shedding; any surviving shard might still own the
    // request, which routing (below) decides.
    let shed_everywhere = state.shards.iter().all(|s| s.brownout.mode() == Mode::Shed);
    if shed_everywhere {
        let all: Vec<usize> = (0..state.shards.len()).collect();
        let (reply, action) = browned_out_reply(state, Mode::Shed, all);
        return finish(meta, reply, &stats, action);
    }

    // Child spans on this thread nest under the detached root.
    let adopt = edge_obs::trace::adopt(meta.root.ctx());
    // The parse stage covers body parse, routing, entity resolution, and
    // cache probes; it ends at admission, where queue time takes over.
    let parse_started = Instant::now();
    let parse_span = edge_obs::span("serve.stage.parse");
    let body = match parse_predict_body(&req.body) {
        Ok(b) => b,
        Err(msg) => {
            drop(parse_span);
            drop(adopt);
            stats.stage_us[STAGE_PARSE] = parse_started.elapsed().as_micros() as u64;
            let body = simple_object(&[("error", "bad_request"), ("detail", &msg)]);
            return finish(meta, Reply::json(400, body), &stats, SloAction::Record(Vec::new()));
        }
    };
    let fallback = body.fallback_prior.unwrap_or(state.config.fallback_prior);
    // One coherent snapshot of every shard's model for this request.
    let snapshots: Vec<(Arc<EdgeModel>, u64)> = state.shards.iter().map(|s| s.slot.get()).collect();
    let models: Vec<Arc<EdgeModel>> = snapshots.iter().map(|(m, _)| Arc::clone(m)).collect();
    edge_obs::counter!("serve.predict.texts").inc(body.texts.len() as u64);
    stats.batch = body.texts.len() as u32;

    // A request that arrived already out of budget is not worth resolving.
    if deadline.expired() {
        drop(parse_span);
        drop(adopt);
        stats.stage_us[STAGE_PARSE] = parse_started.elapsed().as_micros() as u64;
        edge_obs::counter!("serve.deadline.expired").inc(1);
        let reply = Reply::json(504, render_deadline_error());
        return finish(meta, reply, &stats, SloAction::Record(Vec::new()));
    }

    // Route and resolve each text up front: abstentions answer
    // immediately, cache hits skip the queue, and only genuine model work
    // is admitted. Each text's shard decides its brownout fate: CacheOnly
    // rejects a miss, PriorOnly answers from that shard's fallback prior
    // with a `degraded` marker, Full admits it to the shard's queue.
    let mut fragments: Vec<Option<Arc<Vec<u8>>>> = vec![None; body.texts.len()];
    let mut seeds: Vec<(usize, usize, Vec<usize>)> = Vec::new();
    let mut participants: Vec<usize> = Vec::new();
    let mut degraded_prior: HashMap<usize, Arc<Vec<u8>>> = HashMap::new();
    for (i, text) in body.texts.iter().enumerate() {
        let s = state.router.route_text(text, &models);
        let shard = &state.shards[s];
        shard.cells.texts.inc(1);
        participants.push(s);
        let (model, generation) = (&models[s], snapshots[s].1);
        let entities = model.resolve_entities(text);
        if entities.is_empty() && !fallback {
            fragments[i] = Some(Arc::new(render_error(&edge_core::PredictError::NoEntities)));
            batch_path_counter(false).inc(1);
            continue;
        }
        let key = CacheKey { generation, entities: entities.clone(), fallback };
        if let Some(bytes) = shard.cache.get(&key) {
            fragments[i] = Some(bytes);
            stats.cache_hits += 1;
            batch_path_counter(false).inc(1);
            continue;
        }
        match shard.brownout.mode() {
            mode @ (Mode::CacheOnly | Mode::Shed) => {
                drop(parse_span);
                drop(adopt);
                stats.stage_us[STAGE_PARSE] = parse_started.elapsed().as_micros() as u64;
                let (reply, action) = browned_out_reply(state, mode, vec![s]);
                return finish(meta, reply, &stats, action);
            }
            Mode::PriorOnly => {
                // Skip diffusion/attention entirely: one shared prior
                // answer per shard per request, explicitly marked degraded.
                let bytes = degraded_prior.entry(s).or_insert_with(|| {
                    let opts = edge_core::PredictOptions::default().with_fallback_prior(true);
                    let result =
                        model.locate(&edge_core::PredictRequest::entities(Vec::new()), &opts);
                    Arc::new(match &result {
                        Ok(resp) => render_response_degraded(resp),
                        Err(err) => render_error(err),
                    })
                });
                fragments[i] = Some(Arc::clone(bytes));
                edge_obs::counter!("serve.degraded.answers").inc(1);
                batch_path_counter(false).inc(1);
            }
            Mode::Full => {
                batch_path_counter(true).inc(1);
                seeds.push((i, s, entities));
            }
        }
    }

    if seeds.is_empty() {
        // Everything answered inline: serialize and finish synchronously.
        drop(parse_span);
        stats.stage_us[STAGE_PARSE] = parse_started.elapsed().as_micros() as u64;
        let serialize_started = Instant::now();
        let serialize_span = edge_obs::span("serve.stage.serialize");
        let out = serialize_fragments(&mut fragments, body.single);
        drop(serialize_span);
        drop(adopt);
        stats.stage_us[STAGE_SERIALIZE] = serialize_started.elapsed().as_micros() as u64;
        let reply = Reply::json(200, out);
        return finish(meta, reply, &stats, SloAction::Record(participants));
    }

    let stages = Arc::new(StageCells::default());
    // The parse stage ends here, at admission: job construction and the
    // submit itself contend on the queue mutex (the scheduler holds it to
    // evict expired jobs), and that wait is queue time. Ending parse
    // first keeps the stages disjoint, so their sum never exceeds the
    // request's end-to-end latency.
    drop(parse_span);
    drop(adopt);
    stats.stage_us[STAGE_PARSE] = parse_started.elapsed().as_micros() as u64;
    let submitted = Instant::now();
    let token = *next_token;
    *next_token += 1;
    // Completion path: the worker that fills the last fragment posts the
    // token to this loop's mailbox and wakes its epoll.
    let notify = Arc::clone(shared);
    let pending = Arc::new(Pending::with_notifier(seeds.len(), move || {
        notify.completions.lock().unwrap_or_else(|e| e.into_inner()).push(token);
        notify.waker.wake();
    }));
    // One submit per shard, all-or-nothing within each shard's queue —
    // identical to the blocking server for a single shard. If any shard
    // sheds, the whole request answers 429; fragments already admitted
    // elsewhere complete into an unregistered token and are ignored.
    let mut by_shard: HashMap<usize, Vec<Job>> = HashMap::new();
    for (k, (i, s, entities)) in seeds.iter().enumerate() {
        by_shard.entry(*s).or_default().push(Job {
            entities: entities.clone(),
            generation: snapshots[*s].1,
            text: body.texts[*i].clone(),
            fallback,
            pending: Arc::clone(&pending),
            index: k,
            ctx: meta.root.ctx(),
            submitted,
            stages: Arc::clone(&stages),
            deadline,
        });
    }
    for (s, jobs) in by_shard {
        if !state.shards[s].queue.try_submit(jobs) {
            edge_obs::counter!("serve.shed").inc(1);
            let body = simple_object(&[("error", "overloaded")]);
            let reply = Reply::json(429, body).with_retry_after(state.config.retry_after_secs);
            return finish(meta, reply, &stats, SloAction::Shed429(s));
        }
    }
    // Wait no longer than the request's own budget: a bounded request
    // answers 504 the moment its budget is gone, not at the generic
    // scheduler-wedge timeout.
    let wait_limit = match deadline.remaining() {
        Some(remaining) => remaining.min(PREDICT_TIMEOUT),
        None => PREDICT_TIMEOUT,
    };
    inflight.insert(
        token,
        InFlight {
            conn: conn_token,
            pending,
            deadline,
            timeout_at: submitted + wait_limit,
            fragments,
            seeds: seeds.into_iter().map(|(i, _, _)| i).collect(),
            stages,
            single: body.single,
            meta,
            stats,
            participants,
            header_id,
            keep_alive,
        },
    );
    Outcome::Pending(token)
}

/// Joins fragments into the response body: a bare object for the single
/// shape, an envelope for batch.
fn serialize_fragments(fragments: &mut [Option<Arc<Vec<u8>>>], single: bool) -> Vec<u8> {
    let mut out: Vec<u8> = Vec::with_capacity(64 * fragments.len());
    if single {
        out.extend_from_slice(&fragments[0].take().expect("filled"));
    } else {
        out.extend_from_slice(b"{\"results\":[");
        for (i, frag) in fragments.iter().enumerate() {
            if i > 0 {
                out.push(b',');
            }
            out.extend_from_slice(frag.as_ref().expect("filled"));
        }
        out.extend_from_slice(b"]}");
    }
    out
}

/// Resolves a completed (or timed-out) in-flight predict into wire
/// bytes, running the same status ladder as the blocking server's
/// post-`wait` tail.
fn resolve_inflight(state: &ServerState, mut flight: InFlight, timed_out: bool) -> (u64, Vec<u8>) {
    let results = flight.pending.try_results();
    let (reply, action) = match results {
        _ if flight.deadline.expired() => {
            edge_obs::counter!("serve.deadline.expired").inc(1);
            (
                Reply::json(504, render_deadline_error()),
                SloAction::Record(flight.participants.clone()),
            )
        }
        None => {
            debug_assert!(timed_out, "resolved without results or timeout");
            let body = simple_object(&[("error", "timeout")]);
            (Reply::json(500, body), SloAction::Record(flight.participants.clone()))
        }
        Some(results) => {
            // Queue eviction resolves a job to the deadline fragment; a
            // request holding one is answered 504 as a whole, matching
            // the typed contract regardless of which stage gave up first.
            if results.iter().any(|b| b.as_slice() == render_deadline_error().as_slice()) {
                (
                    Reply::json(504, render_deadline_error()),
                    SloAction::Record(flight.participants.clone()),
                )
            } else {
                for (&i, bytes) in flight.seeds.iter().zip(results) {
                    flight.fragments[i] = Some(bytes);
                }
                let (queue_us, batch_us, inference_us) = flight.stages.load();
                flight.stats.stage_us[STAGE_QUEUE] = queue_us;
                flight.stats.stage_us[STAGE_BATCH] = batch_us;
                flight.stats.stage_us[STAGE_INFERENCE] = inference_us;
                let serialize_started = Instant::now();
                let adopt = edge_obs::trace::adopt(flight.meta.root.ctx());
                let serialize_span = edge_obs::span("serve.stage.serialize");
                let out = serialize_fragments(&mut flight.fragments, flight.single);
                drop(serialize_span);
                drop(adopt);
                flight.stats.stage_us[STAGE_SERIALIZE] =
                    serialize_started.elapsed().as_micros() as u64;
                (Reply::json(200, out), SloAction::Record(flight.participants.clone()))
            }
        }
    };
    let wire = to_wire(&reply, &flight.header_id, flight.keep_alive);
    finish_request(state, flight.meta, reply.status, &flight.stats, action);
    (flight.conn, wire)
}

// ---------------------------------------------------------------------------
// The event loop: connection state machines over epoll.
// ---------------------------------------------------------------------------

/// One response slot in a connection's pipeline: answered in request
/// order, so pipelined requests cannot reorder even when a later one
/// finishes first.
enum Slot {
    Ready(Vec<u8>),
    Waiting(u64),
}

/// Per-connection state machine.
struct Connection {
    stream: TcpStream,
    read_buf: Vec<u8>,
    /// Responses (ready or awaited) in request order.
    slots: VecDeque<Slot>,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Close once every queued response has flushed.
    close_after_flush: bool,
    /// Stop parsing further pipelined requests (after `Connection:
    /// close`, a parse error, or drain).
    stop_reading: bool,
    /// Read-budget arm time: set by the first byte of an incomplete
    /// request, re-armed per request, cleared when the buffer is empty.
    armed_at: Option<Instant>,
    /// Last time a write made progress (stalled-reader bound).
    last_write_progress: Instant,
    /// Peer half-closed its send side (EOF observed).
    read_closed: bool,
}

impl Connection {
    fn new(stream: TcpStream) -> Connection {
        Connection {
            stream,
            read_buf: Vec::new(),
            slots: VecDeque::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            close_after_flush: false,
            stop_reading: false,
            armed_at: None,
            last_write_progress: Instant::now(),
            read_closed: false,
        }
    }

    /// Whether any timed bound (budget, write stall, pending output)
    /// needs tick-granularity enforcement.
    fn timed(&self) -> bool {
        self.armed_at.is_some() || self.write_pos < self.write_buf.len() || !self.slots.is_empty()
    }

    fn queue_reply(&mut self, wire: Vec<u8>) {
        self.slots.push_back(Slot::Ready(wire));
    }
}

fn event_loop(loop_idx: usize, listener: Option<TcpListener>, state: Arc<ServerState>) {
    let shared = Arc::clone(&state.loops[loop_idx]);
    let Ok(poller) = Poller::new() else { return };
    let mut listener = listener;
    if let Some(l) = &listener {
        let _ = poller.add(l.as_raw_fd(), TOKEN_LISTENER, EPOLLIN | reactor::EPOLLET);
    }
    // Level-triggered waker registration: a wake posted while the loop is
    // busy still shows on the next epoll_wait.
    let _ = poller.add(shared.waker.fd(), TOKEN_WAKER, EPOLLIN);

    let mut conns: HashMap<u64, Connection> = HashMap::new();
    let mut inflight: HashMap<u64, InFlight> = HashMap::new();
    // Monotonic, never reused: connection and in-flight tokens share the
    // space, so a stale completion can never alias a live connection.
    let mut next_token: u64 = 2;
    let mut events = event_buffer(256);
    let mut drain_deadline: Option<Instant> = None;

    loop {
        let draining = state.draining();
        if draining {
            if drain_deadline.is_none() {
                drain_deadline = Some(Instant::now() + DRAIN_TIMEOUT);
                // Stop accepting: close the listening socket now so the
                // port frees while in-flight work finishes.
                if let Some(l) = listener.take() {
                    let _ = poller.delete(l.as_raw_fd());
                }
                // Idle connections close immediately; busy ones flush
                // their pipeline first.
                let idle: Vec<u64> = conns
                    .iter()
                    .filter(|(_, c)| c.slots.is_empty() && c.write_buf.len() == c.write_pos)
                    .map(|(&t, _)| t)
                    .collect();
                for token in idle {
                    close_conn(&poller, &mut conns, token);
                }
                for conn in conns.values_mut() {
                    conn.stop_reading = true;
                    conn.close_after_flush = true;
                }
            }
            if (conns.is_empty() && inflight.is_empty())
                || drain_deadline.is_some_and(|d| Instant::now() >= d)
            {
                return;
            }
        }

        let timed = !inflight.is_empty() || conns.values().any(Connection::timed);
        let timeout_ms = if draining {
            10
        } else if timed {
            TICK_MS
        } else {
            IDLE_MS
        };
        let Ok(n) = poller.wait(&mut events, timeout_ms) else { return };

        for event in events.iter().take(n) {
            let (token, bits) = (event.token(), event.events());
            match token {
                TOKEN_LISTENER => accept_ready(
                    &state,
                    &poller,
                    listener.as_ref(),
                    loop_idx,
                    &mut conns,
                    &mut next_token,
                    &shared,
                    &mut inflight,
                ),
                TOKEN_WAKER => shared.waker.drain(),
                token => {
                    if bits & (EPOLLERR | EPOLLHUP) != 0 {
                        close_conn(&poller, &mut conns, token);
                        continue;
                    }
                    if bits & (EPOLLIN | EPOLLRDHUP) != 0 {
                        conn_readable(
                            &state,
                            &poller,
                            &shared,
                            &mut conns,
                            &mut inflight,
                            &mut next_token,
                            token,
                        );
                    }
                    if bits & EPOLLOUT != 0 {
                        if let Some(conn) = conns.get_mut(&token) {
                            if !try_flush(conn) {
                                close_conn(&poller, &mut conns, token);
                            }
                        }
                    }
                }
            }
        }

        // Handed-off connections from the accepting loop.
        let incoming: Vec<TcpStream> =
            shared.incoming.lock().unwrap_or_else(|e| e.into_inner()).drain(..).collect();
        for stream in incoming {
            if state.draining() {
                continue; // dropped: refusing new work mid-drain
            }
            register_conn(
                &state,
                &poller,
                &shared,
                &mut conns,
                &mut inflight,
                &mut next_token,
                stream,
            );
        }

        // Completed async predicts.
        let done: Vec<u64> =
            shared.completions.lock().unwrap_or_else(|e| e.into_inner()).drain(..).collect();
        for token in done {
            // Unknown tokens are fine: a 429'd request's stray fragments
            // (other-shard submits that preceded the failing one), or a
            // predict the timeout tick already resolved.
            if let Some(flight) = inflight.remove(&token) {
                let (conn_token, wire) = resolve_inflight(&state, flight, false);
                deliver(&poller, &mut conns, conn_token, token, wire);
            }
        }

        // Timed bounds: in-flight waits, read budgets, write stalls.
        let now = Instant::now();
        let expired: Vec<u64> =
            inflight.iter().filter(|(_, f)| now >= f.timeout_at).map(|(&t, _)| t).collect();
        for token in expired {
            let Some(flight) = inflight.remove(&token) else { continue };
            let (conn_token, wire) = resolve_inflight(&state, flight, true);
            deliver(&poller, &mut conns, conn_token, token, wire);
        }
        let budget = state.read_limits.read_budget;
        let write_timeout = Duration::from_micros(state.config.write_timeout_us);
        let cut: Vec<u64> = conns
            .iter()
            .filter(|(_, c)| {
                let read_overdue = !budget.is_zero()
                    && c.armed_at.is_some_and(|armed| now.duration_since(armed) >= budget);
                let write_stalled = !write_timeout.is_zero()
                    && c.write_pos < c.write_buf.len()
                    && now.duration_since(c.last_write_progress) >= write_timeout;
                read_overdue || write_stalled
            })
            .map(|(&t, _)| t)
            .collect();
        for token in cut {
            // Slow-loris or stalled reader: the request never finished
            // arriving (or the client never drained) within its budget.
            edge_obs::counter!("serve.read.timeouts").inc(1);
            close_conn(&poller, &mut conns, token);
        }
    }
}

/// Accepts until the listener would block, handing connections off
/// round-robin across the loop pool.
#[allow(clippy::too_many_arguments)]
fn accept_ready(
    state: &Arc<ServerState>,
    poller: &Poller,
    listener: Option<&TcpListener>,
    loop_idx: usize,
    conns: &mut HashMap<u64, Connection>,
    next_token: &mut u64,
    shared: &Arc<LoopShared>,
    inflight: &mut HashMap<u64, InFlight>,
) {
    let Some(listener) = listener else { return };
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                edge_obs::counter!("serve.connections").inc(1);
                // Fault hook on the accept path: an injected error drops
                // the connection before any request is read.
                if edge_faults::enabled() && edge_faults::check("serve.accept").is_err() {
                    edge_obs::counter!("serve.accept.failures").inc(1);
                    drop(stream);
                    continue;
                }
                let target = state.next_loop.fetch_add(1, Ordering::Relaxed) % state.loops.len();
                if target == loop_idx {
                    register_conn(state, poller, shared, conns, inflight, next_token, stream);
                } else {
                    state.loops[target]
                        .incoming
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push(stream);
                    state.loops[target].waker.wake();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(_) => break,
        }
    }
}

/// Registers a connection with this loop and performs the initial read
/// (its first readable edge may predate registration).
fn register_conn(
    state: &ServerState,
    poller: &Poller,
    shared: &Arc<LoopShared>,
    conns: &mut HashMap<u64, Connection>,
    inflight: &mut HashMap<u64, InFlight>,
    next_token: &mut u64,
    stream: TcpStream,
) {
    if stream.set_nonblocking(true).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let token = *next_token;
    *next_token += 1;
    if poller.add(stream.as_raw_fd(), token, interest_rw()).is_err() {
        return;
    }
    conns.insert(token, Connection::new(stream));
    conn_readable(state, poller, shared, conns, inflight, next_token, token);
}

/// Removes and drops a connection (closing its fd). Any in-flight
/// predicts pointed at it finish later and simply find no connection.
fn close_conn(poller: &Poller, conns: &mut HashMap<u64, Connection>, token: u64) {
    if let Some(conn) = conns.remove(&token) {
        let _ = poller.delete(conn.stream.as_raw_fd());
    }
}

/// Hands a completed async response to its connection's pipeline slot
/// and flushes whatever became writable.
fn deliver(
    poller: &Poller,
    conns: &mut HashMap<u64, Connection>,
    conn_token: u64,
    pending_token: u64,
    wire: Vec<u8>,
) {
    let Some(conn) = conns.get_mut(&conn_token) else { return };
    for slot in conn.slots.iter_mut() {
        if matches!(slot, Slot::Waiting(t) if *t == pending_token) {
            *slot = Slot::Ready(wire);
            break;
        }
    }
    if !try_flush(conn) {
        close_conn(poller, conns, conn_token);
    }
}

/// Drains the socket, parses every complete pipelined request, and
/// flushes. Closes the connection on protocol or transport failure.
fn conn_readable(
    state: &ServerState,
    poller: &Poller,
    shared: &Arc<LoopShared>,
    conns: &mut HashMap<u64, Connection>,
    inflight: &mut HashMap<u64, InFlight>,
    next_token: &mut u64,
    token: u64,
) {
    let Some(conn) = conns.get_mut(&token) else { return };
    // Edge-triggered: read to WouldBlock, every time.
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.read_closed = true;
                break;
            }
            Ok(n) => {
                if !conn.stop_reading {
                    conn.read_buf.extend_from_slice(&chunk[..n]);
                } // else: discard bytes after close was decided
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                close_conn(poller, conns, token);
                return;
            }
        }
    }

    // Parse every complete request sitting in the buffer, answering (or
    // admitting) each in arrival order.
    let draining = state.draining();
    loop {
        let Some(conn) = conns.get_mut(&token) else { return };
        if conn.stop_reading || conn.read_buf.is_empty() {
            if conn.read_buf.is_empty() {
                conn.armed_at = None;
            }
            break;
        }
        match parse_buffered(&conn.read_buf, &state.read_limits) {
            ParseStatus::Partial => {
                // First byte of an incomplete request arms the slow-loris
                // budget; it stays armed until this request completes.
                if conn.armed_at.is_none() {
                    conn.armed_at = Some(Instant::now());
                }
                if conn.read_buf.len() > state.read_limits.max_body_bytes + HEADER_SLACK {
                    // Unbounded header/request-line growth: typed close.
                    let body = simple_object(&[("error", "bad_request")]);
                    respond_and_close(conn, 400, &body);
                } else if conn.read_closed {
                    // EOF mid-request: framing is gone, close silently
                    // once the pipeline flushes (blocking parity).
                    conn.stop_reading = true;
                    conn.close_after_flush = true;
                }
                break;
            }
            ParseStatus::Complete { req, consumed } => {
                conn.read_buf.drain(..consumed);
                // Budget re-arms fresh for a next pipelined request
                // already sitting in the buffer, and disarms when idle.
                conn.armed_at = (!conn.read_buf.is_empty()).then(Instant::now);
                let keep_alive = req.keep_alive && !draining;
                if !keep_alive {
                    conn.stop_reading = true;
                    conn.close_after_flush = true;
                }
                match dispatch_request(state, shared, inflight, next_token, token, req, keep_alive)
                {
                    Outcome::Ready(wire) => {
                        // Re-borrow: dispatch had exclusive use of the maps.
                        let Some(conn) = conns.get_mut(&token) else { return };
                        conn.queue_reply(wire);
                    }
                    Outcome::Pending(pending_token) => {
                        let Some(conn) = conns.get_mut(&token) else { return };
                        conn.slots.push_back(Slot::Waiting(pending_token));
                    }
                }
            }
            ParseStatus::TooLarge => {
                // The oversize body was never read, so framing is gone:
                // answer 413 and close.
                edge_obs::counter!("serve.body.too_large").inc(1);
                request_counter("other", 413).inc(1);
                let body = simple_object(&[("error", "payload_too_large")]);
                respond_and_close(conn, 413, &body);
                break;
            }
            ParseStatus::Bad(_) => {
                // Torn/garbage framing still gets a typed status before
                // the connection drops.
                let body = simple_object(&[("error", "bad_request")]);
                respond_and_close(conn, 400, &body);
                break;
            }
        }
    }

    let Some(conn) = conns.get_mut(&token) else { return };
    if conn.read_closed && conn.read_buf.is_empty() && !conn.slots.is_empty() {
        // Half-closed client with answers still owed: flush then close.
        conn.close_after_flush = true;
    }
    if conn.read_closed && conn.slots.is_empty() && conn.write_buf.len() == conn.write_pos {
        close_conn(poller, conns, token);
        return;
    }
    if let Some(conn) = conns.get_mut(&token) {
        if !try_flush(conn) {
            close_conn(poller, conns, token);
        }
    }
}

/// Queues a parse-level error response (no request id was minted — the
/// blocking server answered these outside `handle_request` too) and
/// marks the connection for close.
fn respond_and_close(conn: &mut Connection, status: u16, body: &[u8]) {
    let mut wire = Vec::with_capacity(body.len() + 128);
    let _ = write_response_with(&mut wire, status, "application/json", &[], body, false);
    conn.queue_reply(wire);
    conn.stop_reading = true;
    conn.close_after_flush = true;
    conn.read_buf.clear();
    conn.armed_at = None;
}

/// Moves ready responses onto the wire, preserving pipeline order.
/// Returns false when the connection should close (fatal write error, or
/// flush finished on a closing connection).
fn try_flush(conn: &mut Connection) -> bool {
    loop {
        if conn.write_pos == conn.write_buf.len() {
            conn.write_buf.clear();
            conn.write_pos = 0;
            // Promote the contiguous run of in-order ready responses; a
            // Waiting head blocks everything behind it (pipelining is
            // answered strictly in request order).
            while matches!(conn.slots.front(), Some(Slot::Ready(_))) {
                let Some(Slot::Ready(bytes)) = conn.slots.pop_front() else { unreachable!() };
                conn.write_buf.extend_from_slice(&bytes);
            }
            if conn.write_buf.is_empty() {
                break;
            }
        }
        match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
            Ok(0) => return false,
            Ok(n) => {
                conn.write_pos += n;
                conn.last_write_progress = Instant::now();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    let flushed = conn.slots.is_empty() && conn.write_pos == conn.write_buf.len();
    !(flushed && conn.close_after_flush)
}
