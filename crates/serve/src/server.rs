//! The HTTP server: accept loop, routing, admission, hot reload, and
//! graceful drain.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use edge_core::{EdgeModel, Predictor};
use edge_obs::ring::{
    RequestRecord, N_STAGES, STAGE_BATCH, STAGE_INFERENCE, STAGE_PARSE, STAGE_QUEUE,
    STAGE_SERIALIZE,
};
use edge_obs::{RequestRing, SloConfig, SloStatus, SloTracker};

use crate::batch::{run_scheduler, BatchQueue, Job, Pending, StageCells};
use crate::breaker::CircuitBreaker;
use crate::brownout::{BrownoutConfig, LoadController, Mode};
use crate::cache::{CacheKey, ResponseCache};
use crate::config::ServeConfig;
use crate::deadline::Deadline;
use crate::http::{read_request, write_response_with, ReadLimits, ReadOutcome, Request};
use crate::json::{
    parse_predict_body, render_deadline_error, render_error, render_response_degraded,
    simple_object,
};
use crate::metrics::{
    batch_path_counter, mode_rejection_counter, mode_transition_counter, request_counter,
    stage_hists,
};
use crate::slot::ModelSlot;

/// How long a handler waits for the scheduler before giving up with 500.
const PREDICT_TIMEOUT: Duration = Duration::from_secs(60);
/// Read timeout on idle keep-alive connections, so they observe drain.
const IDLE_POLL: Duration = Duration::from_millis(100);
/// How long shutdown waits for in-flight work before force-exiting.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(5);

/// Process-wide flag set by SIGTERM/SIGINT when `handle_signals` is on.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    SIGNALLED.store(true, Ordering::Release);
}

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: *const ()) -> *const ();
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal as extern "C" fn(i32) as *const ());
        signal(SIGINT, on_signal as extern "C" fn(i32) as *const ());
    }
}

/// Everything the connection handlers share.
struct ServerState {
    config: ServeConfig,
    slot: ModelSlot,
    queue: BatchQueue,
    cache: ResponseCache,
    ring: RequestRing,
    slo: SloTracker,
    brownout: LoadController,
    reload_breaker: CircuitBreaker,
    read_limits: ReadLimits,
    shutdown: AtomicBool,
    active_connections: AtomicUsize,
}

/// A running inference server. Dropping the handle does *not* stop it;
/// call [`Server::shutdown`] (or send SIGTERM with `handle_signals`).
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept_thread: Option<JoinHandle<()>>,
    scheduler_thread: Option<JoinHandle<()>>,
    /// Keeps metrics recording for the server's lifetime; the prior
    /// global state is restored when the last lease drops.
    _metrics_lease: Option<edge_obs::MetricsLease>,
}

impl Server {
    /// Binds, spawns the accept loop and the batching scheduler, and
    /// returns once the socket is listening.
    pub fn start(model: EdgeModel, config: ServeConfig) -> Result<Server, String> {
        config.validate()?;
        let metrics_lease = config.enable_metrics.then(edge_obs::metrics_lease);
        if config.handle_signals {
            #[cfg(unix)]
            install_signal_handlers();
        }
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("bind {}: {e}", config.addr))?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;
        listener.set_nonblocking(true).map_err(|e| e.to_string())?;

        let state = Arc::new(ServerState {
            cache: ResponseCache::new(config.cache_capacity, config.cache_shards),
            queue: BatchQueue::new(config.queue_capacity),
            slot: ModelSlot::new(model),
            ring: RequestRing::new(config.ring_capacity),
            slo: SloTracker::new(SloConfig {
                target_p99_us: config.slo_target_p99_us,
                max_shed_rate: config.slo_max_shed_rate,
                window_secs: config.slo_window_secs,
            }),
            brownout: LoadController::new(BrownoutConfig {
                enabled: config.brownout_enabled,
                target_p99_us: config.brownout_p99_us,
                max_shed_rate: config.brownout_max_shed_rate,
                window_secs: config.brownout_window_secs,
                escalate_ticks: config.brownout_escalate_ticks,
                recover_ticks: config.brownout_recover_ticks,
                tick_interval: Duration::from_micros(config.brownout_tick_us),
            }),
            reload_breaker: CircuitBreaker::new(
                config.reload_breaker_threshold,
                Duration::from_secs(config.reload_breaker_cooldown_secs),
            ),
            read_limits: ReadLimits {
                max_body_bytes: config.max_body_bytes,
                read_budget: Duration::from_micros(config.read_budget_us),
            },
            shutdown: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
            config,
        });

        let scheduler_thread = {
            let state = Arc::clone(&state);
            // The scheduler borrows pieces of the shared state; re-wrap
            // them as Arcs pointing into dedicated clones would be wrong —
            // instead pass closures over the one state Arc.
            std::thread::Builder::new()
                .name("edge-serve-sched".into())
                .spawn(move || {
                    scheduler_entry(state);
                })
                .map_err(|e| e.to_string())?
        };
        let accept_thread = {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("edge-serve-accept".into())
                .spawn(move || accept_loop(listener, state))
                .map_err(|e| e.to_string())?
        };
        Ok(Server {
            addr,
            state,
            accept_thread: Some(accept_thread),
            scheduler_thread: Some(scheduler_thread),
            _metrics_lease: metrics_lease,
        })
    }

    /// Loads the model from a saved artifact, then starts.
    pub fn start_from_artifact(path: &str, config: ServeConfig) -> Result<Server, String> {
        let model = EdgeModel::load(path).map_err(|e| format!("loading {path}: {e}"))?;
        Server::start(model, config)
    }

    /// The actually bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current model generation.
    pub fn generation(&self) -> u64 {
        self.state.slot.generation()
    }

    /// Lifetime cache (hits, misses).
    pub fn cache_stats(&self) -> (u64, u64) {
        self.state.cache.stats()
    }

    /// Jobs currently waiting in the batching queue.
    pub fn queue_depth(&self) -> usize {
        self.state.queue.depth()
    }

    /// Current SLO rollup (what `/healthz` reports).
    pub fn slo_status(&self) -> SloStatus {
        self.state.slo.status()
    }

    /// The brownout load-controller mode right now.
    pub fn brownout_mode(&self) -> Mode {
        self.state.brownout.mode()
    }

    /// True while the `/reload` circuit breaker rejects attempts.
    pub fn reload_breaker_open(&self) -> bool {
        self.state.reload_breaker.is_open()
    }

    /// The last `n` request records from the debug ring, oldest first
    /// (what `GET /debug/requests` serves).
    pub fn recent_requests(&self, n: usize) -> Vec<RequestRecord> {
        self.state.ring.recent(n)
    }

    /// Requests a graceful drain and blocks until the accept loop and
    /// scheduler exit (bounded by the drain timeout).
    pub fn shutdown(mut self) {
        self.state.shutdown.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.scheduler_thread.take() {
            let _ = t.join();
        }
    }

    /// Blocks until a signal (or programmatic shutdown) stops the server.
    /// The CLI's foreground mode.
    pub fn wait(self) {
        while !self.state.shutdown.load(Ordering::Acquire) && !SIGNALLED.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(50));
        }
        edge_obs::progress!("edge-serve: draining ({} in flight)", self.state.queue.depth());
        self.shutdown();
    }
}

fn scheduler_entry(state: Arc<ServerState>) {
    let max_batch = state.config.max_batch;
    let max_delay = Duration::from_micros(state.config.max_delay_us);
    run_scheduler(
        &state.queue,
        &state.slot,
        &state.cache,
        max_batch,
        max_delay,
        || state.shutdown.load(Ordering::Acquire) || SIGNALLED.load(Ordering::Acquire),
        || tick_brownout(&state),
    );
}

/// Advances the load controller and publishes a transition everywhere an
/// operator can see it: labeled counters, the `serve.mode` gauge, the
/// request ring (as a synthetic `mode:<name>` record with a freshly
/// minted id, so ring replay stays ordered), and the progress log.
fn tick_brownout(state: &ServerState) {
    let Some(transition) = state.brownout.maybe_tick() else { return };
    mode_transition_counter(transition.to.name()).inc(1);
    edge_obs::gauge!("serve.mode").set(transition.to as u8 as f64);
    let endpoint: &'static str = match transition.to {
        Mode::Full => "mode:full",
        Mode::CacheOnly => "mode:cache_only",
        Mode::PriorOnly => "mode:prior_only",
        Mode::Shed => "mode:shed",
    };
    state.ring.push(RequestRecord {
        id: edge_obs::trace::next_request_id(),
        endpoint,
        status: 0,
        batch: transition.from as u8 as u32,
        cache_hits: 0,
        stage_us: [0; N_STAGES],
        total_us: 0,
    });
    edge_obs::progress!(
        "edge-serve: brownout {} -> {}",
        transition.from.name(),
        transition.to.name()
    );
}

fn accept_loop(listener: TcpListener, state: Arc<ServerState>) {
    loop {
        if state.shutdown.load(Ordering::Acquire) || SIGNALLED.load(Ordering::Acquire) {
            state.shutdown.store(true, Ordering::Release);
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                edge_obs::counter!("serve.connections").inc(1);
                // Fault hook on the accept path: an injected error drops
                // the connection before any request is read.
                if edge_faults::enabled() && edge_faults::check("serve.accept").is_err() {
                    edge_obs::counter!("serve.accept.failures").inc(1);
                    drop(stream);
                    continue;
                }
                let state = Arc::clone(&state);
                state.active_connections.fetch_add(1, Ordering::AcqRel);
                let result =
                    std::thread::Builder::new().name("edge-serve-conn".into()).spawn(move || {
                        connection_loop(stream, &state);
                        state.active_connections.fetch_sub(1, Ordering::AcqRel);
                    });
                if result.is_err() {
                    edge_obs::counter!("serve.accept.failures").inc(1);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    // Drain: wait for in-flight connections and queued work, bounded.
    let deadline = Instant::now() + DRAIN_TIMEOUT;
    while (state.active_connections.load(Ordering::Acquire) > 0 || state.queue.depth() > 0)
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn connection_loop(stream: TcpStream, state: &ServerState) {
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    if state.config.write_timeout_us > 0 {
        // A stalled reader (full send buffer, client not draining) errors
        // the write instead of pinning this thread forever.
        let _ =
            stream.set_write_timeout(Some(Duration::from_micros(state.config.write_timeout_us)));
    }
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let draining = state.shutdown.load(Ordering::Acquire) || SIGNALLED.load(Ordering::Acquire);
        match read_request(&mut reader, &state.read_limits) {
            Ok(ReadOutcome::Request(req)) => {
                let keep_alive = req.keep_alive && !draining;
                if handle_request(&req, &mut writer, keep_alive, state).is_err() {
                    return;
                }
                if !keep_alive {
                    return;
                }
            }
            Ok(ReadOutcome::Idle) => {
                if draining {
                    return;
                }
            }
            Ok(ReadOutcome::TooLarge) => {
                // The oversize body was never read, so framing is gone:
                // answer 413 and close.
                edge_obs::counter!("serve.body.too_large").inc(1);
                request_counter("other", 413).inc(1);
                let body = simple_object(&[("error", "payload_too_large")]);
                let _ =
                    write_response_with(&mut writer, 413, "application/json", &[], &body, false);
                return;
            }
            Ok(ReadOutcome::Closed) => return,
            Err(e) => {
                match e.kind() {
                    std::io::ErrorKind::TimedOut => {
                        // Slow-loris: the request never finished arriving
                        // within the read budget.
                        edge_obs::counter!("serve.read.timeouts").inc(1);
                    }
                    std::io::ErrorKind::InvalidData => {
                        // Torn/garbage framing still gets a typed status
                        // before the connection drops.
                        let body = simple_object(&[("error", "bad_request")]);
                        let _ = write_response_with(
                            &mut writer,
                            400,
                            "application/json",
                            &[],
                            &body,
                            false,
                        );
                    }
                    _ => {}
                }
                return;
            }
        }
    }
}

/// Tracks the response status and stamps `X-Request-Id` on every write.
struct Responder<'a, W: Write> {
    writer: &'a mut W,
    keep_alive: bool,
    request_id: &'a str,
    status: u16,
}

impl<W: Write> Responder<'_, W> {
    fn send(&mut self, status: u16, content_type: &str, body: &[u8]) -> std::io::Result<()> {
        self.send_with(status, content_type, &[], body)
    }

    /// [`Responder::send`] with extra response headers (`Retry-After`).
    fn send_with(
        &mut self,
        status: u16,
        content_type: &str,
        extra_headers: &[(&str, &str)],
        body: &[u8],
    ) -> std::io::Result<()> {
        self.status = status;
        let mut headers = Vec::with_capacity(extra_headers.len() + 1);
        headers.push(("X-Request-Id", self.request_id));
        headers.extend_from_slice(extra_headers);
        write_response_with(self.writer, status, content_type, &headers, body, self.keep_alive)
    }
}

/// What the predict handler learned about its request, for the debug
/// ring and the labeled stage histograms.
#[derive(Default)]
struct PredictStats {
    stage_us: [u64; N_STAGES],
    batch: u32,
    cache_hits: u32,
}

fn handle_request(
    req: &Request,
    writer: &mut impl Write,
    keep_alive: bool,
    state: &ServerState,
) -> std::io::Result<()> {
    let started = Instant::now();
    // Every request gets a fresh id; spans opened anywhere below (this
    // thread, the scheduler, the worker pool) carry it, and the response
    // echoes the client's X-Request-Id when it sent one.
    let request_id = edge_obs::trace::next_request_id();
    let _scope = edge_obs::trace::request_scope(request_id);
    let minted = format!("req-{request_id}");
    let header_id = req.request_id.as_deref().unwrap_or(&minted);
    let endpoint: &'static str = match req.path.as_str() {
        "/predict" => "predict",
        "/healthz" => "healthz",
        "/metrics" => "metrics",
        "/reload" => "reload",
        "/debug/requests" => "debug_requests",
        _ => "other",
    };
    let mut rsp = Responder { writer, keep_alive, request_id: header_id, status: 0 };
    let mut stats = PredictStats::default();

    // The request's budget: the client's X-Deadline-Us when sent, the
    // server default otherwise. Minted here, threaded through admission,
    // flush, inference, and the final wait.
    let deadline = Deadline::resolve(req.deadline_us, state.config.default_deadline_us);

    let root = edge_obs::span("serve.request");
    let result = match (req.method.as_str(), endpoint) {
        ("POST", "predict") => handle_predict(req, &mut rsp, state, &mut stats, deadline),
        ("GET", "healthz") => handle_healthz(&mut rsp, state),
        ("GET", "metrics") => handle_metrics(&mut rsp, state),
        ("GET", "debug_requests") => handle_debug_requests(req, &mut rsp, state),
        ("POST", "reload") => handle_reload(req, &mut rsp, state),
        (_, "other") => {
            rsp.send(404, "application/json", &simple_object(&[("error", "not_found")]))
        }
        _ => rsp.send(405, "application/json", &simple_object(&[("error", "method_not_allowed")])),
    };
    drop(root);

    let total_us = started.elapsed().as_micros() as u64;
    edge_obs::counter!("serve.requests").inc(1);
    edge_obs::histogram!("serve.request.us").record(total_us as f64);
    request_counter(endpoint, rsp.status).inc(1);
    for (i, &us) in stats.stage_us.iter().enumerate() {
        if us > 0 {
            stage_hists()[i].record(us as f64);
        }
    }
    if endpoint == "predict" && rsp.status != 0 {
        match rsp.status {
            // Queue sheds count against both the alerting tracker and the
            // brownout controller.
            429 => {
                state.slo.record_shed();
                state.brownout.record_shed();
            }
            // Brownout rejections: honest shed reporting in /healthz, but
            // never fed back into the controller (a mode must not sustain
            // itself on the load it sheds).
            503 => state.slo.record_shed(),
            _ => {
                state.slo.record(total_us);
                state.brownout.record(total_us);
            }
        }
    }
    let record = RequestRecord {
        id: request_id,
        endpoint,
        status: rsp.status,
        batch: stats.batch,
        cache_hits: stats.cache_hits,
        stage_us: stats.stage_us,
        total_us,
    };
    state.ring.push(record);
    if state.config.slow_request_us > 0 && total_us >= state.config.slow_request_us {
        edge_obs::progress!("{}", record.to_json());
    }
    // Advance the load controller after the ring push so a transition
    // record minted now carries an id above this request's.
    tick_brownout(state);
    result
}

/// Rejects a predict with `503 + Retry-After` because of the brownout
/// mode (Shed, or a cache miss under CacheOnly).
fn reject_browned_out<W: Write>(
    rsp: &mut Responder<'_, W>,
    state: &ServerState,
    mode: Mode,
) -> std::io::Result<()> {
    mode_rejection_counter(mode.name()).inc(1);
    let retry = state.config.retry_after_secs.to_string();
    let body = simple_object(&[("error", "browned_out"), ("mode", mode.name())]);
    rsp.send_with(503, "application/json", &[("Retry-After", &retry)], &body)
}

fn handle_predict<W: Write>(
    req: &Request,
    rsp: &mut Responder<'_, W>,
    state: &ServerState,
    stats: &mut PredictStats,
    deadline: Deadline,
) -> std::io::Result<()> {
    // Shed mode rejects before spending anything on the body.
    let mode = state.brownout.mode();
    if mode == Mode::Shed {
        return reject_browned_out(rsp, state, mode);
    }
    // Capture the request's root context before the parse span opens:
    // queue/batch/inference stages are siblings of parse under the root,
    // not children of it.
    let ctx = edge_obs::trace::current_context();
    // The parse stage covers body parse, entity resolution, and cache
    // probes; it ends at admission, where queue time takes over.
    let parse_started = Instant::now();
    let parse_span = edge_obs::span("serve.stage.parse");
    let body = match parse_predict_body(&req.body) {
        Ok(b) => b,
        Err(msg) => {
            drop(parse_span);
            stats.stage_us[STAGE_PARSE] = parse_started.elapsed().as_micros() as u64;
            let body = simple_object(&[("error", "bad_request"), ("detail", &msg)]);
            return rsp.send(400, "application/json", &body);
        }
    };
    let fallback = body.fallback_prior.unwrap_or(state.config.fallback_prior);
    let (model, generation) = state.slot.get();
    edge_obs::counter!("serve.predict.texts").inc(body.texts.len() as u64);
    stats.batch = body.texts.len() as u32;

    // A request that arrived already out of budget is not worth resolving.
    if deadline.expired() {
        drop(parse_span);
        stats.stage_us[STAGE_PARSE] = parse_started.elapsed().as_micros() as u64;
        edge_obs::counter!("serve.deadline.expired").inc(1);
        return rsp.send(504, "application/json", &render_deadline_error());
    }

    // Resolve entities up front: abstentions answer immediately, cache
    // hits skip the queue, and only genuine model work is admitted.
    // Brownout modes decide what happens to a miss: CacheOnly rejects the
    // request, PriorOnly answers from the fallback prior Gaussian with a
    // `degraded` marker, Full admits it to the batch queue.
    let mut fragments: Vec<Option<Arc<Vec<u8>>>> = vec![None; body.texts.len()];
    let mut seeds: Vec<(usize, Vec<usize>)> = Vec::new();
    let mut degraded_prior: Option<Arc<Vec<u8>>> = None;
    for (i, text) in body.texts.iter().enumerate() {
        let entities = model.resolve_entities(text);
        if entities.is_empty() && !fallback {
            fragments[i] = Some(Arc::new(render_error(&edge_core::PredictError::NoEntities)));
            batch_path_counter(false).inc(1);
            continue;
        }
        let key = CacheKey { generation, entities: entities.clone(), fallback };
        if let Some(bytes) = state.cache.get(&key) {
            fragments[i] = Some(bytes);
            stats.cache_hits += 1;
            batch_path_counter(false).inc(1);
            continue;
        }
        match mode {
            Mode::CacheOnly | Mode::Shed => {
                drop(parse_span);
                stats.stage_us[STAGE_PARSE] = parse_started.elapsed().as_micros() as u64;
                return reject_browned_out(rsp, state, mode);
            }
            Mode::PriorOnly => {
                // Skip diffusion/attention entirely: one shared prior
                // answer per request, explicitly marked degraded.
                if degraded_prior.is_none() {
                    let opts = edge_core::PredictOptions::default().with_fallback_prior(true);
                    let result =
                        model.locate(&edge_core::PredictRequest::entities(Vec::new()), &opts);
                    degraded_prior = Some(Arc::new(match &result {
                        Ok(resp) => render_response_degraded(resp),
                        Err(err) => render_error(err),
                    }));
                }
                fragments[i] = Some(Arc::clone(degraded_prior.as_ref().expect("just filled")));
                edge_obs::counter!("serve.degraded.answers").inc(1);
                batch_path_counter(false).inc(1);
            }
            Mode::Full => {
                batch_path_counter(true).inc(1);
                seeds.push((i, entities));
            }
        }
    }
    drop(model);

    if !seeds.is_empty() {
        let stages = Arc::new(StageCells::default());
        // The parse stage ends here, at admission: job construction and
        // the submit itself contend on the queue mutex (the scheduler
        // holds it to evict expired jobs), and that wait is queue time.
        // Ending parse first keeps the stages disjoint, so their sum
        // never exceeds the request's end-to-end latency.
        drop(parse_span);
        stats.stage_us[STAGE_PARSE] = parse_started.elapsed().as_micros() as u64;
        let submitted = Instant::now();
        let pending = Arc::new(Pending::new(seeds.len()));
        let jobs: Vec<Job> = seeds
            .iter()
            .enumerate()
            .map(|(k, (i, entities))| Job {
                entities: entities.clone(),
                generation,
                text: body.texts[*i].clone(),
                fallback,
                pending: Arc::clone(&pending),
                index: k,
                ctx,
                submitted,
                stages: Arc::clone(&stages),
                deadline,
            })
            .collect();
        if !state.queue.try_submit(jobs) {
            edge_obs::counter!("serve.shed").inc(1);
            let body = simple_object(&[("error", "overloaded")]);
            let retry = state.config.retry_after_secs.to_string();
            return rsp.send_with(429, "application/json", &[("Retry-After", &retry)], &body);
        }
        // Wait no longer than the request's own budget: a bounded request
        // answers 504 the moment its budget is gone, not at the generic
        // scheduler-wedge timeout.
        let wait_limit = match deadline.remaining() {
            Some(remaining) => remaining.min(PREDICT_TIMEOUT),
            None => PREDICT_TIMEOUT,
        };
        let results = pending.wait(wait_limit);
        if deadline.expired() {
            edge_obs::counter!("serve.deadline.expired").inc(1);
            return rsp.send(504, "application/json", &render_deadline_error());
        }
        let Some(results) = results else {
            let body = simple_object(&[("error", "timeout")]);
            return rsp.send(500, "application/json", &body);
        };
        // Queue eviction resolves a job to the deadline fragment; a
        // request holding one is answered 504 as a whole, matching the
        // typed contract regardless of which stage gave up first.
        if results.iter().any(|b| b.as_slice() == render_deadline_error().as_slice()) {
            return rsp.send(504, "application/json", &render_deadline_error());
        }
        for ((i, _), bytes) in seeds.iter().zip(results) {
            fragments[*i] = Some(bytes);
        }
        let (queue_us, batch_us, inference_us) = stages.load();
        stats.stage_us[STAGE_QUEUE] = queue_us;
        stats.stage_us[STAGE_BATCH] = batch_us;
        stats.stage_us[STAGE_INFERENCE] = inference_us;
    } else {
        drop(parse_span);
        stats.stage_us[STAGE_PARSE] = parse_started.elapsed().as_micros() as u64;
    }

    // Serialize: fragments → bytes on the wire. A bare object for the
    // single shape, an envelope for batch.
    let serialize_started = Instant::now();
    let serialize_span = edge_obs::span("serve.stage.serialize");
    let mut out: Vec<u8> = Vec::with_capacity(64 * fragments.len());
    if body.single {
        out.extend_from_slice(&fragments[0].take().expect("filled"));
    } else {
        out.extend_from_slice(b"{\"results\":[");
        for (i, frag) in fragments.iter().enumerate() {
            if i > 0 {
                out.push(b',');
            }
            out.extend_from_slice(frag.as_ref().expect("filled"));
        }
        out.extend_from_slice(b"]}");
    }
    let result = rsp.send(200, "application/json", &out);
    drop(serialize_span);
    stats.stage_us[STAGE_SERIALIZE] = serialize_started.elapsed().as_micros() as u64;
    result
}

fn handle_healthz<W: Write>(
    rsp: &mut Responder<'_, W>,
    state: &ServerState,
) -> std::io::Result<()> {
    let slo = state.slo.status();
    let generation = state.slot.generation().to_string();
    let status = if slo.degraded { "degraded" } else { "ok" };
    let budget = format!("{:.4}", slo.budget_remaining);
    let burn = format!("{:.4}", slo.burn_rate);
    let shed = format!("{:.4}", slo.shed_rate);
    let body = simple_object(&[
        ("status", status),
        ("model", "EDGE"),
        ("generation", &generation),
        ("mode", state.brownout.mode().name()),
        ("slo_budget_remaining", &budget),
        ("slo_burn_rate", &burn),
        ("slo_shed_rate", &shed),
    ]);
    rsp.send(200, "application/json", &body)
}

fn handle_metrics<W: Write>(
    rsp: &mut Responder<'_, W>,
    state: &ServerState,
) -> std::io::Result<()> {
    // Point-in-time gauges are refreshed at scrape so the exposition is
    // self-contained (these replace the old ad-hoc `serve.cache.stats`
    // trailer line).
    let (hits, misses) = state.cache.stats();
    edge_obs::gauge!("serve.cache.stats.hits").set(hits as f64);
    edge_obs::gauge!("serve.cache.stats.misses").set(misses as f64);
    edge_obs::gauge!("serve.queue.depth").set(state.queue.depth() as f64);
    let slo = state.slo.status();
    edge_obs::gauge!("serve.slo.burn.rate").set(slo.burn_rate);
    edge_obs::gauge!("serve.slo.budget.remaining").set(slo.budget_remaining);
    edge_obs::gauge!("serve.slo.shed.rate").set(slo.shed_rate);
    edge_obs::gauge!("serve.slo.degraded").set(if slo.degraded { 1.0 } else { 0.0 });
    edge_obs::gauge!("serve.mode").set(state.brownout.mode() as u8 as f64);
    let text = edge_obs::openmetrics::render(&edge_obs::metrics::snapshot());
    rsp.send(200, edge_obs::openmetrics::CONTENT_TYPE, text.as_bytes())
}

fn handle_debug_requests<W: Write>(
    req: &Request,
    rsp: &mut Responder<'_, W>,
    state: &ServerState,
) -> std::io::Result<()> {
    let n = req.query_param("n").and_then(|v| v.parse().ok()).unwrap_or(64usize);
    let records = state.ring.recent(n);
    let mut body = String::from("{\"requests\":[");
    for (i, record) in records.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&record.to_json());
    }
    body.push_str("]}");
    rsp.send(200, "application/json", body.as_bytes())
}

fn handle_reload<W: Write>(
    req: &Request,
    rsp: &mut Responder<'_, W>,
    state: &ServerState,
) -> std::io::Result<()> {
    let path = std::str::from_utf8(&req.body)
        .ok()
        .and_then(|s| serde_json::from_str::<serde_json::Value>(s).ok())
        .and_then(|v| v.get("path").and_then(|p| p.as_str().map(str::to_string)));
    let Some(path) = path else {
        let body = simple_object(&[("error", "bad_request"), ("detail", "body needs a \"path\"")]);
        return rsp.send(400, "application/json", &body);
    };
    // A corrupt-artifact storm (checksum/deserialize failures in a row)
    // opens the breaker: further attempts are refused outright until the
    // cooldown lapses, protecting the serving path from reload churn.
    if let Err(retry_after) = state.reload_breaker.check() {
        edge_obs::counter!("serve.reload.breaker.rejected").inc(1);
        let retry = retry_after.to_string();
        let body = simple_object(&[
            ("error", "circuit_open"),
            ("detail", "reload breaker open after repeated failures"),
        ]);
        return rsp.send_with(503, "application/json", &[("Retry-After", &retry)], &body);
    }
    match state.slot.reload_from(&path) {
        Ok(generation) => {
            state.reload_breaker.record_success();
            // Entries keyed under older generations can never be returned
            // (the key carries the generation); clearing reclaims memory.
            state.cache.clear();
            edge_obs::counter!("serve.reloads").inc(1);
            edge_obs::progress!("edge-serve: reloaded {path} as generation {generation}");
            let generation = generation.to_string();
            let body = simple_object(&[("status", "ok"), ("generation", &generation)]);
            rsp.send(200, "application/json", &body)
        }
        Err(msg) => {
            state.reload_breaker.record_failure();
            edge_obs::counter!("serve.reload.failures").inc(1);
            let body = simple_object(&[("error", "reload_rejected"), ("detail", &msg)]);
            rsp.send(422, "application/json", &body)
        }
    }
}
