//! The HTTP server: accept loop, routing, admission, hot reload, and
//! graceful drain.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use edge_core::EdgeModel;

use crate::batch::{run_scheduler, BatchQueue, Job, Pending};
use crate::cache::{CacheKey, ResponseCache};
use crate::config::ServeConfig;
use crate::http::{read_request, write_response, ReadOutcome, Request};
use crate::json::{parse_predict_body, render_error, simple_object};
use crate::slot::ModelSlot;

/// How long a handler waits for the scheduler before giving up with 500.
const PREDICT_TIMEOUT: Duration = Duration::from_secs(60);
/// Read timeout on idle keep-alive connections, so they observe drain.
const IDLE_POLL: Duration = Duration::from_millis(100);
/// How long shutdown waits for in-flight work before force-exiting.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(5);

/// Process-wide flag set by SIGTERM/SIGINT when `handle_signals` is on.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    SIGNALLED.store(true, Ordering::Release);
}

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: *const ()) -> *const ();
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal as extern "C" fn(i32) as *const ());
        signal(SIGINT, on_signal as extern "C" fn(i32) as *const ());
    }
}

/// Everything the connection handlers share.
struct ServerState {
    config: ServeConfig,
    slot: ModelSlot,
    queue: BatchQueue,
    cache: ResponseCache,
    shutdown: AtomicBool,
    active_connections: AtomicUsize,
}

/// A running inference server. Dropping the handle does *not* stop it;
/// call [`Server::shutdown`] (or send SIGTERM with `handle_signals`).
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept_thread: Option<JoinHandle<()>>,
    scheduler_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the accept loop and the batching scheduler, and
    /// returns once the socket is listening.
    pub fn start(model: EdgeModel, config: ServeConfig) -> Result<Server, String> {
        config.validate()?;
        edge_obs::set_metrics_enabled(true);
        if config.handle_signals {
            #[cfg(unix)]
            install_signal_handlers();
        }
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("bind {}: {e}", config.addr))?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;
        listener.set_nonblocking(true).map_err(|e| e.to_string())?;

        let state = Arc::new(ServerState {
            cache: ResponseCache::new(config.cache_capacity, config.cache_shards),
            queue: BatchQueue::new(config.queue_capacity),
            slot: ModelSlot::new(model),
            shutdown: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
            config,
        });

        let scheduler_thread = {
            let state = Arc::clone(&state);
            // The scheduler borrows pieces of the shared state; re-wrap
            // them as Arcs pointing into dedicated clones would be wrong —
            // instead pass closures over the one state Arc.
            std::thread::Builder::new()
                .name("edge-serve-sched".into())
                .spawn(move || {
                    scheduler_entry(state);
                })
                .map_err(|e| e.to_string())?
        };
        let accept_thread = {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("edge-serve-accept".into())
                .spawn(move || accept_loop(listener, state))
                .map_err(|e| e.to_string())?
        };
        Ok(Server {
            addr,
            state,
            accept_thread: Some(accept_thread),
            scheduler_thread: Some(scheduler_thread),
        })
    }

    /// Loads the model from a saved artifact, then starts.
    pub fn start_from_artifact(path: &str, config: ServeConfig) -> Result<Server, String> {
        let model = EdgeModel::load(path).map_err(|e| format!("loading {path}: {e}"))?;
        Server::start(model, config)
    }

    /// The actually bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current model generation.
    pub fn generation(&self) -> u64 {
        self.state.slot.generation()
    }

    /// Lifetime cache (hits, misses).
    pub fn cache_stats(&self) -> (u64, u64) {
        self.state.cache.stats()
    }

    /// Jobs currently waiting in the batching queue.
    pub fn queue_depth(&self) -> usize {
        self.state.queue.depth()
    }

    /// Requests a graceful drain and blocks until the accept loop and
    /// scheduler exit (bounded by the drain timeout).
    pub fn shutdown(mut self) {
        self.state.shutdown.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.scheduler_thread.take() {
            let _ = t.join();
        }
    }

    /// Blocks until a signal (or programmatic shutdown) stops the server.
    /// The CLI's foreground mode.
    pub fn wait(self) {
        while !self.state.shutdown.load(Ordering::Acquire) && !SIGNALLED.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(50));
        }
        edge_obs::progress!("edge-serve: draining ({} in flight)", self.state.queue.depth());
        self.shutdown();
    }
}

fn scheduler_entry(state: Arc<ServerState>) {
    let max_batch = state.config.max_batch;
    let max_delay = Duration::from_micros(state.config.max_delay_us);
    run_scheduler(&state.queue, &state.slot, &state.cache, max_batch, max_delay, || {
        state.shutdown.load(Ordering::Acquire) || SIGNALLED.load(Ordering::Acquire)
    });
}

fn accept_loop(listener: TcpListener, state: Arc<ServerState>) {
    loop {
        if state.shutdown.load(Ordering::Acquire) || SIGNALLED.load(Ordering::Acquire) {
            state.shutdown.store(true, Ordering::Release);
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                edge_obs::counter!("serve.connections").inc(1);
                // Fault hook on the accept path: an injected error drops
                // the connection before any request is read.
                if edge_faults::enabled() && edge_faults::check("serve.accept").is_err() {
                    edge_obs::counter!("serve.accept.failures").inc(1);
                    drop(stream);
                    continue;
                }
                let state = Arc::clone(&state);
                state.active_connections.fetch_add(1, Ordering::AcqRel);
                let result =
                    std::thread::Builder::new().name("edge-serve-conn".into()).spawn(move || {
                        connection_loop(stream, &state);
                        state.active_connections.fetch_sub(1, Ordering::AcqRel);
                    });
                if result.is_err() {
                    edge_obs::counter!("serve.accept.failures").inc(1);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    // Drain: wait for in-flight connections and queued work, bounded.
    let deadline = Instant::now() + DRAIN_TIMEOUT;
    while (state.active_connections.load(Ordering::Acquire) > 0 || state.queue.depth() > 0)
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn connection_loop(stream: TcpStream, state: &ServerState) {
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let draining = state.shutdown.load(Ordering::Acquire) || SIGNALLED.load(Ordering::Acquire);
        match read_request(&mut reader) {
            Ok(ReadOutcome::Request(req)) => {
                let keep_alive = req.keep_alive && !draining;
                if handle_request(&req, &mut writer, keep_alive, state).is_err() {
                    return;
                }
                if !keep_alive {
                    return;
                }
            }
            Ok(ReadOutcome::Idle) => {
                if draining {
                    return;
                }
            }
            Ok(ReadOutcome::Closed) | Err(_) => return,
        }
    }
}

fn handle_request(
    req: &Request,
    writer: &mut impl Write,
    keep_alive: bool,
    state: &ServerState,
) -> std::io::Result<()> {
    let started = Instant::now();
    edge_obs::counter!("serve.requests").inc(1);
    let result = match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/predict") => handle_predict(req, writer, keep_alive, state),
        ("GET", "/healthz") => {
            let generation = state.slot.generation().to_string();
            let body =
                simple_object(&[("status", "ok"), ("model", "EDGE"), ("generation", &generation)]);
            write_response(writer, 200, "application/json", &body, keep_alive)
        }
        ("GET", "/metrics") => {
            let mut text = edge_obs::metrics::snapshot().render();
            let (hits, misses) = state.cache.stats();
            text.push_str(&format!(
                "serve.cache.stats hits={hits} misses={misses} queue_depth={}\n",
                state.queue.depth()
            ));
            write_response(writer, 200, "text/plain", text.as_bytes(), keep_alive)
        }
        ("POST", "/reload") => handle_reload(req, writer, keep_alive, state),
        (_, "/predict") | (_, "/reload") | (_, "/healthz") | (_, "/metrics") => {
            let body = simple_object(&[("error", "method_not_allowed")]);
            write_response(writer, 405, "application/json", &body, keep_alive)
        }
        _ => {
            let body = simple_object(&[("error", "not_found")]);
            write_response(writer, 404, "application/json", &body, keep_alive)
        }
    };
    edge_obs::histogram!("serve.request.us").record(started.elapsed().as_micros() as f64);
    result
}

fn handle_predict(
    req: &Request,
    writer: &mut impl Write,
    keep_alive: bool,
    state: &ServerState,
) -> std::io::Result<()> {
    let body = match parse_predict_body(&req.body) {
        Ok(b) => b,
        Err(msg) => {
            let body = simple_object(&[("error", "bad_request"), ("detail", &msg)]);
            return write_response(writer, 400, "application/json", &body, keep_alive);
        }
    };
    let fallback = body.fallback_prior.unwrap_or(state.config.fallback_prior);
    let (model, generation) = state.slot.get();
    edge_obs::counter!("serve.predict.texts").inc(body.texts.len() as u64);

    // Resolve entities up front: abstentions answer immediately, cache
    // hits skip the queue, and only genuine model work is admitted.
    let mut fragments: Vec<Option<Arc<Vec<u8>>>> = vec![None; body.texts.len()];
    let mut seeds: Vec<(usize, Vec<usize>)> = Vec::new();
    for (i, text) in body.texts.iter().enumerate() {
        let entities = model.resolve_entities(text);
        if entities.is_empty() && !fallback {
            fragments[i] = Some(Arc::new(render_error(&edge_core::PredictError::NoEntities)));
            continue;
        }
        let key = CacheKey { generation, entities: entities.clone(), fallback };
        if let Some(bytes) = state.cache.get(&key) {
            fragments[i] = Some(bytes);
            continue;
        }
        seeds.push((i, entities));
    }
    drop(model);

    if !seeds.is_empty() {
        let pending = Arc::new(Pending::new(seeds.len()));
        let jobs: Vec<Job> = seeds
            .iter()
            .enumerate()
            .map(|(k, (i, entities))| Job {
                entities: entities.clone(),
                generation,
                text: body.texts[*i].clone(),
                fallback,
                pending: Arc::clone(&pending),
                index: k,
            })
            .collect();
        if !state.queue.try_submit(jobs) {
            edge_obs::counter!("serve.shed").inc(1);
            let body = simple_object(&[("error", "overloaded")]);
            return write_response(writer, 429, "application/json", &body, keep_alive);
        }
        let Some(results) = pending.wait(PREDICT_TIMEOUT) else {
            let body = simple_object(&[("error", "timeout")]);
            return write_response(writer, 500, "application/json", &body, keep_alive);
        };
        for ((i, _), bytes) in seeds.iter().zip(results) {
            fragments[*i] = Some(bytes);
        }
    }

    // Assemble: a bare object for the single shape, an envelope for batch.
    let mut out: Vec<u8> = Vec::with_capacity(64 * fragments.len());
    if body.single {
        out.extend_from_slice(&fragments[0].take().expect("filled"));
    } else {
        out.extend_from_slice(b"{\"results\":[");
        for (i, frag) in fragments.iter().enumerate() {
            if i > 0 {
                out.push(b',');
            }
            out.extend_from_slice(frag.as_ref().expect("filled"));
        }
        out.extend_from_slice(b"]}");
    }
    write_response(writer, 200, "application/json", &out, keep_alive)
}

fn handle_reload(
    req: &Request,
    writer: &mut impl Write,
    keep_alive: bool,
    state: &ServerState,
) -> std::io::Result<()> {
    let path = std::str::from_utf8(&req.body)
        .ok()
        .and_then(|s| serde_json::from_str::<serde_json::Value>(s).ok())
        .and_then(|v| v.get("path").and_then(|p| p.as_str().map(str::to_string)));
    let Some(path) = path else {
        let body = simple_object(&[("error", "bad_request"), ("detail", "body needs a \"path\"")]);
        return write_response(writer, 400, "application/json", &body, keep_alive);
    };
    match state.slot.reload_from(&path) {
        Ok(generation) => {
            // Entries keyed under older generations can never be returned
            // (the key carries the generation); clearing reclaims memory.
            state.cache.clear();
            edge_obs::counter!("serve.reloads").inc(1);
            edge_obs::progress!("edge-serve: reloaded {path} as generation {generation}");
            let generation = generation.to_string();
            let body = simple_object(&[("status", "ok"), ("generation", &generation)]);
            write_response(writer, 200, "application/json", &body, keep_alive)
        }
        Err(msg) => {
            edge_obs::counter!("serve.reload.failures").inc(1);
            let body = simple_object(&[("error", "reload_rejected"), ("detail", &msg)]);
            write_response(writer, 422, "application/json", &body, keep_alive)
        }
    }
}
