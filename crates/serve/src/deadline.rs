//! Per-request deadline budgets.
//!
//! A [`Deadline`] is minted when the request line is parsed (from the
//! client's `X-Deadline-Us` header, falling back to the server's
//! `default_deadline_us`) and threaded through every stage: parse → queue
//! admission → batch flush → inference → serialize. Each stage consults
//! [`Deadline::expired`] and bails with a typed `DeadlineExceeded` (HTTP
//! 504) instead of doing work whose answer nobody is waiting for.

use std::time::{Duration, Instant};

/// An absolute expiry instant, or `None` for an unbounded request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline(Option<Instant>);

impl Deadline {
    /// No budget: the request may take as long as it takes.
    pub fn none() -> Self {
        Deadline(None)
    }

    /// A budget of `us` microseconds from now; `0` means unbounded (the
    /// CLI convention for "disable").
    pub fn after_us(us: u64) -> Self {
        if us == 0 {
            Deadline(None)
        } else {
            Deadline(Some(Instant::now() + Duration::from_micros(us)))
        }
    }

    /// The stricter of a client-supplied budget and the server default.
    pub fn resolve(client_us: Option<u64>, default_us: u64) -> Self {
        match client_us {
            Some(us) => Deadline::after_us(us),
            None => Deadline::after_us(default_us),
        }
    }

    /// True once the budget is spent.
    pub fn expired(&self) -> bool {
        matches!(self.0, Some(t) if Instant::now() >= t)
    }

    /// Time left, `None` when unbounded. Returns `Some(ZERO)` when
    /// already expired so callers can pass it to bounded waits directly.
    pub fn remaining(&self) -> Option<Duration> {
        self.0.map(|t| t.saturating_duration_since(Instant::now()))
    }

    /// The absolute expiry instant, if bounded.
    pub fn at(&self) -> Option<Instant> {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_none_are_unbounded() {
        assert_eq!(Deadline::after_us(0), Deadline::none());
        assert!(!Deadline::none().expired());
        assert_eq!(Deadline::none().remaining(), None);
        assert_eq!(Deadline::resolve(None, 0), Deadline::none());
    }

    #[test]
    fn tiny_budgets_expire() {
        let d = Deadline::after_us(1);
        std::thread::sleep(Duration::from_millis(2));
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_budgets_do_not() {
        let d = Deadline::after_us(60_000_000);
        assert!(!d.expired());
        assert!(d.remaining().unwrap() > Duration::from_secs(1));
    }

    #[test]
    fn client_header_wins_over_default() {
        let d = Deadline::resolve(Some(1), 60_000_000);
        std::thread::sleep(Duration::from_millis(2));
        assert!(d.expired(), "client's 1us budget applies, not the server default");
    }
}
