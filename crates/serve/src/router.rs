//! Model router: picks the metro-area shard that serves a tweet.
//!
//! Each shard is a full serving stack (model slot, micro-batch queue,
//! response-cache partition, SLO/brownout state) loaded from its own
//! artifact (`--model NAME=PATH`, repeatable). Routing is two-tier:
//!
//! 1. **Affinity.** A union recognizer (every shard's gazetteer merged)
//!    extracts the tweet's entity mentions once; each shard's affinity is
//!    how many of those mentions its *current* entity index knows. A
//!    unique argmax with positive affinity wins — a tweet about Broadway
//!    goes to the shard whose diffusion graph actually contains Broadway.
//! 2. **Consistent hash.** Ties (including the no-known-entity case)
//!    fall through to a vnode hash ring keyed on the sorted canonical
//!    mention ids (or the raw text when no mentions at all), so equal
//!    entity sets always land on the same shard and adding/removing a
//!    shard only remaps the keys that shard owns.
//!
//! With one shard the router short-circuits to shard 0 without touching
//! the recognizer, so the single-model path stays bit-and-cost-identical
//! to the pre-router server.

use edge_core::model::EdgeModel;
use edge_text::ner::EntityRecognizer;
use std::sync::Arc;

/// 64-bit FNV-1a with a splitmix64 finalizer. Stable and
/// dependency-free; the finalizer matters because ring placement is
/// ordered by the *high* bits, where raw FNV-1a avalanches poorly on
/// short, similar keys like `"nyma/0" .. "nyma/63"`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // splitmix64 finalizer: full-width avalanche.
    hash ^= hash >> 30;
    hash = hash.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    hash ^= hash >> 27;
    hash = hash.wrapping_mul(0x94d0_49bb_1331_11eb);
    hash ^ (hash >> 31)
}

/// A consistent-hash ring over shard names. Every shard contributes
/// `vnodes` points hashed from `"{name}/{v}"`, so a shard's points are a
/// pure function of its name — adding or removing a shard by name leaves
/// every other shard's points (and therefore key ownership) untouched.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, shard_index)` sorted by point.
    points: Vec<(u64, usize)>,
}

/// Vnodes per shard: enough to balance a handful of metro shards within
/// a few percent without bloating the binary search.
pub const DEFAULT_VNODES: usize = 64;

impl HashRing {
    pub fn new(names: &[String], vnodes: usize) -> HashRing {
        let mut points = Vec::with_capacity(names.len() * vnodes);
        for (idx, name) in names.iter().enumerate() {
            for v in 0..vnodes {
                points.push((fnv1a(format!("{name}/{v}").as_bytes()), idx));
            }
        }
        points.sort_unstable();
        HashRing { points }
    }

    /// The shard owning `key`: the first ring point at or after it,
    /// wrapping at the top.
    pub fn route(&self, key: u64) -> usize {
        let i = self.points.partition_point(|&(p, _)| p < key);
        self.points[i % self.points.len()].1
    }
}

/// The hash key for a resolved entity set: sorted canonical mention ids
/// joined with an unprintable separator. Equal sets hash equally no
/// matter the mention order in the tweet.
pub fn entity_set_key(mention_ids: &mut Vec<String>) -> u64 {
    mention_ids.sort_unstable();
    mention_ids.dedup();
    fnv1a(mention_ids.join("\u{1f}").as_bytes())
}

/// The routing half of the serving stack: shard names, the merged
/// recognizer, and the ring. Pure and immutable — the topology is fixed
/// at startup (consistent hashing is only useful if it is stable), while
/// per-shard affinity follows hot reloads because it consults each
/// shard's current entity index at request time.
pub struct Router {
    names: Vec<String>,
    ring: HashRing,
    /// `None` for a single shard: routing is skipped entirely.
    union: Option<EntityRecognizer>,
}

impl Router {
    /// Builds the router from the shards' startup models (names and
    /// models index-aligned).
    pub fn new(names: Vec<String>, models: &[Arc<EdgeModel>]) -> Router {
        let union = (names.len() > 1).then(|| {
            let mut merged = EntityRecognizer::new();
            for model in models {
                merged.merge(model.recognizer());
            }
            merged
        });
        let ring = HashRing::new(&names, DEFAULT_VNODES);
        Router { names, ring, union }
    }

    pub fn shard_count(&self) -> usize {
        self.names.len()
    }

    pub fn shard_names(&self) -> &[String] {
        &self.names
    }

    pub fn shard_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Routes one tweet given every shard's current model (fetched once
    /// per request by the caller, index-aligned with the shard list).
    pub fn route_text(&self, text: &str, models: &[Arc<EdgeModel>]) -> usize {
        let Some(union) = &self.union else { return 0 };
        let mentions = union.recognize(text);
        // Affinity: how many recognized mentions each shard's entity
        // index can actually serve.
        let mut best = 0usize;
        let mut best_count = 0usize;
        let mut tied = true;
        for (idx, model) in models.iter().enumerate() {
            let count =
                mentions.iter().filter(|m| model.entity_index().get(&m.id).is_some()).count();
            if count > best_count {
                best = idx;
                best_count = count;
                tied = false;
            } else if count == best_count && count > 0 {
                tied = true;
            }
        }
        if best_count > 0 && !tied {
            return best;
        }
        // Tie or no known entity: deterministic consistent hash.
        let key = if mentions.is_empty() {
            fnv1a(text.as_bytes())
        } else {
            let mut ids: Vec<String> = mentions.into_iter().map(|m| m.id).collect();
            entity_set_key(&mut ids)
        };
        self.ring.route(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn ring_routing_is_deterministic() {
        let ring = HashRing::new(&names(&["nyma", "lama", "covid"]), DEFAULT_VNODES);
        for k in 0..1000u64 {
            let key = fnv1a(&k.to_le_bytes());
            assert_eq!(ring.route(key), ring.route(key));
        }
    }

    #[test]
    fn ring_spreads_keys_roughly_evenly() {
        let ring = HashRing::new(&names(&["nyma", "lama", "covid"]), DEFAULT_VNODES);
        let mut counts = [0usize; 3];
        for k in 0..3000u64 {
            counts[ring.route(fnv1a(&k.to_le_bytes()))] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 300, "shard {i} starved: {counts:?}");
        }
    }

    /// Removing a shard remaps exactly the keys it owned; every key on a
    /// surviving shard stays put. (The ≤ K/n consistency property —
    /// removal moves only the removed shard's share.)
    #[test]
    fn removing_a_shard_remaps_only_its_own_keys() {
        let all = names(&["nyma", "lama", "covid", "chi"]);
        let kept = names(&["nyma", "lama", "chi"]); // drop "covid"
        let before = HashRing::new(&all, DEFAULT_VNODES);
        let after = HashRing::new(&kept, DEFAULT_VNODES);
        let mut moved = 0usize;
        let total = 4000u64;
        for k in 0..total {
            let key = fnv1a(&k.to_le_bytes());
            let owner_before = all[before.route(key)].clone();
            let owner_after = kept[after.route(key)].clone();
            if owner_before == "covid" {
                moved += 1; // had to move somewhere
            } else {
                assert_eq!(owner_before, owner_after, "surviving key moved: {k}");
            }
        }
        // The removed shard owned roughly K/n of the keyspace.
        assert!(moved > 0 && moved < total as usize / 2, "moved {moved} of {total}");
    }

    /// Adding a shard only steals keys for the new shard; no key moves
    /// between pre-existing shards.
    #[test]
    fn adding_a_shard_steals_at_most_its_share() {
        let old = names(&["nyma", "lama"]);
        let new = names(&["nyma", "lama", "covid"]);
        let before = HashRing::new(&old, DEFAULT_VNODES);
        let after = HashRing::new(&new, DEFAULT_VNODES);
        let total = 4000u64;
        let mut stolen = 0usize;
        for k in 0..total {
            let key = fnv1a(&k.to_le_bytes());
            let owner_before = old[before.route(key)].clone();
            let owner_after = new[after.route(key)].clone();
            if owner_after != owner_before {
                assert_eq!(owner_after, "covid", "key {k} moved between old shards");
                stolen += 1;
            }
        }
        // Expected share is K/n = 1/3; allow generous slack but require
        // the bound that matters: well under a full reshuffle.
        assert!(stolen > 0 && stolen < (total as usize * 6) / 10, "stolen {stolen}");
    }

    #[test]
    fn entity_set_key_ignores_order_and_duplicates() {
        let mut a = vec!["times_square".to_string(), "broadway".to_string()];
        let mut b =
            vec!["broadway".to_string(), "times_square".to_string(), "broadway".to_string()];
        assert_eq!(entity_set_key(&mut a), entity_set_key(&mut b));
        let mut c = vec!["broadway".to_string()];
        assert_ne!(entity_set_key(&mut a), entity_set_key(&mut c));
    }
}
