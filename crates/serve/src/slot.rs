//! The hot-reloadable model slot: an atomically swappable `Arc<EdgeModel>`
//! plus a generation counter that invalidates queued work and cached
//! responses from older models.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use edge_core::{inspect_artifact, ArtifactLoad, EdgeModel};

/// Holds the currently served model. Readers clone the `Arc` out from
/// under a plain `Mutex` — an uncontended lock is a few nanoseconds,
/// dwarfed by inference, and unlike a hand-rolled lock-free ArcSwap it
/// cannot leak or double-free under races. Swapping installs the new
/// model and bumps the generation; in-flight batches keep their old
/// `Arc` and finish on the model they started with.
pub struct ModelSlot {
    current: Mutex<Arc<EdgeModel>>,
    generation: AtomicU64,
}

impl ModelSlot {
    /// Wraps an already-loaded model as generation 1.
    pub fn new(model: EdgeModel) -> Self {
        Self { current: Mutex::new(Arc::new(model)), generation: AtomicU64::new(1) }
    }

    /// The current model and the generation it belongs to, taken under one
    /// lock so they cannot tear against a concurrent reload.
    pub fn get(&self) -> (Arc<EdgeModel>, u64) {
        let guard = self.current.lock().unwrap_or_else(|e| e.into_inner());
        let model = Arc::clone(&guard);
        let generation = self.generation.load(Ordering::Acquire);
        (model, generation)
    }

    /// The current generation (monotonically increasing from 1).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Atomically replaces the served model from a saved artifact.
    ///
    /// Verification happens *before* the swap: the container (magic,
    /// per-section CRC64 for mapped artifacts, envelope CRC64 for legacy
    /// ones) is checked by [`inspect_artifact`] and the payload by the
    /// loader, so a torn or corrupt artifact leaves the old model serving
    /// untouched. Returns the new generation.
    pub fn reload_from(&self, path: &str) -> Result<u64, String> {
        edge_faults::check("serve.reload").map_err(|e| e.to_string())?;
        inspect_artifact(path).map_err(|e| format!("artifact rejected: {e}"))?;
        let model =
            EdgeModel::load_artifact(path).map_err(|e| format!("artifact rejected: {e}"))?;
        let mut guard = self.current.lock().unwrap_or_else(|e| e.into_inner());
        *guard = Arc::new(model);
        // Release-store while still holding the lock: a reader that sees
        // the new generation is guaranteed to also see the new model.
        let generation = self.generation.load(Ordering::Acquire) + 1;
        self.generation.store(generation, Ordering::Release);
        Ok(generation)
    }
}
