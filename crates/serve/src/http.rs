//! A minimal HTTP/1.1 layer over `std::net` — just enough protocol for
//! the serving endpoints, with keep-alive and `Content-Length` framing.
//! No network crates: the build environment is offline and the request
//! shapes are fully under our control.
//!
//! Robustness posture: reads are bounded three ways. A per-request *read
//! budget* caps how long a started request may trickle in (slow-loris),
//! `max_body_bytes` caps buffering (memory exhaustion → typed 413), and a
//! header-count cap bounds header parsing. The budget is armed by the
//! first byte of a request, so an idle keep-alive connection can sit
//! forever while a half-sent request cannot.

use std::io::{self, BufRead, Write};
use std::time::{Duration, Instant};

/// Header-count cap so a hostile client cannot balloon memory.
const MAX_HEADERS: usize = 64;

/// Read-side limits for one request, owned by the connection loop.
#[derive(Debug, Clone, Copy)]
pub struct ReadLimits {
    /// Largest accepted request body; a bigger `Content-Length` yields
    /// [`ReadOutcome::TooLarge`] without buffering the body.
    pub max_body_bytes: usize,
    /// Total wall-clock budget for reading one request once its first
    /// byte arrives. Zero disables the bound (tests).
    pub read_budget: Duration,
}

impl Default for ReadLimits {
    fn default() -> Self {
        Self { max_body_bytes: 1 << 20, read_budget: Duration::from_secs(2) }
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// Path without query string.
    pub path: String,
    /// Query string after the `?` (empty when absent).
    pub query: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
    /// Client-supplied `X-Request-Id`, echoed back verbatim when present.
    pub request_id: Option<String>,
    /// Client-supplied `X-Deadline-Us` budget in microseconds, if any.
    pub deadline_us: Option<u64>,
}

impl Request {
    /// The value of `name` in the query string (`?n=32&flat`), if any.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .split('&')
            .filter_map(|pair| pair.split_once('='))
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v)
    }
}

/// What one read attempt on a keep-alive connection produced.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// Clean EOF before any bytes of a next request.
    Closed,
    /// The read timed out while *idle* (no request in flight) — the caller
    /// can poll its shutdown flag and try again without losing framing.
    Idle,
    /// The declared `Content-Length` exceeds `max_body_bytes`. The body
    /// was not read, so the caller must answer 413 and close.
    TooLarge,
}

fn is_block(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Arms the per-request budget on first use; errs once it is spent.
fn charge_budget(start: &mut Option<Instant>, limits: &ReadLimits) -> io::Result<()> {
    let started = *start.get_or_insert_with(Instant::now);
    if !limits.read_budget.is_zero() && started.elapsed() >= limits.read_budget {
        return Err(io::Error::new(io::ErrorKind::TimedOut, "request read budget exhausted"));
    }
    Ok(())
}

/// Line read that survives socket read timeouts and enforces the budget
/// chunk by chunk. Working on `fill_buf`/`consume` directly (instead of
/// `read_line`) matters: a drip feed that lands a byte inside every
/// socket poll interval never surfaces a `WouldBlock`, so the budget
/// must be charged on *partial progress*, not only on timeouts.
fn read_line_budgeted(
    reader: &mut impl BufRead,
    line: &mut String,
    start: &mut Option<Instant>,
    limits: &ReadLimits,
) -> io::Result<usize> {
    loop {
        let (used, done) = match reader.fill_buf() {
            Ok([]) => return Ok(line.len()),
            Ok(buf) => {
                if start.is_none() {
                    *start = Some(Instant::now());
                }
                match buf.iter().position(|&b| b == b'\n') {
                    Some(i) => {
                        line.push_str(&String::from_utf8_lossy(&buf[..=i]));
                        (i + 1, true)
                    }
                    None => {
                        line.push_str(&String::from_utf8_lossy(buf));
                        (buf.len(), false)
                    }
                }
            }
            Err(e) if is_block(&e) => {
                if start.is_none() {
                    // Nothing of this request has arrived: genuinely idle.
                    return Err(e);
                }
                charge_budget(start, limits)?;
                continue;
            }
            Err(e) => return Err(e),
        };
        reader.consume(used);
        if done {
            return Ok(line.len());
        }
        // Progress without a complete line still burns the budget — a
        // slow-loris dripping bytes must not outlive it.
        charge_budget(start, limits)?;
    }
}

/// Reads one HTTP/1.1 request. A timeout before any byte of the request
/// (idle keep-alive connection) is reported as [`ReadOutcome::Idle`]; once
/// the first byte arrives the whole request must land within the read
/// budget or the connection is dropped (`TimedOut`) — the slow-loris bound.
pub fn read_request(reader: &mut impl BufRead, limits: &ReadLimits) -> io::Result<ReadOutcome> {
    let mut start: Option<Instant> = None;
    let mut line = String::new();
    match read_line_budgeted(reader, &mut line, &mut start, limits) {
        Ok(0) => return Ok(ReadOutcome::Closed),
        Ok(_) => {}
        // Idle only when nothing arrived; a half-line past its budget is a
        // TimedOut error, not an idle poll.
        Err(e) if is_block(&e) && line.is_empty() => return Ok(ReadOutcome::Idle),
        Err(e) => return Err(e),
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("").to_string();
    if method.is_empty() || target.is_empty() {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "malformed request line"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target, String::new()),
    };

    let mut content_length = 0usize;
    let mut keep_alive = true; // HTTP/1.1 default
    let mut request_id = None;
    let mut deadline_us = None;
    for _ in 0..MAX_HEADERS {
        let mut header = String::new();
        if read_line_budgeted(reader, &mut header, &mut start, limits)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "eof in headers"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else { continue };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad content-length"))?;
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        } else if name.eq_ignore_ascii_case("x-request-id") && !value.is_empty() {
            request_id = Some(value.to_string());
        } else if name.eq_ignore_ascii_case("x-deadline-us") {
            deadline_us = Some(value.parse().map_err(|_| {
                io::Error::new(io::ErrorKind::InvalidData, "bad x-deadline-us header")
            })?);
        }
    }
    if content_length > limits.max_body_bytes {
        return Ok(ReadOutcome::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    let mut filled = 0usize;
    while filled < content_length {
        match io::Read::read(reader, &mut body[filled..]) {
            Ok(0) => return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "eof in body")),
            Ok(n) => {
                filled += n;
                // Same drip-feed rule as the line reader: partial body
                // progress burns the budget too.
                if filled < content_length {
                    charge_budget(&mut start, limits)?;
                }
            }
            Err(e) if is_block(&e) => charge_budget(&mut start, limits)?,
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Request(Request {
        method,
        path,
        query,
        body,
        keep_alive,
        request_id,
        deadline_us,
    }))
}

/// What [`parse_buffered`] found at the front of a connection's read
/// buffer. The event loop calls it after every read edge; `Partial` just
/// means "wait for more bytes".
#[derive(Debug)]
pub enum ParseStatus {
    /// The buffer does not yet hold one complete request.
    Partial,
    /// One complete request; `consumed` bytes belong to it (the rest of
    /// the buffer is the next pipelined request).
    Complete { req: Request, consumed: usize },
    /// Declared `Content-Length` exceeds `max_body_bytes` — answer 413
    /// and close without waiting for the body.
    TooLarge,
    /// Malformed framing (bad request line, bad `Content-Length`, bad
    /// `X-Deadline-Us`) — answer 400 and close.
    Bad(&'static str),
}

/// Parses one request from the front of `buf` without consuming it — the
/// non-blocking twin of [`read_request`], for event-loop connections that
/// accumulate bytes across read edges. Same grammar, same quirks (header
/// cap breaks to the body, colon-less header lines are skipped), same
/// error strings, so blocking and buffered paths answer identically.
pub fn parse_buffered(buf: &[u8], limits: &ReadLimits) -> ParseStatus {
    let mut pos = 0usize;
    let Some(line_end) = find_line(buf, pos) else {
        return ParseStatus::Partial;
    };
    let line = String::from_utf8_lossy(&buf[pos..line_end]);
    pos = line_end + 1;
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("").to_string();
    if method.is_empty() || target.is_empty() {
        return ParseStatus::Bad("malformed request line");
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target, String::new()),
    };

    let mut content_length = 0usize;
    let mut keep_alive = true; // HTTP/1.1 default
    let mut request_id = None;
    let mut deadline_us = None;
    for _ in 0..MAX_HEADERS {
        let Some(line_end) = find_line(buf, pos) else {
            return ParseStatus::Partial;
        };
        let header = String::from_utf8_lossy(&buf[pos..line_end]);
        pos = line_end + 1;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else { continue };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = match value.parse() {
                Ok(n) => n,
                Err(_) => return ParseStatus::Bad("bad content-length"),
            };
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        } else if name.eq_ignore_ascii_case("x-request-id") && !value.is_empty() {
            request_id = Some(value.to_string());
        } else if name.eq_ignore_ascii_case("x-deadline-us") {
            deadline_us = match value.parse() {
                Ok(n) => Some(n),
                Err(_) => return ParseStatus::Bad("bad x-deadline-us header"),
            };
        }
    }
    if content_length > limits.max_body_bytes {
        return ParseStatus::TooLarge;
    }
    if buf.len() < pos + content_length {
        return ParseStatus::Partial;
    }
    let body = buf[pos..pos + content_length].to_vec();
    ParseStatus::Complete {
        req: Request { method, path, query, body, keep_alive, request_id, deadline_us },
        consumed: pos + content_length,
    }
}

/// Index of the `\n` ending the line that starts at `from`, if buffered.
fn find_line(buf: &[u8], from: usize) -> Option<usize> {
    buf[from..].iter().position(|&b| b == b'\n').map(|i| from + i)
}

/// Writes one response with `Content-Length` framing.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    write_response_with(stream, status, content_type, &[], body, keep_alive)
}

/// [`write_response`] with extra headers (e.g. `X-Request-Id`) ahead of
/// the body.
pub fn write_response_with(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    };
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
        body.len()
    )?;
    for (name, value) in extra_headers {
        write!(stream, "{name}: {value}\r\n")?;
    }
    stream.write_all(b"\r\n")?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn limits() -> ReadLimits {
        ReadLimits::default()
    }

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /predict HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let mut r = BufReader::new(&raw[..]);
        let ReadOutcome::Request(req) = read_request(&mut r, &limits()).unwrap() else {
            panic!("expected a request")
        };
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/predict");
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive);
        assert_eq!(req.deadline_us, None);
    }

    #[test]
    fn connection_close_and_query_strings() {
        let raw = b"GET /healthz?v=1 HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut r = BufReader::new(&raw[..]);
        let ReadOutcome::Request(req) = read_request(&mut r, &limits()).unwrap() else {
            panic!("expected a request")
        };
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.query, "v=1");
        assert_eq!(req.query_param("v"), Some("1"));
        assert_eq!(req.query_param("n"), None);
        assert!(!req.keep_alive);
    }

    #[test]
    fn client_request_id_is_captured() {
        let raw = b"GET /healthz HTTP/1.1\r\nX-Request-ID: abc-7\r\n\r\n";
        let mut r = BufReader::new(&raw[..]);
        let ReadOutcome::Request(req) = read_request(&mut r, &limits()).unwrap() else {
            panic!("expected a request")
        };
        assert_eq!(req.request_id.as_deref(), Some("abc-7"));
    }

    #[test]
    fn deadline_header_is_captured_and_validated() {
        let raw = b"POST /predict HTTP/1.1\r\nX-Deadline-Us: 2500\r\nContent-Length: 0\r\n\r\n";
        let mut r = BufReader::new(&raw[..]);
        let ReadOutcome::Request(req) = read_request(&mut r, &limits()).unwrap() else {
            panic!("expected a request")
        };
        assert_eq!(req.deadline_us, Some(2500));
        let raw = b"POST /predict HTTP/1.1\r\nX-Deadline-Us: soon\r\n\r\n";
        let mut r = BufReader::new(&raw[..]);
        assert!(read_request(&mut r, &limits()).is_err(), "garbage deadline is a 400");
    }

    #[test]
    fn extra_headers_are_emitted() {
        let mut out = Vec::new();
        write_response_with(
            &mut out,
            200,
            "application/json",
            &[("X-Request-Id", "req-3")],
            b"{}",
            true,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\r\nX-Request-Id: req-3\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn eof_is_a_clean_close() {
        let mut r = BufReader::new(&b""[..]);
        assert!(matches!(read_request(&mut r, &limits()).unwrap(), ReadOutcome::Closed));
    }

    #[test]
    fn oversized_bodies_are_a_typed_outcome() {
        let lim = ReadLimits { max_body_bytes: 64, ..ReadLimits::default() };
        let raw = b"POST /predict HTTP/1.1\r\nContent-Length: 65\r\n\r\n";
        let mut r = BufReader::new(&raw[..]);
        assert!(matches!(read_request(&mut r, &lim).unwrap(), ReadOutcome::TooLarge));
        // At the limit is still fine.
        let mut raw = b"POST /p HTTP/1.1\r\nContent-Length: 64\r\n\r\n".to_vec();
        raw.extend(vec![b'x'; 64]);
        let mut r = BufReader::new(&raw[..]);
        assert!(matches!(read_request(&mut r, &lim).unwrap(), ReadOutcome::Request(_)));
    }

    /// A reader that yields its script one chunk per call, with a
    /// `WouldBlock` between chunks — a byte-dribbling client.
    struct Dribble {
        chunks: Vec<Vec<u8>>,
        next: usize,
        ready: bool,
        buffered: Vec<u8>,
    }

    impl Dribble {
        fn new(script: &[&[u8]]) -> Self {
            Self {
                chunks: script.iter().map(|c| c.to_vec()).collect(),
                next: 0,
                ready: true,
                buffered: Vec::new(),
            }
        }
    }

    impl io::Read for Dribble {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let data = self.fill_buf()?;
            let n = data.len().min(buf.len());
            buf[..n].copy_from_slice(&data[..n]);
            self.consume(n);
            Ok(n)
        }
    }

    impl BufRead for Dribble {
        fn fill_buf(&mut self) -> io::Result<&[u8]> {
            if self.buffered.is_empty() {
                if !self.ready {
                    self.ready = true;
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "not yet"));
                }
                if self.next >= self.chunks.len() {
                    return Ok(&[]);
                }
                self.buffered = self.chunks[self.next].clone();
                self.next += 1;
                self.ready = false;
            }
            Ok(&self.buffered)
        }

        fn consume(&mut self, amt: usize) {
            self.buffered.drain(..amt);
        }
    }

    #[test]
    fn dribbled_request_is_reassembled_within_budget() {
        let mut r = Dribble::new(&[
            b"POST /pre",
            b"dict HTTP/1.1\r\nContent-",
            b"Length: 4\r\n\r\n",
            b"ab",
            b"cd",
        ]);
        let ReadOutcome::Request(req) = read_request(&mut r, &limits()).unwrap() else {
            panic!("expected a request")
        };
        assert_eq!(req.path, "/predict");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn slow_loris_is_cut_off_when_the_budget_expires() {
        // An endless half-request: budget of zero-ish must kill it fast.
        struct Stall {
            sent: bool,
        }
        impl io::Read for Stall {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                let data = self.fill_buf()?;
                let n = data.len().min(buf.len());
                buf[..n].copy_from_slice(&data[..n]);
                self.consume(n);
                Ok(n)
            }
        }
        impl BufRead for Stall {
            fn fill_buf(&mut self) -> io::Result<&[u8]> {
                if !self.sent {
                    self.sent = true;
                    return Ok(b"POST /predict HT");
                }
                std::thread::sleep(Duration::from_millis(2));
                Err(io::Error::new(io::ErrorKind::WouldBlock, "stalled"))
            }
            fn consume(&mut self, _amt: usize) {}
        }
        let lim = ReadLimits { read_budget: Duration::from_millis(10), ..ReadLimits::default() };
        let err = read_request(&mut Stall { sent: false }, &lim).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut, "{err}");
    }

    /// The case the chaos harness caught: a drip feed that always has
    /// one more byte ready (so the socket never reports `WouldBlock`)
    /// must still be cut off by the budget via partial-progress charges.
    #[test]
    fn steady_drip_without_newline_is_cut_off() {
        struct Drip;
        impl io::Read for Drip {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                let data = self.fill_buf()?;
                let n = data.len().min(buf.len());
                buf[..n].copy_from_slice(&data[..n]);
                self.consume(n);
                Ok(n)
            }
        }
        impl BufRead for Drip {
            fn fill_buf(&mut self) -> io::Result<&[u8]> {
                std::thread::sleep(Duration::from_millis(2));
                Ok(b"a") // endless header-less request line, one byte at a time
            }
            fn consume(&mut self, _amt: usize) {}
        }
        let lim = ReadLimits { read_budget: Duration::from_millis(10), ..ReadLimits::default() };
        let started = Instant::now();
        let err = read_request(&mut Drip, &lim).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut, "{err}");
        assert!(started.elapsed() < Duration::from_secs(1), "cutoff must track the budget");
    }

    #[test]
    fn idle_timeout_before_any_byte_reports_idle() {
        struct NeverReady;
        impl io::Read for NeverReady {
            fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::WouldBlock, "idle"))
            }
        }
        impl BufRead for NeverReady {
            fn fill_buf(&mut self) -> io::Result<&[u8]> {
                Err(io::Error::new(io::ErrorKind::WouldBlock, "idle"))
            }
            fn consume(&mut self, _amt: usize) {}
        }
        assert!(matches!(read_request(&mut NeverReady, &limits()).unwrap(), ReadOutcome::Idle));
    }

    #[test]
    fn buffered_parser_matches_the_blocking_grammar() {
        let raw = b"POST /predict?fast=1 HTTP/1.1\r\nX-Request-Id: r9\r\nX-Deadline-Us: 2500\r\nContent-Length: 4\r\n\r\nabcdGET /next";
        let ParseStatus::Complete { req, consumed } = parse_buffered(raw, &limits()) else {
            panic!("expected a complete request")
        };
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/predict");
        assert_eq!(req.query_param("fast"), Some("1"));
        assert_eq!(req.request_id.as_deref(), Some("r9"));
        assert_eq!(req.deadline_us, Some(2500));
        assert_eq!(req.body, b"abcd");
        assert_eq!(&raw[consumed..], b"GET /next", "pipelined tail stays buffered");
    }

    #[test]
    fn buffered_parser_reports_partial_until_the_request_lands() {
        let full = b"POST /predict HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd";
        for cut in 0..full.len() {
            assert!(
                matches!(parse_buffered(&full[..cut], &limits()), ParseStatus::Partial),
                "prefix of {cut} bytes must be partial"
            );
        }
        assert!(matches!(parse_buffered(full, &limits()), ParseStatus::Complete { .. }));
    }

    #[test]
    fn buffered_parser_types_bad_and_oversized_requests() {
        assert!(matches!(
            parse_buffered(b"\r\n\r\n", &limits()),
            ParseStatus::Bad("malformed request line")
        ));
        assert!(matches!(
            parse_buffered(b"POST /p HTTP/1.1\r\nContent-Length: soon\r\n\r\n", &limits()),
            ParseStatus::Bad("bad content-length")
        ));
        assert!(matches!(
            parse_buffered(b"POST /p HTTP/1.1\r\nX-Deadline-Us: soonish\r\n\r\n", &limits()),
            ParseStatus::Bad("bad x-deadline-us header")
        ));
        let lim = ReadLimits { max_body_bytes: 64, ..ReadLimits::default() };
        assert!(matches!(
            parse_buffered(b"POST /p HTTP/1.1\r\nContent-Length: 65\r\n\r\n", &lim),
            ParseStatus::TooLarge
        ));
    }

    #[test]
    fn response_is_framed() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", b"{}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
