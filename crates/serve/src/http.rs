//! A minimal HTTP/1.1 layer over `std::net` — just enough protocol for
//! the four serving endpoints, with keep-alive and `Content-Length`
//! framing. No network crates: the build environment is offline and the
//! request shapes are fully under our control.

use std::io::{self, BufRead, Write};

/// Largest accepted request body (a batch of tweets is a few KiB; 1 MiB
/// leaves two orders of magnitude of headroom).
const MAX_BODY: usize = 1 << 20;
/// Header-count cap so a hostile client cannot balloon memory.
const MAX_HEADERS: usize = 64;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// Path without query string.
    pub path: String,
    /// Query string after the `?` (empty when absent).
    pub query: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
    /// Client-supplied `X-Request-Id`, echoed back verbatim when present.
    pub request_id: Option<String>,
}

impl Request {
    /// The value of `name` in the query string (`?n=32&flat`), if any.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .split('&')
            .filter_map(|pair| pair.split_once('='))
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v)
    }
}

/// What one read attempt on a keep-alive connection produced.
pub enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// Clean EOF before any bytes of a next request.
    Closed,
    /// The read timed out while *idle* (no request in flight) — the caller
    /// can poll its shutdown flag and try again without losing framing.
    Idle,
}

/// Reads one HTTP/1.1 request. A timeout on the very first line (idle
/// keep-alive connection) is reported as [`ReadOutcome::Idle`]; a timeout
/// mid-request is a framing error and closes the connection.
pub fn read_request(reader: &mut impl BufRead) -> io::Result<ReadOutcome> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return Ok(ReadOutcome::Closed),
        Ok(_) => {}
        Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
            return Ok(ReadOutcome::Idle);
        }
        Err(e) => return Err(e),
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("").to_string();
    if method.is_empty() || target.is_empty() {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "malformed request line"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target, String::new()),
    };

    let mut content_length = 0usize;
    let mut keep_alive = true; // HTTP/1.1 default
    let mut request_id = None;
    for _ in 0..MAX_HEADERS {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "eof in headers"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else { continue };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad content-length"))?;
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        } else if name.eq_ignore_ascii_case("x-request-id") && !value.is_empty() {
            request_id = Some(value.to_string());
        }
    }
    if content_length > MAX_BODY {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "body too large"));
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        io::Read::read_exact(reader, &mut body)?;
    }
    Ok(ReadOutcome::Request(Request { method, path, query, body, keep_alive, request_id }))
}

/// Writes one response with `Content-Length` framing.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    write_response_with(stream, status, content_type, &[], body, keep_alive)
}

/// [`write_response`] with extra headers (e.g. `X-Request-Id`) ahead of
/// the body.
pub fn write_response_with(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
        body.len()
    )?;
    for (name, value) in extra_headers {
        write!(stream, "{name}: {value}\r\n")?;
    }
    stream.write_all(b"\r\n")?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /predict HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let mut r = BufReader::new(&raw[..]);
        let ReadOutcome::Request(req) = read_request(&mut r).unwrap() else {
            panic!("expected a request")
        };
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/predict");
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive);
    }

    #[test]
    fn connection_close_and_query_strings() {
        let raw = b"GET /healthz?v=1 HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut r = BufReader::new(&raw[..]);
        let ReadOutcome::Request(req) = read_request(&mut r).unwrap() else {
            panic!("expected a request")
        };
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.query, "v=1");
        assert_eq!(req.query_param("v"), Some("1"));
        assert_eq!(req.query_param("n"), None);
        assert!(!req.keep_alive);
    }

    #[test]
    fn client_request_id_is_captured() {
        let raw = b"GET /healthz HTTP/1.1\r\nX-Request-ID: abc-7\r\n\r\n";
        let mut r = BufReader::new(&raw[..]);
        let ReadOutcome::Request(req) = read_request(&mut r).unwrap() else {
            panic!("expected a request")
        };
        assert_eq!(req.request_id.as_deref(), Some("abc-7"));
    }

    #[test]
    fn extra_headers_are_emitted() {
        let mut out = Vec::new();
        write_response_with(
            &mut out,
            200,
            "application/json",
            &[("X-Request-Id", "req-3")],
            b"{}",
            true,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\r\nX-Request-Id: req-3\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn eof_is_a_clean_close() {
        let mut r = BufReader::new(&b""[..]);
        assert!(matches!(read_request(&mut r).unwrap(), ReadOutcome::Closed));
    }

    #[test]
    fn oversized_bodies_are_rejected() {
        let raw = format!("POST /predict HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        let mut r = BufReader::new(raw.as_bytes());
        assert!(read_request(&mut r).is_err());
    }

    #[test]
    fn response_is_framed() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", b"{}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
