//! Pre-resolved labeled metric handles for the serving hot path.
//!
//! Resolving a label combination takes the family's registry lock, so the
//! handlers never do it per request: every cell the server can touch is
//! resolved once into a static grid, and steady-state recording is an
//! array index plus one relaxed atomic op — the same lock-free contract
//! as the unlabeled `counter!`/`histogram!` macros.

use std::sync::OnceLock;

use edge_obs::ring::{N_STAGES, STAGE_NAMES};
use edge_obs::{Counter, Histogram};

/// Endpoint labels in grid order; `other` catches unknown paths.
pub(crate) const ENDPOINTS: [&str; 6] =
    ["predict", "healthz", "metrics", "reload", "debug_requests", "other"];

/// Statuses the server can actually emit; anything else lands in `other`.
const STATUSES: [(u16, &str); 8] = [
    (200, "200"),
    (400, "400"),
    (404, "404"),
    (405, "405"),
    (422, "422"),
    (429, "429"),
    (500, "500"),
    (503, "503"),
];

/// The `serve_http_requests{endpoint,status}` cell for a combination.
pub(crate) fn request_counter(endpoint: &'static str, status: u16) -> &'static Counter {
    static GRID: OnceLock<Vec<&'static Counter>> = OnceLock::new();
    let grid = GRID.get_or_init(|| {
        let family = edge_obs::labels::counter_family(
            "serve_http_requests",
            "HTTP requests served, by endpoint and response status.",
        );
        let mut cells = Vec::with_capacity(ENDPOINTS.len() * (STATUSES.len() + 1));
        for endpoint in ENDPOINTS {
            for (_, status) in STATUSES {
                cells.push(family.with(&[("endpoint", endpoint), ("status", status)]));
            }
            cells.push(family.with(&[("endpoint", endpoint), ("status", "other")]));
        }
        cells
    });
    let e = ENDPOINTS.iter().position(|&ep| ep == endpoint).unwrap_or(ENDPOINTS.len() - 1);
    let s = STATUSES.iter().position(|&(code, _)| code == status).unwrap_or(STATUSES.len());
    grid[e * (STATUSES.len() + 1) + s]
}

/// Per-stage latency cells (`serve_stage_us{stage=...}`), indexed like
/// [`STAGE_NAMES`].
pub(crate) fn stage_hists() -> &'static [&'static Histogram; N_STAGES] {
    static CELLS: OnceLock<[&'static Histogram; N_STAGES]> = OnceLock::new();
    CELLS.get_or_init(|| {
        let family = edge_obs::labels::histogram_family(
            "serve_stage_us",
            "Per-request pipeline stage latency in microseconds.",
        );
        std::array::from_fn(|i| family.with(&[("stage", STAGE_NAMES[i])]))
    })
}

/// `serve_predict_texts{batch_path}`: whether a text was answered inline
/// (abstention / cache hit) or went through the batched model path.
pub(crate) fn batch_path_counter(batched: bool) -> &'static Counter {
    static CELLS: OnceLock<[&'static Counter; 2]> = OnceLock::new();
    let cells = CELLS.get_or_init(|| {
        let family = edge_obs::labels::counter_family(
            "serve_predict_texts",
            "Predict texts answered, by path (inline vs batched).",
        );
        [family.with(&[("batch_path", "inline")]), family.with(&[("batch_path", "batched")])]
    });
    cells[batched as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_resolve_known_and_unknown_cells() {
        let a = request_counter("predict", 200);
        let b = request_counter("predict", 200);
        assert!(std::ptr::eq(a, b), "same combination must share a cell");
        // Unknown status falls into the endpoint's `other` column.
        let odd = request_counter("predict", 418);
        assert!(!std::ptr::eq(a, odd));
        assert_eq!(stage_hists().len(), N_STAGES);
        assert!(!std::ptr::eq(batch_path_counter(false), batch_path_counter(true)));
    }
}
