//! Pre-resolved labeled metric handles for the serving hot path.
//!
//! Resolving a label combination takes the family's registry lock, so the
//! handlers never do it per request: every cell the server can touch is
//! resolved once into a static grid, and steady-state recording is an
//! array index plus one relaxed atomic op — the same lock-free contract
//! as the unlabeled `counter!`/`histogram!` macros.

use std::sync::OnceLock;

use edge_obs::ring::{N_STAGES, STAGE_NAMES};
use edge_obs::{Counter, Gauge, Histogram};

/// Endpoint labels in grid order; `other` catches unknown paths.
pub(crate) const ENDPOINTS: [&str; 6] =
    ["predict", "healthz", "metrics", "reload", "debug_requests", "other"];

/// Statuses the server can actually emit; anything else lands in `other`.
const STATUSES: [(u16, &str); 10] = [
    (200, "200"),
    (400, "400"),
    (404, "404"),
    (405, "405"),
    (413, "413"),
    (422, "422"),
    (429, "429"),
    (500, "500"),
    (503, "503"),
    (504, "504"),
];

/// The `serve_http_requests{endpoint,status}` cell for a combination.
pub(crate) fn request_counter(endpoint: &'static str, status: u16) -> &'static Counter {
    static GRID: OnceLock<Vec<&'static Counter>> = OnceLock::new();
    let grid = GRID.get_or_init(|| {
        let family = edge_obs::labels::counter_family(
            "serve_http_requests",
            "HTTP requests served, by endpoint and response status.",
        );
        let mut cells = Vec::with_capacity(ENDPOINTS.len() * (STATUSES.len() + 1));
        for endpoint in ENDPOINTS {
            for (_, status) in STATUSES {
                cells.push(family.with(&[("endpoint", endpoint), ("status", status)]));
            }
            cells.push(family.with(&[("endpoint", endpoint), ("status", "other")]));
        }
        cells
    });
    let e = ENDPOINTS.iter().position(|&ep| ep == endpoint).unwrap_or(ENDPOINTS.len() - 1);
    let s = STATUSES.iter().position(|&(code, _)| code == status).unwrap_or(STATUSES.len());
    grid[e * (STATUSES.len() + 1) + s]
}

/// Per-stage latency cells (`serve_stage_us{stage=...}`), indexed like
/// [`STAGE_NAMES`].
pub(crate) fn stage_hists() -> &'static [&'static Histogram; N_STAGES] {
    static CELLS: OnceLock<[&'static Histogram; N_STAGES]> = OnceLock::new();
    CELLS.get_or_init(|| {
        let family = edge_obs::labels::histogram_family(
            "serve_stage_us",
            "Per-request pipeline stage latency in microseconds.",
        );
        std::array::from_fn(|i| family.with(&[("stage", STAGE_NAMES[i])]))
    })
}

/// `serve_predict_texts{batch_path}`: whether a text was answered inline
/// (abstention / cache hit) or went through the batched model path.
pub(crate) fn batch_path_counter(batched: bool) -> &'static Counter {
    static CELLS: OnceLock<[&'static Counter; 2]> = OnceLock::new();
    let cells = CELLS.get_or_init(|| {
        let family = edge_obs::labels::counter_family(
            "serve_predict_texts",
            "Predict texts answered, by path (inline vs batched).",
        );
        [family.with(&[("batch_path", "inline")]), family.with(&[("batch_path", "batched")])]
    });
    cells[batched as usize]
}

/// Brownout mode names in ladder order, shared by the labeled families
/// below and [`crate::brownout::Mode::name`].
const MODES: [&str; 4] = ["full", "cache_only", "prior_only", "shed"];

fn mode_index(mode: &str) -> usize {
    MODES.iter().position(|&m| m == mode).unwrap_or(0)
}

/// `serve_brownout_rejections{mode}`: predicts rejected (503) because the
/// load controller was in this mode.
pub(crate) fn mode_rejection_counter(mode: &'static str) -> &'static Counter {
    static CELLS: OnceLock<[&'static Counter; 4]> = OnceLock::new();
    let cells = CELLS.get_or_init(|| {
        let family = edge_obs::labels::counter_family(
            "serve_brownout_rejections",
            "Predict requests rejected with 503 by brownout mode.",
        );
        std::array::from_fn(|i| family.with(&[("mode", MODES[i])]))
    });
    cells[mode_index(mode)]
}

/// `serve_mode_transitions{to}`: load-controller transitions into a mode.
pub(crate) fn mode_transition_counter(to: &'static str) -> &'static Counter {
    static CELLS: OnceLock<[&'static Counter; 4]> = OnceLock::new();
    let cells = CELLS.get_or_init(|| {
        let family = edge_obs::labels::counter_family(
            "serve_mode_transitions",
            "Brownout load-controller transitions, by destination mode.",
        );
        std::array::from_fn(|i| family.with(&[("to", MODES[i])]))
    });
    cells[mode_index(to)]
}

/// Every per-shard cell, resolved once at server start for a leaked
/// shard name (shard topology is fixed for the process lifetime, so the
/// leak is bounded and the hot path stays an array-free pointer deref).
///
/// The `serve_shard_request_us` histogram is what gives each shard its
/// own `_p50/_p95/_p99` estimate gauges in the OpenMetrics exposition —
/// the per-shard p99 the bench and `edge-cli top` report.
pub(crate) struct ShardCells {
    /// `serve_shard_requests{shard}`: predict requests this shard served.
    pub requests: &'static Counter,
    /// `serve_shard_texts{shard}`: predict texts routed to this shard.
    pub texts: &'static Counter,
    /// `serve_shard_request_us{shard}`: predict latency per shard.
    pub request_us: &'static Histogram,
    /// Scrape-time gauges mirroring the shard's queue/cache/SLO state.
    pub queue_depth: &'static Gauge,
    pub shed_rate: &'static Gauge,
    pub cache_hits: &'static Gauge,
    pub cache_misses: &'static Gauge,
    pub mode: &'static Gauge,
    pub generation: &'static Gauge,
}

/// Resolves the full cell set for one shard label.
pub(crate) fn shard_cells(shard: &'static str) -> ShardCells {
    let label: &[(&'static str, &'static str)] = &[("shard", shard)];
    ShardCells {
        requests: edge_obs::labels::counter_family(
            "serve_shard_requests",
            "Predict requests served, by model shard.",
        )
        .with(label),
        texts: edge_obs::labels::counter_family(
            "serve_shard_texts",
            "Predict texts routed, by model shard.",
        )
        .with(label),
        request_us: edge_obs::labels::histogram_family(
            "serve_shard_request_us",
            "Predict request latency in microseconds, by model shard.",
        )
        .with(label),
        queue_depth: edge_obs::labels::gauge_family(
            "serve_shard_queue_depth",
            "Micro-batch queue depth, by model shard.",
        )
        .with(label),
        shed_rate: edge_obs::labels::gauge_family(
            "serve_shard_shed_rate",
            "Rolling shed fraction, by model shard.",
        )
        .with(label),
        cache_hits: edge_obs::labels::gauge_family(
            "serve_shard_cache_hits",
            "Response-cache hits, by model shard.",
        )
        .with(label),
        cache_misses: edge_obs::labels::gauge_family(
            "serve_shard_cache_misses",
            "Response-cache misses, by model shard.",
        )
        .with(label),
        mode: edge_obs::labels::gauge_family(
            "serve_shard_mode",
            "Brownout ladder position (0=full .. 3=shed), by model shard.",
        )
        .with(label),
        generation: edge_obs::labels::gauge_family(
            "serve_shard_generation",
            "Loaded model generation, by model shard.",
        )
        .with(label),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_resolve_known_and_unknown_cells() {
        let a = request_counter("predict", 200);
        let b = request_counter("predict", 200);
        assert!(std::ptr::eq(a, b), "same combination must share a cell");
        // Unknown status falls into the endpoint's `other` column.
        let odd = request_counter("predict", 418);
        assert!(!std::ptr::eq(a, odd));
        assert!(!std::ptr::eq(a, request_counter("predict", 504)));
        assert_eq!(stage_hists().len(), N_STAGES);
        assert!(!std::ptr::eq(batch_path_counter(false), batch_path_counter(true)));
        assert!(!std::ptr::eq(mode_rejection_counter("shed"), mode_rejection_counter("full")));
        assert!(std::ptr::eq(mode_transition_counter("full"), mode_transition_counter("full")));
    }

    #[test]
    fn shard_cells_are_stable_per_label() {
        let a = shard_cells("nyma");
        let b = shard_cells("nyma");
        let other = shard_cells("lama");
        assert!(std::ptr::eq(a.requests, b.requests));
        assert!(std::ptr::eq(a.request_us, b.request_us));
        assert!(!std::ptr::eq(a.requests, other.requests));
        assert!(!std::ptr::eq(a.mode, other.mode));
    }
}
