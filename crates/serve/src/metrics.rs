//! Pre-resolved labeled metric handles for the serving hot path.
//!
//! Resolving a label combination takes the family's registry lock, so the
//! handlers never do it per request: every cell the server can touch is
//! resolved once into a static grid, and steady-state recording is an
//! array index plus one relaxed atomic op — the same lock-free contract
//! as the unlabeled `counter!`/`histogram!` macros.

use std::sync::OnceLock;

use edge_obs::ring::{N_STAGES, STAGE_NAMES};
use edge_obs::{Counter, Histogram};

/// Endpoint labels in grid order; `other` catches unknown paths.
pub(crate) const ENDPOINTS: [&str; 6] =
    ["predict", "healthz", "metrics", "reload", "debug_requests", "other"];

/// Statuses the server can actually emit; anything else lands in `other`.
const STATUSES: [(u16, &str); 10] = [
    (200, "200"),
    (400, "400"),
    (404, "404"),
    (405, "405"),
    (413, "413"),
    (422, "422"),
    (429, "429"),
    (500, "500"),
    (503, "503"),
    (504, "504"),
];

/// The `serve_http_requests{endpoint,status}` cell for a combination.
pub(crate) fn request_counter(endpoint: &'static str, status: u16) -> &'static Counter {
    static GRID: OnceLock<Vec<&'static Counter>> = OnceLock::new();
    let grid = GRID.get_or_init(|| {
        let family = edge_obs::labels::counter_family(
            "serve_http_requests",
            "HTTP requests served, by endpoint and response status.",
        );
        let mut cells = Vec::with_capacity(ENDPOINTS.len() * (STATUSES.len() + 1));
        for endpoint in ENDPOINTS {
            for (_, status) in STATUSES {
                cells.push(family.with(&[("endpoint", endpoint), ("status", status)]));
            }
            cells.push(family.with(&[("endpoint", endpoint), ("status", "other")]));
        }
        cells
    });
    let e = ENDPOINTS.iter().position(|&ep| ep == endpoint).unwrap_or(ENDPOINTS.len() - 1);
    let s = STATUSES.iter().position(|&(code, _)| code == status).unwrap_or(STATUSES.len());
    grid[e * (STATUSES.len() + 1) + s]
}

/// Per-stage latency cells (`serve_stage_us{stage=...}`), indexed like
/// [`STAGE_NAMES`].
pub(crate) fn stage_hists() -> &'static [&'static Histogram; N_STAGES] {
    static CELLS: OnceLock<[&'static Histogram; N_STAGES]> = OnceLock::new();
    CELLS.get_or_init(|| {
        let family = edge_obs::labels::histogram_family(
            "serve_stage_us",
            "Per-request pipeline stage latency in microseconds.",
        );
        std::array::from_fn(|i| family.with(&[("stage", STAGE_NAMES[i])]))
    })
}

/// `serve_predict_texts{batch_path}`: whether a text was answered inline
/// (abstention / cache hit) or went through the batched model path.
pub(crate) fn batch_path_counter(batched: bool) -> &'static Counter {
    static CELLS: OnceLock<[&'static Counter; 2]> = OnceLock::new();
    let cells = CELLS.get_or_init(|| {
        let family = edge_obs::labels::counter_family(
            "serve_predict_texts",
            "Predict texts answered, by path (inline vs batched).",
        );
        [family.with(&[("batch_path", "inline")]), family.with(&[("batch_path", "batched")])]
    });
    cells[batched as usize]
}

/// Brownout mode names in ladder order, shared by the labeled families
/// below and [`crate::brownout::Mode::name`].
const MODES: [&str; 4] = ["full", "cache_only", "prior_only", "shed"];

fn mode_index(mode: &str) -> usize {
    MODES.iter().position(|&m| m == mode).unwrap_or(0)
}

/// `serve_brownout_rejections{mode}`: predicts rejected (503) because the
/// load controller was in this mode.
pub(crate) fn mode_rejection_counter(mode: &'static str) -> &'static Counter {
    static CELLS: OnceLock<[&'static Counter; 4]> = OnceLock::new();
    let cells = CELLS.get_or_init(|| {
        let family = edge_obs::labels::counter_family(
            "serve_brownout_rejections",
            "Predict requests rejected with 503 by brownout mode.",
        );
        std::array::from_fn(|i| family.with(&[("mode", MODES[i])]))
    });
    cells[mode_index(mode)]
}

/// `serve_mode_transitions{to}`: load-controller transitions into a mode.
pub(crate) fn mode_transition_counter(to: &'static str) -> &'static Counter {
    static CELLS: OnceLock<[&'static Counter; 4]> = OnceLock::new();
    let cells = CELLS.get_or_init(|| {
        let family = edge_obs::labels::counter_family(
            "serve_mode_transitions",
            "Brownout load-controller transitions, by destination mode.",
        );
        std::array::from_fn(|i| family.with(&[("to", MODES[i])]))
    });
    cells[mode_index(to)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_resolve_known_and_unknown_cells() {
        let a = request_counter("predict", 200);
        let b = request_counter("predict", 200);
        assert!(std::ptr::eq(a, b), "same combination must share a cell");
        // Unknown status falls into the endpoint's `other` column.
        let odd = request_counter("predict", 418);
        assert!(!std::ptr::eq(a, odd));
        assert!(!std::ptr::eq(a, request_counter("predict", 504)));
        assert_eq!(stage_hists().len(), N_STAGES);
        assert!(!std::ptr::eq(batch_path_counter(false), batch_path_counter(true)));
        assert!(!std::ptr::eq(mode_rejection_counter("shed"), mode_rejection_counter("full")));
        assert!(std::ptr::eq(mode_transition_counter("full"), mode_transition_counter("full")));
    }
}
