//! The `/predict` wire format: request parsing (via the `serde_json`
//! value tree) and a hand-rolled response writer.
//!
//! The writer matters: rendering is the only per-text cost besides
//! inference itself, and the bit-identity guarantee rides on it. Floats
//! are written with Rust's `Display`, which produces the shortest string
//! that round-trips — so a client (or test) parsing the JSON recovers the
//! exact `f64`/`f32` bits the model produced.

use edge_core::{PredictError, PredictResponse};

/// A parsed `POST /predict` body.
#[derive(Debug)]
pub struct PredictBody {
    /// The texts to locate (one for the single-tweet shape).
    pub texts: Vec<String>,
    /// `{"text": ...}` (reply with a bare object) vs `{"texts": [...]}`
    /// (reply with `{"results": [...]}`).
    pub single: bool,
    /// Per-request override of the server's zero-entity policy.
    pub fallback_prior: Option<bool>,
}

/// Parses either `{"text": "..."}"` or `{"texts": ["...", ...]}`, each
/// with an optional `"fallback_prior": bool`.
pub fn parse_predict_body(body: &[u8]) -> Result<PredictBody, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not utf-8".to_string())?;
    let value: serde_json::Value =
        serde_json::from_str(text).map_err(|e| format!("invalid json: {e}"))?;
    let fallback_prior = match value.get("fallback_prior") {
        None | Some(serde_json::Value::Null) => None,
        Some(serde_json::Value::Bool(b)) => Some(*b),
        Some(_) => return Err("fallback_prior must be a boolean".to_string()),
    };
    if let Some(single) = value.get("text") {
        let s = single.as_str().ok_or("\"text\" must be a string")?;
        return Ok(PredictBody { texts: vec![s.to_string()], single: true, fallback_prior });
    }
    if let Some(batch) = value.get("texts") {
        let items = batch.as_array().ok_or("\"texts\" must be an array")?;
        let mut texts = Vec::with_capacity(items.len());
        for item in items {
            texts.push(item.as_str().ok_or("\"texts\" items must be strings")?.to_string());
        }
        if texts.is_empty() {
            return Err("\"texts\" must not be empty".to_string());
        }
        return Ok(PredictBody { texts, single: false, fallback_prior });
    }
    Err("body needs a \"text\" string or a \"texts\" array".to_string())
}

fn push_escaped(out: &mut Vec<u8>, s: &str) {
    out.push(b'"');
    for c in s.chars() {
        match c {
            '"' => out.extend_from_slice(b"\\\""),
            '\\' => out.extend_from_slice(b"\\\\"),
            '\n' => out.extend_from_slice(b"\\n"),
            '\r' => out.extend_from_slice(b"\\r"),
            '\t' => out.extend_from_slice(b"\\t"),
            c if (c as u32) < 0x20 => {
                out.extend_from_slice(format!("\\u{:04x}", c as u32).as_bytes())
            }
            c => {
                let mut buf = [0u8; 4];
                out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
            }
        }
    }
    out.push(b'"');
}

fn push_f64(out: &mut Vec<u8>, x: f64) {
    use std::io::Write;
    if x.is_finite() {
        write!(out, "{x}").expect("write to Vec");
    } else {
        out.extend_from_slice(b"null");
    }
}

fn push_f32(out: &mut Vec<u8>, x: f32) {
    use std::io::Write;
    if x.is_finite() {
        write!(out, "{x}").expect("write to Vec");
    } else {
        out.extend_from_slice(b"null");
    }
}

/// Renders one successful prediction as a JSON object:
/// `{"point":{"lat":..,"lon":..},"mixture":[{"weight":..,"mu":{..},
/// "sigma_lat":..,"sigma_lon":..,"rho":..},..],"attention":[["name",w],..],
/// "from_fallback":bool}`.
pub fn render_response(resp: &PredictResponse) -> Vec<u8> {
    render_response_inner(resp, false)
}

/// [`render_response`] for brownout `PriorOnly` answers: identical wire
/// shape plus a trailing `"degraded":true`, so clients can tell a
/// quality-reduced answer from a full one. The normal path never emits
/// the key at all — bit-identity with direct `Predictor` calls rides on
/// that.
pub fn render_response_degraded(resp: &PredictResponse) -> Vec<u8> {
    render_response_inner(resp, true)
}

fn render_response_inner(resp: &PredictResponse, degraded: bool) -> Vec<u8> {
    let p = &resp.prediction;
    let mut out = Vec::with_capacity(256);
    out.extend_from_slice(b"{\"point\":{\"lat\":");
    push_f64(&mut out, p.point.lat);
    out.extend_from_slice(b",\"lon\":");
    push_f64(&mut out, p.point.lon);
    out.extend_from_slice(b"},\"mixture\":[");
    for (i, (weight, g)) in p.mixture.iter().enumerate() {
        if i > 0 {
            out.push(b',');
        }
        out.extend_from_slice(b"{\"weight\":");
        push_f64(&mut out, weight);
        out.extend_from_slice(b",\"mu\":{\"lat\":");
        push_f64(&mut out, g.mu.lat);
        out.extend_from_slice(b",\"lon\":");
        push_f64(&mut out, g.mu.lon);
        out.extend_from_slice(b"},\"sigma_lat\":");
        push_f64(&mut out, g.sigma_lat);
        out.extend_from_slice(b",\"sigma_lon\":");
        push_f64(&mut out, g.sigma_lon);
        out.extend_from_slice(b",\"rho\":");
        push_f64(&mut out, g.rho);
        out.push(b'}');
    }
    out.extend_from_slice(b"],\"attention\":[");
    for (i, (name, w)) in p.attention.iter().enumerate() {
        if i > 0 {
            out.push(b',');
        }
        out.push(b'[');
        push_escaped(&mut out, name);
        out.push(b',');
        push_f32(&mut out, *w);
        out.push(b']');
    }
    out.extend_from_slice(b"],\"from_fallback\":");
    out.extend_from_slice(if resp.from_fallback { b"true" } else { b"false" });
    if degraded {
        out.extend_from_slice(b",\"degraded\":true");
    }
    out.push(b'}');
    out
}

/// The typed `DeadlineExceeded` fragment (HTTP 504): what a queued text
/// evicted past its budget — or a whole expired request — answers with.
pub fn render_deadline_error() -> Vec<u8> {
    simple_object(&[
        ("error", "deadline_exceeded"),
        ("detail", "request deadline budget exhausted"),
    ])
}

/// Renders a typed prediction error as `{"error": "...", "detail": "..."}`.
pub fn render_error(err: &PredictError) -> Vec<u8> {
    let code = match err {
        PredictError::NoEntities => "no_entities",
        PredictError::EntityOutOfRange { .. } => "entity_out_of_range",
        PredictError::UnsupportedInput(_) => "unsupported_input",
    };
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(b"{\"error\":");
    push_escaped(&mut out, code);
    out.extend_from_slice(b",\"detail\":");
    push_escaped(&mut out, &err.to_string());
    out.push(b'}');
    out
}

/// A small ad-hoc JSON object (status payloads, error envelopes).
pub fn simple_object(fields: &[(&str, &str)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.push(b'{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(b',');
        }
        push_escaped(&mut out, k);
        out.push(b':');
        push_escaped(&mut out, v);
    }
    out.push(b'}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_core::Prediction;
    use edge_geo::{BivariateGaussian, GaussianMixture, Point};

    fn response() -> PredictResponse {
        let g = BivariateGaussian::new(Point::new(40.75, -73.99), 0.01, 0.02, 0.3);
        let mixture = GaussianMixture::new(vec![(1.0, g)]);
        PredictResponse {
            prediction: Prediction {
                point: mixture.mode(),
                mixture,
                attention: vec![("Central \"Park\"".to_string(), 0.75f32)],
            },
            from_fallback: false,
        }
    }

    #[test]
    fn rendered_floats_round_trip_bit_exactly() {
        let resp = response();
        let bytes = render_response(&resp);
        let v: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&bytes).unwrap()).unwrap();
        let lat = match v.get("point").unwrap().get("lat").unwrap() {
            serde_json::Value::Num(n) => n.as_f64(),
            other => panic!("lat not a number: {other:?}"),
        };
        assert_eq!(lat.to_bits(), resp.prediction.point.lat.to_bits());
        let att = v.get("attention").unwrap().as_array().unwrap();
        let w = match &att[0].as_array().unwrap()[1] {
            serde_json::Value::Num(n) => n.as_f64() as f32,
            other => panic!("weight not a number: {other:?}"),
        };
        assert_eq!(w.to_bits(), 0.75f32.to_bits());
        assert_eq!(att[0].as_array().unwrap()[0].as_str().unwrap(), "Central \"Park\"");
    }

    #[test]
    fn parses_single_and_batch_bodies() {
        let single = parse_predict_body(br#"{"text": "hello", "fallback_prior": true}"#).unwrap();
        assert!(single.single);
        assert_eq!(single.texts, ["hello"]);
        assert_eq!(single.fallback_prior, Some(true));
        let batch = parse_predict_body(br#"{"texts": ["a", "b"]}"#).unwrap();
        assert!(!batch.single);
        assert_eq!(batch.texts.len(), 2);
        assert_eq!(batch.fallback_prior, None);
    }

    #[test]
    fn malformed_bodies_are_typed_errors() {
        assert!(parse_predict_body(b"not json").is_err());
        assert!(parse_predict_body(br#"{"texts": []}"#).is_err());
        assert!(parse_predict_body(br#"{"texts": [1]}"#).is_err());
        assert!(parse_predict_body(br#"{"nope": true}"#).is_err());
        assert!(parse_predict_body(br#"{"text": "x", "fallback_prior": "yes"}"#).is_err());
    }

    #[test]
    fn error_rendering_is_valid_json() {
        let bytes = render_error(&PredictError::NoEntities);
        let v: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&bytes).unwrap()).unwrap();
        assert_eq!(v.get("error").unwrap().as_str().unwrap(), "no_entities");
        let bytes = render_deadline_error();
        let v: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&bytes).unwrap()).unwrap();
        assert_eq!(v.get("error").unwrap().as_str().unwrap(), "deadline_exceeded");
    }

    #[test]
    fn degraded_rendering_adds_only_the_marker() {
        let resp = response();
        let full = render_response(&resp);
        let degraded = render_response_degraded(&resp);
        assert!(!String::from_utf8(full.clone()).unwrap().contains("degraded"));
        let text = String::from_utf8(degraded.clone()).unwrap();
        assert!(text.ends_with(",\"degraded\":true}"), "{text}");
        // Identical prefix: the marker is strictly additive.
        assert_eq!(&degraded[..full.len() - 1], &full[..full.len() - 1]);
        let v: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(v.get("degraded"), Some(&serde_json::Value::Bool(true)));
    }
}
