//! Dependency-free `epoll` reactor primitives for the event-loop server.
//!
//! The workspace is offline (no `libc`, no `mio`), so the handful of
//! syscalls an event loop needs — `epoll_create1`/`epoll_ctl`/
//! `epoll_wait`, `eventfd`, `poll`, and `setrlimit` — are declared as
//! `extern "C"` shims against the C library `std` already links, the same
//! precedent as the `signal()` shim the server uses for SIGTERM. Errors
//! surface as `io::Error::last_os_error()`, so `errno` text comes through.
//!
//! Three building blocks:
//!
//! * [`Poller`] — an `epoll` instance. Sockets register **once** with
//!   [`interest_rw`] (edge-triggered, both directions, peer-hangup); the
//!   loop then reads/writes to `WouldBlock` on every edge, so 10k idle
//!   keep-alive connections cost zero threads and zero per-tick work.
//! * [`Waker`] — an `eventfd` another thread writes to pull a sleeping
//!   loop out of `epoll_wait` (new connection handed off, batch
//!   completed, shutdown requested).
//! * [`raise_nofile_limit`] — lifts `RLIMIT_NOFILE` toward a target so
//!   the high-concurrency bench can actually hold 10k+ sockets.

use std::io;
use std::os::unix::io::RawFd;

// epoll interest/event bits (uapi/linux/eventpoll.h).
pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;
pub const EPOLLET: u32 = 1 << 31;

const EPOLL_CLOEXEC: i32 = 0x80000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EFD_NONBLOCK: i32 = 0x800;
const EFD_CLOEXEC: i32 = 0x80000;

const POLLIN_FLAG: i16 = 0x001;
const RLIMIT_NOFILE: i32 = 7;

/// The standard read/write registration for a connection: edge-triggered
/// readiness in both directions plus peer half-close notification.
pub const fn interest_rw() -> u32 {
    EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET
}

/// One `struct epoll_event`. Packed on x86_64 (the kernel ABI packs it
/// there so 32- and 64-bit layouts agree); natural alignment elsewhere.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    events: u32,
    data: u64,
}

impl EpollEvent {
    /// Readiness bits reported by the kernel.
    pub fn events(&self) -> u32 {
        self.events
    }

    /// The token the fd was registered under.
    pub fn token(&self) -> u64 {
        self.data
    }
}

#[repr(C)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

#[repr(C)]
struct RLimit {
    cur: u64,
    max: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An `epoll` instance owning its fd.
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    pub fn new() -> io::Result<Poller> {
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poller { epfd })
    }

    /// Registers `fd` under `token` with the given interest bits.
    pub fn add(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        let mut ev = EpollEvent { events: interest, data: token };
        cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, fd, &mut ev) }).map(|_| ())
    }

    /// Changes an existing registration's interest/token.
    pub fn modify(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        let mut ev = EpollEvent { events: interest, data: token };
        cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_MOD, fd, &mut ev) }).map(|_| ())
    }

    /// Removes a registration (closing the fd also removes it; explicit
    /// delete keeps the loop's bookkeeping honest).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = EpollEvent { events: 0, data: 0 };
        cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(|_| ())
    }

    /// Blocks for readiness up to `timeout_ms` (`-1` = forever). Fills
    /// `events` and returns how many fired; `EINTR` is reported as zero
    /// events so callers just re-loop.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let n =
            unsafe { epoll_wait(self.epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(n as usize)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe { close(self.epfd) };
    }
}

/// A zeroed event buffer for [`Poller::wait`].
pub fn event_buffer(n: usize) -> Vec<EpollEvent> {
    vec![EpollEvent { events: 0, data: 0 }; n]
}

/// An `eventfd` used to wake a loop out of `epoll_wait` from another
/// thread. Level-triggered reads: a wake before the loop sleeps still
/// wakes the next `epoll_wait` immediately.
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    pub fn new() -> io::Result<Waker> {
        Ok(Waker { fd: raw_eventfd()? })
    }

    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Posts a wake. Saturation (`EAGAIN` on a counter at `u64::MAX - 1`)
    /// is fine: the loop is already guaranteed to wake.
    pub fn wake(&self) {
        eventfd_write(self.fd);
    }

    /// Consumes all posted wakes so the next `epoll_wait` can sleep.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

/// A bare non-blocking `eventfd` (for the process-wide signal fd, which
/// must never be dropped/closed — signal handlers hold its number).
pub fn raw_eventfd() -> io::Result<RawFd> {
    cvt(unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) })
}

/// Adds 1 to an eventfd counter. Async-signal-safe (one `write` call), so
/// signal handlers can use it to wake a parked [`wait_readable`].
pub fn eventfd_write(fd: RawFd) {
    let one: u64 = 1;
    unsafe { write(fd, &one as *const u64 as *const u8, 8) };
}

/// Blocks until `fd` is readable or `timeout_ms` passes (`-1` = forever).
/// Returns whether it became readable. `EINTR` counts as a wake: the
/// caller re-checks its condition either way.
pub fn wait_readable(fd: RawFd, timeout_ms: i32) -> bool {
    let mut pfd = PollFd { fd, events: POLLIN_FLAG, revents: 0 };
    let n = unsafe { poll(&mut pfd, 1, timeout_ms) };
    n != 0
}

/// Raises the soft `RLIMIT_NOFILE` toward `target` (capped at the hard
/// limit). Returns the soft limit now in effect. The high-concurrency
/// bench calls this before opening 10k+ sockets.
pub fn raise_nofile_limit(target: u64) -> io::Result<u64> {
    let mut lim = RLimit { cur: 0, max: 0 };
    cvt(unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) })?;
    if lim.cur >= target {
        return Ok(lim.cur);
    }
    if lim.max < target {
        // Privileged processes may lift the hard limit too; unprivileged
        // ones fall through to soft = old hard below.
        let both = RLimit { cur: target, max: target };
        if cvt(unsafe { setrlimit(RLIMIT_NOFILE, &both) }).is_ok() {
            return Ok(target);
        }
    }
    let raised = RLimit { cur: target.min(lim.max), max: lim.max };
    cvt(unsafe { setrlimit(RLIMIT_NOFILE, &raised) })?;
    Ok(raised.cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn poller_reports_edge_triggered_readability() {
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(b.as_raw_fd(), 7, interest_rw()).unwrap();
        let mut events = event_buffer(8);

        // Freshly registered writable socket: an EPOLLOUT edge fires.
        let n = poller.wait(&mut events, 1000).unwrap();
        assert!(n >= 1);
        assert_eq!(events[0].token(), 7);
        assert!(events[0].events() & EPOLLOUT != 0);

        // Nothing to read yet: a short wait times out with zero events.
        assert_eq!(poller.wait(&mut events, 10).unwrap(), 0);

        a.write_all(b"ping").unwrap();
        let n = poller.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert!(events[0].events() & EPOLLIN != 0);

        // Edge-triggered: without draining the socket, no new edge fires.
        assert_eq!(poller.wait(&mut events, 20).unwrap(), 0);
        let mut buf = [0u8; 16];
        let got = (&b).read(&mut buf).unwrap();
        assert_eq!(&buf[..got], b"ping");

        // Peer hangup surfaces as EPOLLRDHUP/EPOLLHUP.
        drop(a);
        let n = poller.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert!(events[0].events() & (EPOLLRDHUP | EPOLLHUP) != 0);
        poller.delete(b.as_raw_fd()).unwrap();
    }

    #[test]
    fn waker_wakes_a_sleeping_poller_and_drains() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.add(waker.fd(), 1, EPOLLIN).unwrap();
        let mut events = event_buffer(4);
        assert_eq!(poller.wait(&mut events, 10).unwrap(), 0, "no wake yet");

        // A wake posted before the wait still wakes it (level-triggered).
        waker.wake();
        waker.wake();
        let n = poller.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 1);
        waker.drain();
        assert_eq!(poller.wait(&mut events, 10).unwrap(), 0, "drained");
    }

    #[test]
    fn raw_eventfd_wait_readable_roundtrip() {
        let fd = raw_eventfd().unwrap();
        assert!(!wait_readable(fd, 10), "nothing written yet");
        eventfd_write(fd);
        assert!(wait_readable(fd, 1000));
        // Level-triggered: still readable until consumed.
        assert!(wait_readable(fd, 0));
        unsafe { close(fd) };
    }

    #[test]
    fn nofile_limit_raises_toward_target() {
        let now = raise_nofile_limit(1024).unwrap();
        assert!(now >= 1024 || now > 0, "soft limit reported: {now}");
        // Idempotent: asking again for less than current keeps it.
        let again = raise_nofile_limit(512).unwrap();
        assert!(again >= now.min(1024));
    }
}
