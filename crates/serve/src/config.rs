//! Server configuration: the batching, backpressure, and cache knobs.

/// Tunables for [`crate::Server`]. The defaults suit an interactive
/// deployment: sub-millisecond batching delay, a queue deep enough to
/// absorb bursts, and a cache sized for a few thousand distinct entity
/// sets.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 for an ephemeral port (tests, benches).
    pub addr: String,
    /// Largest batch handed to the model in one `locate_batch` call.
    /// 1 disables micro-batching (every text dispatched alone).
    pub max_batch: usize,
    /// How long the scheduler holds an under-full batch open waiting for
    /// more texts before flushing it anyway.
    pub max_delay_us: u64,
    /// Admission-queue capacity in texts. A `POST /predict` whose texts do
    /// not all fit is rejected with `429` (explicit shedding) rather than
    /// queued partially.
    pub queue_capacity: usize,
    /// Total cached responses across all shards; 0 disables the cache.
    pub cache_capacity: usize,
    /// Shard count for the response cache (reduces lock contention).
    pub cache_shards: usize,
    /// Server-side default for requests that do not set `fallback_prior`
    /// themselves: answer zero-entity tweets with the training-split prior
    /// instead of a typed abstention.
    pub fallback_prior: bool,
    /// Install SIGTERM/SIGINT handlers so the process drains gracefully.
    /// The CLI turns this on; in-process tests leave it off.
    pub handle_signals: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_string(),
            max_batch: 32,
            max_delay_us: 500,
            queue_capacity: 256,
            cache_capacity: 4096,
            cache_shards: 8,
            fallback_prior: false,
            handle_signals: false,
        }
    }
}

impl ServeConfig {
    /// Validates invariants that would otherwise dead-lock or divide by
    /// zero deep inside the scheduler.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_batch == 0 {
            return Err("max_batch must be at least 1".into());
        }
        if self.queue_capacity == 0 {
            return Err("queue_capacity must be at least 1".into());
        }
        if self.cache_shards == 0 {
            return Err("cache_shards must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        ServeConfig::default().validate().unwrap();
    }

    #[test]
    fn degenerate_knobs_are_rejected() {
        let c = ServeConfig { max_batch: 0, ..ServeConfig::default() };
        assert!(c.validate().is_err());
        let c = ServeConfig { queue_capacity: 0, ..ServeConfig::default() };
        assert!(c.validate().is_err());
        let c = ServeConfig { cache_shards: 0, ..ServeConfig::default() };
        assert!(c.validate().is_err());
    }
}
