//! Server configuration: the batching, backpressure, and cache knobs.

/// Tunables for [`crate::Server`]. The defaults suit an interactive
/// deployment: sub-millisecond batching delay, a queue deep enough to
/// absorb bursts, and a cache sized for a few thousand distinct entity
/// sets.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 for an ephemeral port (tests, benches).
    pub addr: String,
    /// Largest batch handed to the model in one `locate_batch` call.
    /// 1 disables micro-batching (every text dispatched alone).
    pub max_batch: usize,
    /// How long the scheduler holds an under-full batch open waiting for
    /// more texts before flushing it anyway.
    pub max_delay_us: u64,
    /// Admission-queue capacity in texts. A `POST /predict` whose texts do
    /// not all fit is rejected with `429` (explicit shedding) rather than
    /// queued partially.
    pub queue_capacity: usize,
    /// Total cached responses across all shards; 0 disables the cache.
    pub cache_capacity: usize,
    /// Shard count for the response cache (reduces lock contention).
    pub cache_shards: usize,
    /// Width (in bits, at most 64) of the SimHash entity-code signature
    /// used by the approximate cache tier. Only meaningful when
    /// `cache_hamming_max > 0`.
    pub cache_lsh_bits: u32,
    /// Largest Hamming distance between SimHash signatures the approximate
    /// cache tier accepts as a hit. 0 (the default) disables the LSH tier
    /// entirely — lookups are byte-identical to the exact cache.
    pub cache_hamming_max: u32,
    /// Server-side default for requests that do not set `fallback_prior`
    /// themselves: answer zero-entity tweets with the training-split prior
    /// instead of a typed abstention.
    pub fallback_prior: bool,
    /// Install SIGTERM/SIGINT handlers so the process drains gracefully.
    /// The CLI turns this on; in-process tests leave it off.
    pub handle_signals: bool,
    /// Hold a metrics lease for the server's lifetime so counters and
    /// histograms record. Off is the baseline leg of the overhead bench.
    pub enable_metrics: bool,
    /// Latency target the predict p99 must stay under (SLO), microseconds.
    pub slo_target_p99_us: u64,
    /// Highest acceptable 429-shed fraction before `/healthz` degrades.
    pub slo_max_shed_rate: f64,
    /// Rolling SLO window, seconds.
    pub slo_window_secs: u64,
    /// Capacity of the always-on `/debug/requests` ring.
    pub ring_capacity: usize,
    /// Log any request slower than this to stderr as JSONL; 0 disables.
    pub slow_request_us: u64,
    /// Deadline budget for requests that do not send `X-Deadline-Us`,
    /// microseconds; 0 leaves them unbounded.
    pub default_deadline_us: u64,
    /// Largest accepted request body; bigger declared bodies get 413.
    pub max_body_bytes: usize,
    /// Wall-clock budget for reading one request once its first byte
    /// arrives (the slow-loris bound), microseconds; 0 disables.
    pub read_budget_us: u64,
    /// Socket write timeout so a stalled reader cannot pin a connection
    /// thread, microseconds; 0 disables.
    pub write_timeout_us: u64,
    /// Master switch for the brownout load controller.
    pub brownout_enabled: bool,
    /// Latency target driving brownout escalation, microseconds.
    /// Deliberately separate from `slo_target_p99_us` (alerting): a
    /// tightened alerting SLO must not self-inflict a brownout.
    pub brownout_p99_us: u64,
    /// Queue-shed (429) fraction driving brownout escalation.
    pub brownout_max_shed_rate: f64,
    /// Rolling window of the brownout controller, seconds (short so
    /// recovery is observed quickly).
    pub brownout_window_secs: u64,
    /// Consecutive unhealthy controller ticks before escalating a mode.
    pub brownout_escalate_ticks: u32,
    /// Consecutive healthy controller ticks before recovering a mode.
    pub brownout_recover_ticks: u32,
    /// Minimum spacing between controller ticks, microseconds; 0 ticks
    /// on every evaluation (tests).
    pub brownout_tick_us: u64,
    /// `Retry-After` seconds advertised on brownout 503 rejections.
    pub retry_after_secs: u64,
    /// Consecutive `/reload` failures before its circuit breaker opens;
    /// 0 disables the breaker.
    pub reload_breaker_threshold: u32,
    /// How long an open `/reload` breaker rejects attempts, seconds.
    pub reload_breaker_cooldown_secs: u64,
    /// Event-loop threads sharing the connection load. Connections are
    /// handed off round-robin at accept; each loop multiplexes thousands
    /// of keep-alive sockets over one `epoll` instance.
    pub event_loops: usize,
    /// Scheduler threads per shard draining its micro-batch queue. More
    /// than one lets a shard keep batching while a batch is in flight.
    pub replicas: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_string(),
            max_batch: 32,
            max_delay_us: 500,
            queue_capacity: 256,
            cache_capacity: 4096,
            cache_shards: 8,
            cache_lsh_bits: 16,
            cache_hamming_max: 0,
            fallback_prior: false,
            handle_signals: false,
            enable_metrics: true,
            slo_target_p99_us: 100_000,
            slo_max_shed_rate: 0.01,
            slo_window_secs: 60,
            ring_capacity: 1024,
            slow_request_us: 0,
            default_deadline_us: 30_000_000,
            max_body_bytes: 1 << 20,
            read_budget_us: 2_000_000,
            write_timeout_us: 5_000_000,
            brownout_enabled: true,
            brownout_p99_us: 100_000,
            brownout_max_shed_rate: 0.05,
            brownout_window_secs: 3,
            brownout_escalate_ticks: 2,
            brownout_recover_ticks: 3,
            brownout_tick_us: 500_000,
            retry_after_secs: 1,
            reload_breaker_threshold: 3,
            reload_breaker_cooldown_secs: 10,
            event_loops: 2,
            replicas: 1,
        }
    }
}

impl ServeConfig {
    /// Validates invariants that would otherwise dead-lock or divide by
    /// zero deep inside the scheduler.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_batch == 0 {
            return Err("max_batch must be at least 1".into());
        }
        if self.queue_capacity == 0 {
            return Err("queue_capacity must be at least 1".into());
        }
        if self.cache_shards == 0 {
            return Err("cache_shards must be at least 1".into());
        }
        if self.cache_hamming_max > 0 {
            if self.cache_lsh_bits == 0 || self.cache_lsh_bits > 64 {
                return Err("cache_lsh_bits must be within [1, 64] when the LSH tier is on".into());
            }
            if self.cache_hamming_max as u64 >= self.cache_lsh_bits as u64 {
                return Err("cache_hamming_max must be below cache_lsh_bits".into());
            }
        }
        if self.ring_capacity == 0 {
            return Err("ring_capacity must be at least 1".into());
        }
        if self.slo_window_secs == 0 {
            return Err("slo_window_secs must be at least 1".into());
        }
        if !(0.0..=1.0).contains(&self.slo_max_shed_rate) {
            return Err("slo_max_shed_rate must be within [0, 1]".into());
        }
        if self.max_body_bytes == 0 {
            return Err("max_body_bytes must be at least 1".into());
        }
        if self.brownout_enabled {
            if self.brownout_window_secs == 0 {
                return Err("brownout_window_secs must be at least 1".into());
            }
            if self.brownout_escalate_ticks == 0 || self.brownout_recover_ticks == 0 {
                return Err("brownout escalate/recover ticks must be at least 1".into());
            }
            if !(0.0..=1.0).contains(&self.brownout_max_shed_rate) {
                return Err("brownout_max_shed_rate must be within [0, 1]".into());
            }
        }
        if self.retry_after_secs == 0 {
            return Err("retry_after_secs must be at least 1".into());
        }
        if self.event_loops == 0 {
            return Err("event_loops must be at least 1".into());
        }
        if self.replicas == 0 {
            return Err("replicas must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        ServeConfig::default().validate().unwrap();
    }

    #[test]
    fn degenerate_knobs_are_rejected() {
        let c = ServeConfig { max_batch: 0, ..ServeConfig::default() };
        assert!(c.validate().is_err());
        let c = ServeConfig { queue_capacity: 0, ..ServeConfig::default() };
        assert!(c.validate().is_err());
        let c = ServeConfig { cache_shards: 0, ..ServeConfig::default() };
        assert!(c.validate().is_err());
        let c = ServeConfig { cache_hamming_max: 2, cache_lsh_bits: 0, ..ServeConfig::default() };
        assert!(c.validate().is_err());
        let c = ServeConfig { cache_hamming_max: 2, cache_lsh_bits: 80, ..ServeConfig::default() };
        assert!(c.validate().is_err());
        let c = ServeConfig { cache_hamming_max: 16, cache_lsh_bits: 16, ..ServeConfig::default() };
        assert!(c.validate().is_err());
        let c = ServeConfig { cache_hamming_max: 0, cache_lsh_bits: 0, ..ServeConfig::default() };
        assert!(c.validate().is_ok(), "LSH knobs unchecked when the tier is off");
        let c = ServeConfig { ring_capacity: 0, ..ServeConfig::default() };
        assert!(c.validate().is_err());
        let c = ServeConfig { slo_window_secs: 0, ..ServeConfig::default() };
        assert!(c.validate().is_err());
        let c = ServeConfig { slo_max_shed_rate: 1.5, ..ServeConfig::default() };
        assert!(c.validate().is_err());
        let c = ServeConfig { max_body_bytes: 0, ..ServeConfig::default() };
        assert!(c.validate().is_err());
        let c = ServeConfig { brownout_escalate_ticks: 0, ..ServeConfig::default() };
        assert!(c.validate().is_err());
        let c = ServeConfig {
            brownout_escalate_ticks: 0,
            brownout_enabled: false,
            ..ServeConfig::default()
        };
        assert!(c.validate().is_ok(), "brownout knobs unchecked when disabled");
        let c = ServeConfig { retry_after_secs: 0, ..ServeConfig::default() };
        assert!(c.validate().is_err());
        let c = ServeConfig { event_loops: 0, ..ServeConfig::default() };
        assert!(c.validate().is_err());
        let c = ServeConfig { replicas: 0, ..ServeConfig::default() };
        assert!(c.validate().is_err());
    }
}
