//! A sharded LRU cache for rendered predictions.
//!
//! EDGE predictions are a pure function of the *resolved entity set* (the
//! recognizer sorts and dedups mentions), the fallback policy, and the
//! model generation — so the cache key is exactly that triple, and a hit
//! returns the fully rendered JSON fragment without touching the model.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// What uniquely determines a rendered prediction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Model generation the entry was computed under.
    pub generation: u64,
    /// Resolved entity ids (sorted + deduped by the recognizer).
    pub entities: Vec<usize>,
    /// Whether the zero-entity prior fallback was in effect.
    pub fallback: bool,
}

struct Shard {
    map: HashMap<CacheKey, (u64, Arc<Vec<u8>>)>,
    tick: u64,
}

/// Sharded LRU over rendered JSON fragments. Eviction is an O(shard)
/// min-tick scan — shards stay small (capacity/shards entries), so the
/// scan is cheaper than the bookkeeping of a linked LRU at this size.
pub struct ResponseCache {
    shards: Vec<Mutex<Shard>>,
    per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResponseCache {
    /// Capacity 0 builds a disabled cache: every lookup misses, inserts
    /// are dropped.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity / shards;
        Self {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard { map: HashMap::new(), tick: 0 }))
                .collect(),
            per_shard,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &CacheKey) -> &Mutex<Shard> {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Looks the key up, refreshing its recency on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<Vec<u8>>> {
        if self.per_shard == 0 {
            return None;
        }
        let mut shard = self.shard_of(key).lock().unwrap_or_else(|e| e.into_inner());
        shard.tick += 1;
        let tick = shard.tick;
        match shard.map.get_mut(key) {
            Some((last, bytes)) => {
                *last = tick;
                let bytes = Arc::clone(bytes);
                self.hits.fetch_add(1, Ordering::Relaxed);
                edge_obs::counter!("serve.cache.hits").inc(1);
                Some(bytes)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                edge_obs::counter!("serve.cache.misses").inc(1);
                None
            }
        }
    }

    /// Inserts a rendered fragment, evicting the least-recently-used entry
    /// of the shard when full.
    pub fn insert(&self, key: CacheKey, bytes: Arc<Vec<u8>>) {
        if self.per_shard == 0 {
            return;
        }
        let mut shard = self.shard_of(&key).lock().unwrap_or_else(|e| e.into_inner());
        shard.tick += 1;
        let tick = shard.tick;
        if shard.map.len() >= self.per_shard && !shard.map.contains_key(&key) {
            if let Some(oldest) =
                shard.map.iter().min_by_key(|(_, (last, _))| *last).map(|(k, _)| k.clone())
            {
                shard.map.remove(&oldest);
            }
        }
        shard.map.insert(key, (tick, bytes));
    }

    /// Drops every entry — called on hot reload so stale generations
    /// cannot be served (keys carry the generation too; clearing just
    /// reclaims the memory immediately).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap_or_else(|e| e.into_inner()).map.clear();
        }
    }

    /// Lifetime (hits, misses) — independent of whether the global metrics
    /// registry is enabled.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(id: usize) -> CacheKey {
        CacheKey { generation: 1, entities: vec![id], fallback: false }
    }

    #[test]
    fn hit_after_insert_miss_after_clear() {
        let cache = ResponseCache::new(64, 4);
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), Arc::new(b"x".to_vec()));
        assert_eq!(cache.get(&key(1)).unwrap().as_slice(), b"x");
        cache.clear();
        assert!(cache.get(&key(1)).is_none());
        assert_eq!(cache.stats(), (1, 2));
    }

    #[test]
    fn distinct_generations_do_not_collide() {
        let cache = ResponseCache::new(64, 4);
        cache.insert(CacheKey { generation: 1, ..key(7) }, Arc::new(b"old".to_vec()));
        let new_gen = CacheKey { generation: 2, ..key(7) };
        assert!(cache.get(&new_gen).is_none());
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        // One shard of capacity 2 keeps the recently touched keys.
        let cache = ResponseCache::new(2, 1);
        cache.insert(key(1), Arc::new(b"1".to_vec()));
        cache.insert(key(2), Arc::new(b"2".to_vec()));
        assert!(cache.get(&key(1)).is_some()); // refresh 1
        cache.insert(key(3), Arc::new(b"3".to_vec())); // evicts 2
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(2)).is_none());
        assert!(cache.get(&key(3)).is_some());
    }

    #[test]
    fn capacity_zero_disables_the_cache() {
        let cache = ResponseCache::new(0, 4);
        cache.insert(key(1), Arc::new(b"x".to_vec()));
        assert!(cache.get(&key(1)).is_none());
    }
}
