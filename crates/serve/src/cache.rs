//! A sharded LRU cache for rendered predictions, with an optional
//! approximate (LSH) tier.
//!
//! EDGE predictions are a pure function of the *resolved entity set* (the
//! recognizer sorts and dedups mentions), the fallback policy, and the
//! model generation — so the cache key is exactly that triple, and a hit
//! returns the fully rendered JSON fragment without touching the model.
//!
//! The approximate tier (off by default) SimHashes each entity set into a
//! compact binary code: every entity votes its `splitmix64` bit pattern,
//! the per-bit majority becomes the signature. Entity sets that mostly
//! overlap land within a small Hamming distance, so a miss in the exact
//! map can still be answered by a near neighbor — useful for retweet
//! storms where sets differ by one incidental entity. A neighbor hit
//! serves the *neighbor's* rendered prediction, so this trades accuracy
//! for hit rate; `hamming_max == 0` disables the tier entirely and the
//! cache is byte-identical to the exact-only behavior. Generation and
//! fallback policy always match exactly — approximation never crosses a
//! model reload.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// What uniquely determines a rendered prediction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Model generation the entry was computed under.
    pub generation: u64,
    /// Resolved entity ids (sorted + deduped by the recognizer).
    pub entities: Vec<usize>,
    /// Whether the zero-entity prior fallback was in effect.
    pub fallback: bool,
}

struct Shard {
    map: HashMap<CacheKey, (u64, Arc<Vec<u8>>)>,
    tick: u64,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// SimHash over the resolved entity set: each entity's `splitmix64` bit
/// pattern votes ±1 per signature bit, the majority wins. Deterministic,
/// order-independent (keys arrive sorted + deduped anyway), and stable
/// across processes — no random hyperplanes to persist.
fn simhash(entities: &[usize], bits: u32) -> u64 {
    let mut votes = [0i32; 64];
    for &e in entities {
        let h = splitmix64(e as u64);
        for (i, v) in votes.iter_mut().enumerate().take(bits as usize) {
            *v += if (h >> i) & 1 == 1 { 1 } else { -1 };
        }
    }
    let mut sig = 0u64;
    for (i, &v) in votes.iter().enumerate().take(bits as usize) {
        if v > 0 {
            sig |= 1 << i;
        }
    }
    sig
}

/// One entry of the approximate tier: the signature plus everything that
/// must match *exactly* for a neighbor hit to be sound.
struct LshEntry {
    generation: u64,
    fallback: bool,
    signature: u64,
    tick: u64,
    bytes: Arc<Vec<u8>>,
}

/// The approximate tier lives in one flat ring, not the exact shards: a
/// Hamming-ball query has no single home shard (neighbors hash apart), so
/// sharding it would silently drop most candidates.
struct LshRing {
    entries: Vec<LshEntry>,
    tick: u64,
}

/// Sharded LRU over rendered JSON fragments. Eviction is an O(shard)
/// min-tick scan — shards stay small (capacity/shards entries), so the
/// scan is cheaper than the bookkeeping of a linked LRU at this size.
/// When `hamming_max > 0` a second, approximate tier answers exact-map
/// misses by linear XOR+popcount scan over SimHash signatures.
pub struct ResponseCache {
    shards: Vec<Mutex<Shard>>,
    per_shard: usize,
    lsh_bits: u32,
    hamming_max: u32,
    lsh: Mutex<LshRing>,
    hits: AtomicU64,
    misses: AtomicU64,
    lsh_hits: AtomicU64,
}

impl ResponseCache {
    /// Capacity 0 builds a disabled cache: every lookup misses, inserts
    /// are dropped. `hamming_max` 0 (or `lsh_bits` 0) disables the
    /// approximate tier, leaving behavior byte-identical to the exact
    /// cache.
    pub fn new(capacity: usize, shards: usize, lsh_bits: u32, hamming_max: u32) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity / shards;
        Self {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard { map: HashMap::new(), tick: 0 }))
                .collect(),
            per_shard,
            lsh_bits: lsh_bits.min(64),
            hamming_max,
            lsh: Mutex::new(LshRing { entries: Vec::new(), tick: 0 }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            lsh_hits: AtomicU64::new(0),
        }
    }

    fn lsh_enabled(&self) -> bool {
        self.hamming_max > 0 && self.lsh_bits > 0 && self.per_shard > 0
    }

    fn shard_of(&self, key: &CacheKey) -> &Mutex<Shard> {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Looks the key up, refreshing its recency on a hit. On an exact
    /// miss the approximate tier (when enabled) is consulted for the
    /// nearest signature within the Hamming budget.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<Vec<u8>>> {
        if self.per_shard == 0 {
            return None;
        }
        {
            let mut shard = self.shard_of(key).lock().unwrap_or_else(|e| e.into_inner());
            shard.tick += 1;
            let tick = shard.tick;
            if let Some((last, bytes)) = shard.map.get_mut(key) {
                *last = tick;
                let bytes = Arc::clone(bytes);
                self.hits.fetch_add(1, Ordering::Relaxed);
                edge_obs::counter!("serve.cache.hits").inc(1);
                return Some(bytes);
            }
        }
        if self.lsh_enabled() {
            if let Some(bytes) = self.lsh_get(key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.lsh_hits.fetch_add(1, Ordering::Relaxed);
                edge_obs::counter!("serve.cache.hits").inc(1);
                edge_obs::counter!("serve.cache.lsh_hits").inc(1);
                return Some(bytes);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        edge_obs::counter!("serve.cache.misses").inc(1);
        None
    }

    /// Scans the approximate tier for the signature nearest to `key`'s
    /// within `hamming_max`, most recent on ties. O(ring), one popcount
    /// per entry.
    fn lsh_get(&self, key: &CacheKey) -> Option<Arc<Vec<u8>>> {
        let sig = simhash(&key.entities, self.lsh_bits);
        let mut ring = self.lsh.lock().unwrap_or_else(|e| e.into_inner());
        ring.tick += 1;
        let tick = ring.tick;
        let mut best: Option<(u32, u64, usize)> = None;
        for (i, e) in ring.entries.iter().enumerate() {
            if e.generation != key.generation || e.fallback != key.fallback {
                continue;
            }
            let d = (e.signature ^ sig).count_ones();
            if d <= self.hamming_max
                && best.map_or(true, |(bd, bt, _)| d < bd || (d == bd && e.tick > bt))
            {
                best = Some((d, e.tick, i));
            }
        }
        best.map(|(_, _, i)| {
            let entry = &mut ring.entries[i];
            entry.tick = tick;
            Arc::clone(&entry.bytes)
        })
    }

    /// Inserts a rendered fragment, evicting the least-recently-used entry
    /// of the shard when full.
    pub fn insert(&self, key: CacheKey, bytes: Arc<Vec<u8>>) {
        if self.per_shard == 0 {
            return;
        }
        let mut shard = self.shard_of(&key).lock().unwrap_or_else(|e| e.into_inner());
        shard.tick += 1;
        let tick = shard.tick;
        if shard.map.len() >= self.per_shard && !shard.map.contains_key(&key) {
            if let Some(oldest) =
                shard.map.iter().min_by_key(|(_, (last, _))| *last).map(|(k, _)| k.clone())
            {
                shard.map.remove(&oldest);
            }
        }
        shard.map.insert(key.clone(), (tick, bytes.clone()));
        drop(shard);

        if self.lsh_enabled() {
            let signature = simhash(&key.entities, self.lsh_bits);
            let mut ring = self.lsh.lock().unwrap_or_else(|e| e.into_inner());
            ring.tick += 1;
            let tick = ring.tick;
            // Same (generation, fallback, signature) → overwrite in place;
            // otherwise LRU-evict once the ring reaches the cache capacity.
            if let Some(e) = ring.entries.iter_mut().find(|e| {
                e.generation == key.generation
                    && e.fallback == key.fallback
                    && e.signature == signature
            }) {
                e.tick = tick;
                e.bytes = bytes;
                return;
            }
            let cap = self.per_shard * self.shards.len();
            if ring.entries.len() >= cap {
                if let Some(oldest) =
                    ring.entries.iter().enumerate().min_by_key(|(_, e)| e.tick).map(|(i, _)| i)
                {
                    ring.entries.swap_remove(oldest);
                }
            }
            ring.entries.push(LshEntry {
                generation: key.generation,
                fallback: key.fallback,
                signature,
                tick,
                bytes,
            });
        }
    }

    /// Drops every entry — called on hot reload so stale generations
    /// cannot be served (keys carry the generation too; clearing just
    /// reclaims the memory immediately).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap_or_else(|e| e.into_inner()).map.clear();
        }
        self.lsh.lock().unwrap_or_else(|e| e.into_inner()).entries.clear();
    }

    /// Lifetime (hits, misses) — independent of whether the global metrics
    /// registry is enabled. LSH-tier hits are included in hits and also
    /// reported separately by [`Self::lsh_hit_count`].
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }

    /// How many hits were served by the approximate tier.
    pub fn lsh_hit_count(&self) -> u64 {
        self.lsh_hits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(id: usize) -> CacheKey {
        CacheKey { generation: 1, entities: vec![id], fallback: false }
    }

    #[test]
    fn hit_after_insert_miss_after_clear() {
        let cache = ResponseCache::new(64, 4, 0, 0);
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), Arc::new(b"x".to_vec()));
        assert_eq!(cache.get(&key(1)).unwrap().as_slice(), b"x");
        cache.clear();
        assert!(cache.get(&key(1)).is_none());
        assert_eq!(cache.stats(), (1, 2));
    }

    #[test]
    fn distinct_generations_do_not_collide() {
        let cache = ResponseCache::new(64, 4, 0, 0);
        cache.insert(CacheKey { generation: 1, ..key(7) }, Arc::new(b"old".to_vec()));
        let new_gen = CacheKey { generation: 2, ..key(7) };
        assert!(cache.get(&new_gen).is_none());
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        // One shard of capacity 2 keeps the recently touched keys.
        let cache = ResponseCache::new(2, 1, 0, 0);
        cache.insert(key(1), Arc::new(b"1".to_vec()));
        cache.insert(key(2), Arc::new(b"2".to_vec()));
        assert!(cache.get(&key(1)).is_some()); // refresh 1
        cache.insert(key(3), Arc::new(b"3".to_vec())); // evicts 2
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(2)).is_none());
        assert!(cache.get(&key(3)).is_some());
    }

    #[test]
    fn capacity_zero_disables_the_cache() {
        let cache = ResponseCache::new(0, 4, 0, 0);
        cache.insert(key(1), Arc::new(b"x".to_vec()));
        assert!(cache.get(&key(1)).is_none());
    }

    /// An overlapping (but not equal) entity set must land within a small
    /// Hamming distance of the original's signature.
    fn near_neighbor_sets(bits: u32, hamming_max: u32) -> (Vec<usize>, Vec<usize>) {
        let base: Vec<usize> = (0..12).collect();
        for extra in 100..100_000 {
            let mut near = base.clone();
            near.push(extra);
            let d = (simhash(&base, bits) ^ simhash(&near, bits)).count_ones();
            if d > 0 && d <= hamming_max {
                return (base, near);
            }
        }
        panic!("no near neighbor found");
    }

    #[test]
    fn lsh_tier_answers_near_neighbor_misses() {
        let cache = ResponseCache::new(64, 4, 16, 3);
        let (base, near) = near_neighbor_sets(16, 3);
        cache.insert(
            CacheKey { generation: 1, entities: base, fallback: false },
            Arc::new(b"cached".to_vec()),
        );
        let probe = CacheKey { generation: 1, entities: near, fallback: false };
        assert_eq!(cache.get(&probe).unwrap().as_slice(), b"cached");
        assert_eq!(cache.lsh_hit_count(), 1);
        assert_eq!(cache.stats().0, 1, "LSH hits count as hits");
    }

    #[test]
    fn lsh_tier_never_crosses_generation_or_fallback() {
        let cache = ResponseCache::new(64, 4, 16, 16 - 1);
        let entities: Vec<usize> = (0..8).collect();
        cache.insert(
            CacheKey { generation: 1, entities: entities.clone(), fallback: false },
            Arc::new(b"gen1".to_vec()),
        );
        // Identical signature, different generation / fallback: both miss.
        assert!(cache
            .get(&CacheKey { generation: 2, entities: entities.clone(), fallback: false })
            .is_none());
        assert!(cache.get(&CacheKey { generation: 1, entities, fallback: true }).is_none());
        assert_eq!(cache.lsh_hit_count(), 0);
    }

    #[test]
    fn hamming_zero_is_byte_identical_to_exact_cache() {
        // Same operation sequence against an exact cache and a
        // hamming_max=0 cache: every outcome must agree, including for
        // near-neighbor probes the LSH tier would have answered.
        let exact = ResponseCache::new(64, 4, 0, 0);
        let off = ResponseCache::new(64, 4, 16, 0);
        let (base, near) = near_neighbor_sets(16, 3);
        for c in [&exact, &off] {
            c.insert(
                CacheKey { generation: 1, entities: base.clone(), fallback: false },
                Arc::new(b"v".to_vec()),
            );
        }
        let probes = [
            CacheKey { generation: 1, entities: base, fallback: false },
            CacheKey { generation: 1, entities: near, fallback: false },
            CacheKey { generation: 1, entities: vec![999], fallback: false },
        ];
        for p in &probes {
            let (a, b) = (exact.get(p), off.get(p));
            assert_eq!(a.is_some(), b.is_some(), "outcome diverged for {p:?}");
            if let (Some(a), Some(b)) = (a, b) {
                assert_eq!(a.as_slice(), b.as_slice());
            }
        }
        assert_eq!(exact.stats(), off.stats());
        assert_eq!(off.lsh_hit_count(), 0);
    }

    #[test]
    fn lsh_ring_is_bounded_and_cleared() {
        let cache = ResponseCache::new(4, 1, 16, 3);
        for i in 0..64 {
            cache.insert(
                CacheKey { generation: 1, entities: vec![i, i + 1000], fallback: false },
                Arc::new(vec![i as u8]),
            );
        }
        let ring_len = cache.lsh.lock().unwrap().entries.len();
        assert!(ring_len <= 4, "ring grew to {ring_len}");
        cache.clear();
        assert!(cache.lsh.lock().unwrap().entries.is_empty());
    }
}
