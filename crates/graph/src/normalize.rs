//! Symmetric GCN normalization (Kipf & Welling; the paper's Eq. 1).
//!
//! Produces the constant propagation operator `D̃^{-1/2} Ã D̃^{-1/2}` with
//! `Ã = A + I`, as COO triplets the tensor crate turns into a CSR matrix.

use crate::graph::EntityGraph;

/// The triplets of `D̃^{-1/2} (A + I) D̃^{-1/2}`.
///
/// `D̃` is the diagonal degree matrix of `Ã` (self-connections included), so
/// every row of the result has positive diagonal mass even for isolated
/// nodes — an isolated entity simply keeps its own embedding under
/// diffusion.
pub fn normalized_adjacency_triplets(g: &EntityGraph) -> Vec<(usize, usize, f32)> {
    let n = g.n_nodes();
    // Degrees of Ã = A + I.
    let deg: Vec<f32> = (0..n).map(|i| g.weighted_degree(i) + 1.0).collect();
    let inv_sqrt: Vec<f32> = deg.iter().map(|d| 1.0 / d.sqrt()).collect();

    let mut triplets = Vec::with_capacity(2 * g.n_edges() + n);
    for i in 0..n {
        triplets.push((i, i, inv_sqrt[i] * inv_sqrt[i])); // the self-connection
        for (j, w) in g.neighbors(i) {
            triplets.push((i, j, w * inv_sqrt[i] * inv_sqrt[j]));
        }
    }
    triplets
}

/// Row sums of the normalized adjacency (diagnostic: all rows of a
/// well-formed operator are in `(0, 1]` and an isolated node's row sums to
/// exactly 1).
pub fn normalized_row_sums(triplets: &[(usize, usize, f32)], n: usize) -> Vec<f32> {
    let mut sums = vec![0.0; n];
    for &(r, _, v) in triplets {
        sums[r] += v;
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(triplets: &[(usize, usize, f32)], n: usize) -> Vec<Vec<f32>> {
        let mut m = vec![vec![0.0; n]; n];
        for &(r, c, v) in triplets {
            m[r][c] += v;
        }
        m
    }

    #[test]
    fn isolated_node_keeps_itself() {
        let g = EntityGraph::new(3);
        let t = normalized_adjacency_triplets(&g);
        let m = dense(&t, 3);
        for (i, row) in m.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(v, if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn two_node_unit_edge_known_values() {
        let mut g = EntityGraph::new(2);
        g.add_edge_weight(0, 1, 1.0);
        // Ã = [[1,1],[1,1]], D̃ = diag(2,2) → every entry 0.5.
        let m = dense(&normalized_adjacency_triplets(&g), 2);
        for row in &m {
            for &v in row {
                assert!((v - 0.5).abs() < 1e-6, "{v}");
            }
        }
    }

    #[test]
    fn result_is_symmetric() {
        let mut g = EntityGraph::new(5);
        g.add_edge_weight(0, 1, 3.0);
        g.add_edge_weight(1, 2, 1.0);
        g.add_edge_weight(2, 4, 7.0);
        g.add_edge_weight(0, 4, 2.0);
        let m = dense(&normalized_adjacency_triplets(&g), 5);
        for (i, row) in m.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                assert!((v - m[j][i]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn entries_positive_and_bounded() {
        let mut g = EntityGraph::new(4);
        g.add_edge_weight(0, 1, 10.0);
        g.add_edge_weight(1, 2, 0.5);
        let t = normalized_adjacency_triplets(&g);
        for &(_, _, v) in &t {
            assert!(v > 0.0 && v <= 1.0, "entry {v}");
        }
    }

    #[test]
    fn row_sums_positive_and_regular_graph_sums_to_one() {
        // General graphs: row sums are positive and finite. k-regular
        // graphs: D̃^{-1/2}ÃD̃^{-1/2} is doubly stochastic, rows sum to 1.
        let mut irregular = EntityGraph::new(6);
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (1, 4)] {
            irregular.add_edge_weight(a, b, 1.0);
        }
        let t = normalized_adjacency_triplets(&irregular);
        for (i, s) in normalized_row_sums(&t, 6).iter().enumerate() {
            assert!(*s > 0.0 && s.is_finite(), "row {i}: {s}");
        }

        // A 4-cycle is 2-regular: every row sums to exactly 1.
        let mut cycle = EntityGraph::new(4);
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            cycle.add_edge_weight(a, b, 1.0);
        }
        let t = normalized_adjacency_triplets(&cycle);
        for (i, s) in normalized_row_sums(&t, 4).iter().enumerate() {
            assert!((s - 1.0).abs() < 1e-6, "row {i}: {s}");
        }
    }

    #[test]
    fn heavier_edges_get_proportionally_more_mass() {
        let mut g = EntityGraph::new(3);
        g.add_edge_weight(0, 1, 9.0);
        g.add_edge_weight(0, 2, 1.0);
        let m = dense(&normalized_adjacency_triplets(&g), 3);
        assert!(m[0][1] > m[0][2] * 2.0, "heavy edge should dominate");
    }
}
