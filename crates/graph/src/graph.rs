//! The weighted undirected entity graph.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// An undirected graph with weighted edges over nodes `0..n`.
///
/// In EDGE, "each node corresponds to an entity … If two named entities v_i
/// and v_j appear in the same tweet, there will be an edge e_{i,j} … The
/// weight e_{i,j} is the number of the co-occurrences of two referenced
/// entities in the training set."
///
/// Adjacency is kept in per-node ordered maps so iteration order (and hence
/// every downstream computation) is deterministic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntityGraph {
    adj: Vec<BTreeMap<usize, f32>>,
}

impl EntityGraph {
    /// An edgeless graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        Self { adj: vec![BTreeMap::new(); n] }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    pub fn n_edges(&self) -> usize {
        self.adj.iter().map(BTreeMap::len).sum::<usize>() / 2
    }

    /// Adds `weight` to the undirected edge `{a, b}` (creating it at weight
    /// 0 first). Self-loops are rejected: the GCN normalization adds its own
    /// self-connections (Ã = A + I), and the paper's co-occurrence counts
    /// are over *pairs* of distinct entities.
    pub fn add_edge_weight(&mut self, a: usize, b: usize, weight: f32) {
        assert!(a < self.adj.len() && b < self.adj.len(), "node out of range");
        assert_ne!(a, b, "self-loops are not part of the co-occurrence graph");
        assert!(weight > 0.0, "edge weights must be positive");
        *self.adj[a].entry(b).or_insert(0.0) += weight;
        *self.adj[b].entry(a).or_insert(0.0) += weight;
    }

    /// The weight of edge `{a, b}` (0 when absent).
    pub fn edge_weight(&self, a: usize, b: usize) -> f32 {
        self.adj[a].get(&b).copied().unwrap_or(0.0)
    }

    /// Iterates the neighbors of `node` as `(neighbor, weight)` in
    /// ascending neighbor order.
    pub fn neighbors(&self, node: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        self.adj[node].iter().map(|(&n, &w)| (n, w))
    }

    /// The degree (neighbor count) of `node`.
    pub fn degree(&self, node: usize) -> usize {
        self.adj[node].len()
    }

    /// The weighted degree (sum of incident edge weights) of `node`.
    pub fn weighted_degree(&self, node: usize) -> f32 {
        self.adj[node].values().sum()
    }

    /// Iterates every undirected edge once as `(a, b, weight)` with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        self.adj.iter().enumerate().flat_map(|(a, nbrs)| {
            nbrs.iter().filter_map(move |(&b, &w)| (a < b).then_some((a, b, w)))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = EntityGraph::new(5);
        assert_eq!(g.n_nodes(), 5);
        assert_eq!(g.n_edges(), 0);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.edge_weight(0, 1), 0.0);
    }

    #[test]
    fn add_edge_is_symmetric_and_accumulates() {
        let mut g = EntityGraph::new(3);
        g.add_edge_weight(0, 2, 1.0);
        g.add_edge_weight(2, 0, 2.0);
        assert_eq!(g.edge_weight(0, 2), 3.0);
        assert_eq!(g.edge_weight(2, 0), 3.0);
        assert_eq!(g.n_edges(), 1);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.weighted_degree(2), 3.0);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loops_rejected() {
        EntityGraph::new(2).add_edge_weight(1, 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bounds_checked() {
        EntityGraph::new(2).add_edge_weight(0, 5, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        EntityGraph::new(2).add_edge_weight(0, 1, 0.0);
    }

    #[test]
    fn neighbors_in_order() {
        let mut g = EntityGraph::new(4);
        g.add_edge_weight(1, 3, 1.0);
        g.add_edge_weight(1, 0, 2.0);
        g.add_edge_weight(1, 2, 3.0);
        let nbrs: Vec<(usize, f32)> = g.neighbors(1).collect();
        assert_eq!(nbrs, vec![(0, 2.0), (2, 3.0), (3, 1.0)]);
    }

    #[test]
    fn edges_iterates_each_once() {
        let mut g = EntityGraph::new(4);
        g.add_edge_weight(0, 1, 1.0);
        g.add_edge_weight(2, 3, 2.0);
        g.add_edge_weight(0, 3, 5.0);
        let edges: Vec<(usize, usize, f32)> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        assert!(edges.contains(&(0, 1, 1.0)));
        assert!(edges.contains(&(2, 3, 2.0)));
        assert!(edges.contains(&(0, 3, 5.0)));
        assert!(edges.iter().all(|&(a, b, _)| a < b));
    }
}
