//! Graph analysis: ego networks, connected components and summary
//! statistics.
//!
//! The paper's diffusion argument is topological — "by stacking n layers of
//! graph convolutions, we can diffuse the semantic embedding of each node
//! over its n-hop ego-net" — so the test suite and the experiment audit need
//! first-class ego-net and connectivity queries.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::graph::EntityGraph;

/// The nodes within `hops` hops of `center` (including `center` itself),
/// sorted ascending. This is the receptive field of a `hops`-layer GCN at
/// `center`.
pub fn ego_net(g: &EntityGraph, center: usize, hops: usize) -> Vec<usize> {
    assert!(center < g.n_nodes(), "center out of range");
    let mut dist = vec![usize::MAX; g.n_nodes()];
    dist[center] = 0;
    let mut queue = VecDeque::from([center]);
    let mut out = vec![center];
    while let Some(u) = queue.pop_front() {
        if dist[u] == hops {
            continue;
        }
        for (v, _) in g.neighbors(u) {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                out.push(v);
                queue.push_back(v);
            }
        }
    }
    out.sort_unstable();
    out
}

/// Connected components; returns a component id per node (ids are dense,
/// assigned in order of lowest member node).
pub fn connected_components(g: &EntityGraph) -> Vec<usize> {
    let n = g.n_nodes();
    let mut comp = vec![usize::MAX; n];
    let mut next = 0;
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        comp[start] = next;
        let mut queue = VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            for (v, _) in g.neighbors(u) {
                if comp[v] == usize::MAX {
                    comp[v] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    comp
}

/// Summary statistics of an entity graph (reported by the experiment
/// harness alongside Table II).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Node count.
    pub n_nodes: usize,
    /// Undirected edge count.
    pub n_edges: usize,
    /// Mean degree.
    pub mean_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Number of isolated nodes.
    pub n_isolated: usize,
    /// Number of connected components.
    pub n_components: usize,
    /// Size of the largest component.
    pub largest_component: usize,
}

/// Computes [`GraphStats`].
pub fn graph_stats(g: &EntityGraph) -> GraphStats {
    let n = g.n_nodes();
    let comp = connected_components(g);
    let n_components = comp.iter().copied().max().map_or(0, |m| m + 1);
    let mut sizes = vec![0usize; n_components];
    for &c in &comp {
        sizes[c] += 1;
    }
    let degrees: Vec<usize> = (0..n).map(|i| g.degree(i)).collect();
    GraphStats {
        n_nodes: n,
        n_edges: g.n_edges(),
        mean_degree: if n == 0 { 0.0 } else { degrees.iter().sum::<usize>() as f64 / n as f64 },
        max_degree: degrees.iter().copied().max().unwrap_or(0),
        n_isolated: degrees.iter().filter(|&&d| d == 0).count(),
        n_components,
        largest_component: sizes.into_iter().max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path 0-1-2-3 plus isolated node 4.
    fn path_graph() -> EntityGraph {
        let mut g = EntityGraph::new(5);
        g.add_edge_weight(0, 1, 1.0);
        g.add_edge_weight(1, 2, 1.0);
        g.add_edge_weight(2, 3, 1.0);
        g
    }

    #[test]
    fn ego_net_hop_counts() {
        let g = path_graph();
        assert_eq!(ego_net(&g, 0, 0), vec![0]);
        assert_eq!(ego_net(&g, 0, 1), vec![0, 1]);
        assert_eq!(ego_net(&g, 0, 2), vec![0, 1, 2]);
        assert_eq!(ego_net(&g, 0, 10), vec![0, 1, 2, 3]);
        assert_eq!(ego_net(&g, 1, 1), vec![0, 1, 2]);
        assert_eq!(ego_net(&g, 4, 3), vec![4]);
    }

    #[test]
    fn two_hop_matches_two_gcn_layers_reach() {
        // The paper's 2-layer default reaches exactly the 2-hop ego net.
        let g = path_graph();
        let reach = ego_net(&g, 3, 2);
        assert_eq!(reach, vec![1, 2, 3]);
    }

    #[test]
    fn components_are_identified() {
        let g = path_graph();
        let comp = connected_components(&g);
        assert_eq!(comp[0], comp[3]);
        assert_ne!(comp[0], comp[4]);
    }

    #[test]
    fn stats_on_path_graph() {
        let s = graph_stats(&path_graph());
        assert_eq!(s.n_nodes, 5);
        assert_eq!(s.n_edges, 3);
        assert_eq!(s.n_components, 2);
        assert_eq!(s.largest_component, 4);
        assert_eq!(s.n_isolated, 1);
        assert_eq!(s.max_degree, 2);
        assert!((s.mean_degree - 1.2).abs() < 1e-12);
    }

    #[test]
    fn stats_on_empty_graph() {
        let s = graph_stats(&EntityGraph::new(0));
        assert_eq!(s.n_nodes, 0);
        assert_eq!(s.n_components, 0);
        assert_eq!(s.mean_degree, 0.0);
    }
}
