//! Co-occurrence graph construction from per-tweet entity sets.

use crate::graph::EntityGraph;

/// Builds the entity co-occurrence graph of the paper's Section III-A2:
/// every unordered pair of *distinct* entities appearing in the same tweet
/// contributes 1 to that pair's edge weight. A repeated entity "will only be
/// counted once in the set", which the caller guarantees by passing sets —
/// this function deduplicates defensively anyway.
///
/// `n_entities` is the node-id space; ids in `tweets` must be `< n_entities`.
pub fn build_cooccurrence_graph<'a>(
    n_entities: usize,
    tweets: impl IntoIterator<Item = &'a [usize]>,
) -> EntityGraph {
    let mut g = EntityGraph::new(n_entities);
    for entity_ids in tweets {
        let mut ids: Vec<usize> = entity_ids.to_vec();
        ids.sort_unstable();
        ids.dedup();
        for i in 0..ids.len() {
            for j in i + 1..ids.len() {
                g.add_edge_weight(ids[i], ids[j], 1.0);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_within_tweet_get_edges() {
        let tweets: Vec<Vec<usize>> = vec![vec![0, 1, 2]];
        let g = build_cooccurrence_graph(4, tweets.iter().map(Vec::as_slice));
        assert_eq!(g.edge_weight(0, 1), 1.0);
        assert_eq!(g.edge_weight(0, 2), 1.0);
        assert_eq!(g.edge_weight(1, 2), 1.0);
        assert_eq!(g.edge_weight(0, 3), 0.0);
        assert_eq!(g.n_edges(), 3);
    }

    #[test]
    fn cooccurrence_counts_accumulate_across_tweets() {
        let tweets: Vec<Vec<usize>> = vec![vec![0, 1], vec![1, 0], vec![0, 2]];
        let g = build_cooccurrence_graph(3, tweets.iter().map(Vec::as_slice));
        assert_eq!(g.edge_weight(0, 1), 2.0);
        assert_eq!(g.edge_weight(0, 2), 1.0);
    }

    #[test]
    fn repeated_entity_in_one_tweet_counts_once() {
        let tweets: Vec<Vec<usize>> = vec![vec![0, 1, 0, 1, 1]];
        let g = build_cooccurrence_graph(2, tweets.iter().map(Vec::as_slice));
        assert_eq!(g.edge_weight(0, 1), 1.0);
    }

    #[test]
    fn single_entity_tweets_add_nothing() {
        let tweets: Vec<Vec<usize>> = vec![vec![0], vec![1], vec![]];
        let g = build_cooccurrence_graph(2, tweets.iter().map(Vec::as_slice));
        assert_eq!(g.n_edges(), 0);
    }
}
