//! Entity-graph substrate for the EDGE reproduction.
//!
//! Provides the co-occurrence entity graph of the paper's Section III-A2,
//! the symmetric GCN normalization of Eq. 1, and the ego-net/component
//! analysis used to audit the diffusion mechanism.

pub mod analysis;
pub mod cooccur;
pub mod graph;
pub mod normalize;

pub use analysis::{connected_components, ego_net, graph_stats, GraphStats};
pub use cooccur::build_cooccurrence_graph;
pub use graph::EntityGraph;
pub use normalize::{normalized_adjacency_triplets, normalized_row_sums};
