//! Arena recycling must be invisible: a tape carved out of recycled buffers
//! produces results **bit-for-bit identical** to a freshly allocating tape,
//! at every thread count, and buffers the caller still holds (gradients
//! handed out by `backward`) are never aliased by later tapes.

use std::sync::Arc;

use edge_tensor::init::xavier_uniform;
use edge_tensor::{CsrMatrix, Matrix, ParamId, ParamStore, Tape, TapeArena};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THREAD_SWEEP: [usize; 3] = [1, 2, 8];

/// A miniature EDGE training step: diffusion (matmul + spmm + relu), gather /
/// attention / concat aggregation, mixture head, fused GMM loss — every op
/// class the real train loop records.
struct Setup {
    adjacency: Arc<CsrMatrix>,
    features: Arc<Matrix>,
    params: ParamStore,
    w_gcn: ParamId,
    q1: ParamId,
    b1: ParamId,
    q2: ParamId,
    b2: ParamId,
    /// Per-tweet entity index lists, one batch per inner vec-of-vecs.
    batches: Vec<Vec<Vec<usize>>>,
    targets: Vec<Vec<(f64, f64)>>,
}

const N_ENTITIES: usize = 24;
const DIM: usize = 8;
const M: usize = 3;

fn setup() -> Setup {
    let mut rng = StdRng::seed_from_u64(42);
    let triplets: Vec<(usize, usize, f32)> = (0..120)
        .map(|_| {
            (rng.gen_range(0..N_ENTITIES), rng.gen_range(0..N_ENTITIES), rng.gen_range(0.0..1.0))
        })
        .collect();
    let adjacency = Arc::new(CsrMatrix::from_triplets(N_ENTITIES, N_ENTITIES, &triplets));
    let features = Arc::new(Matrix::random_uniform(N_ENTITIES, DIM, 1.0, &mut rng));
    let mut params = ParamStore::new();
    let w_gcn = params.add("w", xavier_uniform(DIM, DIM, &mut rng));
    let q1 = params.add("q1", xavier_uniform(DIM, 1, &mut rng));
    let b1 = params.add("b1", Matrix::full(1, 1, 1.0));
    let q2 = params.add("q2", xavier_uniform(DIM, 6 * M, &mut rng));
    let b2 = params.add("b2", Matrix::random_uniform(1, 6 * M, 0.5, &mut rng));
    // Batches of varying size and entity-set length, so recycled buffers get
    // re-taken at different shapes.
    let mut batches = Vec::new();
    let mut targets = Vec::new();
    for b in 0..6 {
        let size = 3 + (b % 3);
        batches.push(
            (0..size)
                .map(|_| {
                    let k = rng.gen_range(1..5);
                    (0..k).map(|_| rng.gen_range(0..N_ENTITIES)).collect()
                })
                .collect(),
        );
        targets.push(
            (0..size)
                .map(|_| (40.0 + rng.gen_range(0.0..1.0), -74.0 + rng.gen_range(0.0..1.0)))
                .collect(),
        );
    }
    Setup { adjacency, features, params, w_gcn, q1, b1, q2, b2, batches, targets }
}

/// Records one training batch on `tape` and runs backward. Returns the loss
/// scalar and the parameter gradients.
fn run_batch(s: &Setup, mut tape: Tape, batch: usize) -> (f32, Vec<(ParamId, Matrix)>, TapeArena) {
    let x = tape.constant_shared(Arc::clone(&s.features));
    let wn = tape.param(s.w_gcn, &s.params);
    let xw = tape.matmul(x, wn);
    let prop = tape.spmm(Arc::clone(&s.adjacency), xw);
    let smoothed = tape.relu(prop);
    let mut rows = Vec::new();
    for entities in &s.batches[batch] {
        let h = tape.gather_rows(smoothed, entities);
        let q = tape.param(s.q1, &s.params);
        let b = tape.param(s.b1, &s.params);
        let scores = tape.matmul(h, q);
        let biased = tape.add_row_broadcast(scores, b);
        let act = tape.relu(biased);
        let st = tape.transpose(act);
        let w = tape.softmax_rows(st);
        rows.push(tape.matmul(w, h));
    }
    let z = tape.concat_rows(&rows);
    let w2 = tape.param(s.q2, &s.params);
    let b2 = tape.param(s.b2, &s.params);
    let lin = tape.matmul(z, w2);
    let theta = tape.add_row_broadcast(lin, b2);
    let nll = tape.gmm_nll(theta, &s.targets[batch], M);
    let loss = tape.scale(nll, 1.0 / s.batches[batch].len() as f32);
    let loss_val = tape.scalar(loss);
    let grads = tape.backward(loss);
    (loss_val, grads, tape.into_arena())
}

fn assert_bitwise_eq(label: &str, a: &[(ParamId, Matrix)], b: &[(ParamId, Matrix)]) {
    assert_eq!(a.len(), b.len(), "{label}: gradient count");
    for ((ida, ga), (idb, gb)) in a.iter().zip(b) {
        assert_eq!(ida, idb, "{label}: gradient order");
        assert_eq!(ga.shape(), gb.shape(), "{label}: gradient shape");
        for (i, (x, y)) in ga.data().iter().zip(gb.data()).enumerate() {
            assert!(x.to_bits() == y.to_bits(), "{label}: param {} entry {i}: {x} vs {y}", ida.0);
        }
    }
}

#[test]
fn arena_tapes_match_fresh_tapes_bitwise_across_threads() {
    let s = setup();
    // The scalar single-thread fresh-tape run anchors the whole sweep: every
    // (threads × kernels × fresh/arena) combination must reproduce it bit
    // for bit, which is exactly the training determinism contract.
    let reference: Vec<(f32, Vec<(ParamId, Matrix)>)> = edge_tensor::with_scalar_kernels(|| {
        edge_par::with_max_threads(1, || {
            (0..s.batches.len())
                .map(|batch| {
                    let (loss, grads, _) = run_batch(&s, Tape::new(), batch);
                    (loss, grads)
                })
                .collect()
        })
    });
    for simd in [false, true] {
        for threads in THREAD_SWEEP {
            let body = || {
                edge_par::with_max_threads(threads, || {
                    let mut arena = TapeArena::new();
                    for (batch, (ref_loss, ref_grads)) in reference.iter().enumerate() {
                        let tag = format!("batch {batch} @ {threads} threads, simd={simd}");
                        let (fresh_loss, fresh_grads, _) = run_batch(&s, Tape::new(), batch);
                        let (pool_loss, pool_grads, back) =
                            run_batch(&s, Tape::with_arena(std::mem::take(&mut arena)), batch);
                        assert!(
                            fresh_loss.to_bits() == pool_loss.to_bits()
                                && fresh_loss.to_bits() == ref_loss.to_bits(),
                            "loss diverges at {tag}"
                        );
                        assert_bitwise_eq(&tag, &fresh_grads, &pool_grads);
                        assert_bitwise_eq(&tag, ref_grads, &pool_grads);
                        // Recycle the arena-path gradients like the train
                        // loop does.
                        arena = back;
                        for (_, g) in pool_grads {
                            arena.recycle(g);
                        }
                    }
                    // The steady state actually recycles: after six batches
                    // the pools must have served far more buffers than they
                    // allocated fresh.
                    let stats = arena.stats();
                    assert!(
                        stats.reused > stats.fresh,
                        "arena never warmed up: {stats:?} @ {threads} threads"
                    );
                });
            };
            if simd {
                body();
            } else {
                edge_tensor::with_scalar_kernels(body);
            }
        }
    }
}

#[test]
fn recycling_never_aliases_gradients_still_held_by_the_caller() {
    let s = setup();
    let mut arena = TapeArena::new();
    // Warm the pools.
    let (_, warm_grads, mut arena_back) =
        run_batch(&s, Tape::with_arena(std::mem::take(&mut arena)), 0);
    for (_, g) in warm_grads {
        arena_back.recycle(g);
    }
    // Batch 1's gradients are NOT recycled — the caller keeps them.
    let (_, held, arena2) = run_batch(&s, Tape::with_arena(arena_back), 1);
    let snapshot: Vec<Vec<u32>> =
        held.iter().map(|(_, g)| g.data().iter().map(|v| v.to_bits()).collect()).collect();
    // Two more batches over the same arena, overwriting recycled storage.
    let (_, g2, arena3) = run_batch(&s, Tape::with_arena(arena2), 2);
    let mut arena3 = arena3;
    for (_, g) in g2 {
        arena3.recycle(g);
    }
    let (_, g3, _) = run_batch(&s, Tape::with_arena(arena3), 3);
    drop(g3);
    // The held gradients must be byte-identical to their snapshot: recycled
    // buffers never alias memory the caller still owns.
    for ((_, g), snap) in held.iter().zip(&snapshot) {
        let now: Vec<u32> = g.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(&now, snap, "a later tape overwrote a gradient the caller still holds");
    }
}

#[test]
fn fresh_and_arena_values_agree_on_every_node_shape_change() {
    // Shape-churn stress: alternating big/small takes from the same pool
    // classes must still zero correctly (a stale-tail bug would show here).
    let mut arena = TapeArena::new();
    for round in 0..4 {
        let big = arena.take_matrix(32, 32);
        assert_eq!(big, Matrix::zeros(32, 32), "round {round}");
        arena.recycle(big);
        let small = arena.take_matrix(3, 5);
        assert_eq!(small, Matrix::zeros(3, 5), "round {round}");
        let mut dirty = small;
        dirty.fill(9.0);
        arena.recycle(dirty);
    }
}
