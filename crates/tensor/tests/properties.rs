//! Property-based tests for the tensor substrate: algebraic identities the
//! autodiff engine silently depends on.

use edge_tensor::matrix::Matrix;
use edge_tensor::sparse::CsrMatrix;
use edge_tensor::tape::{softmax_in_place, ParamStore, Tape};
use proptest::prelude::*;

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_is_associative(
        a in arb_matrix(3, 4),
        b in arb_matrix(4, 2),
        c in arb_matrix(2, 5),
    ) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_distributes_over_add(
        a in arb_matrix(3, 4),
        b in arb_matrix(4, 3),
        c in arb_matrix(4, 3),
    ) {
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn transpose_reverses_products(a in arb_matrix(3, 4), b in arb_matrix(4, 2)) {
        // (AB)^T = B^T A^T
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn scale_commutes_with_matmul(a in arb_matrix(3, 3), b in arb_matrix(3, 3), s in -2.0f32..2.0) {
        let left = a.scale(s).matmul(&b);
        let right = a.matmul(&b).scale(s);
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn sum_rows_preserves_total(a in arb_matrix(5, 4)) {
        prop_assert!((a.sum_rows().sum() - a.sum()).abs() < 1e-3);
    }

    #[test]
    fn gather_all_rows_is_identity(a in arb_matrix(6, 3)) {
        let idx: Vec<usize> = (0..6).collect();
        prop_assert_eq!(a.gather_rows(&idx), a);
    }

    #[test]
    fn softmax_is_a_distribution(mut row in proptest::collection::vec(-20.0f32..20.0, 1..12)) {
        softmax_in_place(&mut row);
        let sum: f32 = row.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4, "sum {sum}");
        prop_assert!(row.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn softmax_is_shift_invariant(row in proptest::collection::vec(-5.0f32..5.0, 2..8), shift in -3.0f32..3.0) {
        let mut a = row.clone();
        softmax_in_place(&mut a);
        let mut b: Vec<f32> = row.iter().map(|x| x + shift).collect();
        softmax_in_place(&mut b);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn spmm_agrees_with_dense(
        triplets in proptest::collection::vec((0usize..6, 0usize..5, -2.0f32..2.0), 0..20),
        x in arb_matrix(5, 3),
    ) {
        let s = CsrMatrix::from_triplets(6, 5, &triplets);
        let sparse = s.matmul_dense(&x);
        let dense = s.to_dense().matmul(&x);
        for (a, b) in sparse.data().iter().zip(dense.data()) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn csr_get_matches_summed_triplets(
        triplets in proptest::collection::vec((0usize..4, 0usize..4, -2.0f32..2.0), 0..12),
    ) {
        let s = CsrMatrix::from_triplets(4, 4, &triplets);
        for r in 0..4 {
            for c in 0..4 {
                let expected: f32 = triplets.iter().filter(|&&(tr, tc, _)| tr == r && tc == c).map(|&(_, _, v)| v).sum();
                prop_assert!((s.get(r, c) - expected).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn tape_linear_ops_match_matrix_ops(a in arb_matrix(3, 3), b in arb_matrix(3, 3)) {
        let mut tape = Tape::new();
        let an = tape.constant(a.clone());
        let bn = tape.constant(b.clone());
        let sum = tape.add(an, bn);
        let prod = tape.matmul(an, bn);
        prop_assert_eq!(tape.value(sum), &a.add(&b));
        prop_assert_eq!(tape.value(prod), &a.matmul(&b));
    }

    #[test]
    fn backward_of_sum_all_is_ones(a in arb_matrix(4, 3)) {
        let mut params = ParamStore::new();
        let id = params.add("w", a);
        let mut tape = Tape::new();
        let x = tape.param(id, &params);
        let loss = tape.sum_all(x);
        let grads = tape.backward(loss);
        prop_assert_eq!(grads.len(), 1);
        prop_assert!(grads[0].1.data().iter().all(|&g| g == 1.0));
    }

    #[test]
    fn backward_is_linear_in_upstream_scale(a in arb_matrix(3, 3), s in 0.1f32..4.0) {
        let mut params = ParamStore::new();
        let id = params.add("w", a);
        // loss1 = sum(w), loss2 = s * sum(w): grad2 = s * grad1.
        let mut t1 = Tape::new();
        let x1 = t1.param(id, &params);
        let l1 = t1.sum_all(x1);
        let g1 = t1.backward(l1);
        let mut t2 = Tape::new();
        let x2 = t2.param(id, &params);
        let sum = t2.sum_all(x2);
        let l2 = t2.scale(sum, s);
        let g2 = t2.backward(l2);
        for (x, y) in g1[0].1.data().iter().zip(g2[0].1.data()) {
            prop_assert!((x * s - y).abs() < 1e-4);
        }
    }
}
