//! Parallel-correctness properties: the pooled kernels must produce results
//! **bit-for-bit identical** to the serial path at every thread count. The
//! kernels guarantee this by parallelizing only across output rows (each row
//! accumulates in a fixed order), so the sweep below — `EDGE_NUM_THREADS` ∈
//! {1, 2, 8}, installed per-thread via `edge_par::with_max_threads` since the
//! environment variable is read once per process — is a real invariant, not
//! a tolerance check.

use edge_tensor::{CsrMatrix, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The thread counts the determinism contract is checked under.
const THREAD_SWEEP: [usize; 3] = [1, 2, 8];

fn random_dense(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::random_uniform(rows, cols, 1.0, &mut rng)
}

fn random_csr(rows: usize, cols: usize, nnz: usize, seed: u64) -> CsrMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let triplets: Vec<(usize, usize, f32)> = (0..nnz)
        .map(|_| (rng.gen_range(0..rows), rng.gen_range(0..cols), rng.gen_range(-1.0..1.0)))
        .collect();
    CsrMatrix::from_triplets(rows, cols, &triplets)
}

/// Runs `f` under every swept thread count and asserts all results equal the
/// single-threaded one, bit for bit.
fn assert_thread_invariant(label: &str, f: impl Fn() -> Matrix) {
    let serial = edge_par::with_max_threads(1, &f);
    for threads in THREAD_SWEEP {
        let parallel = edge_par::with_max_threads(threads, &f);
        assert_eq!(serial.shape(), parallel.shape(), "{label} shape @ {threads} threads");
        for (i, (a, b)) in serial.data().iter().zip(parallel.data()).enumerate() {
            assert!(
                a.to_bits() == b.to_bits(),
                "{label} diverges at entry {i} with {threads} threads: {a} vs {b}"
            );
        }
    }
}

#[test]
fn matmul_is_bitwise_deterministic_across_thread_counts() {
    // 96×64×48 is far above PAR_THRESHOLD, so the parallel path engages.
    const _: () = assert!(96 * 64 * 48 >= edge_tensor::PAR_THRESHOLD);
    let a = random_dense(96, 64, 1);
    let b = random_dense(64, 48, 2);
    assert_thread_invariant("matmul", || a.matmul(&b));
}

#[test]
fn spmm_is_bitwise_deterministic_across_thread_counts() {
    let s = random_csr(120, 80, 1200, 3);
    let x = random_dense(80, 40, 4);
    assert_thread_invariant("spmm", || s.matmul_dense(&x));
}

#[test]
fn transpose_matmul_is_bitwise_deterministic_across_thread_counts() {
    let s = random_csr(90, 70, 900, 5);
    let g = random_dense(90, 30, 6);
    assert_thread_invariant("spmm^T", || s.transpose_matmul_dense(&g));
}

#[test]
fn transpose_matmul_matches_historical_serial_scatter_bitwise() {
    // The pre-pool implementation: serial scatter-adds over stored entries,
    // walking source rows in ascending order. The cached-transpose gather
    // kernel must reproduce it exactly.
    let s = random_csr(64, 50, 700, 7);
    let g = random_dense(64, 24, 8);
    let mut scatter = Matrix::zeros(s.cols(), g.cols());
    for r in 0..s.rows() {
        let src: Vec<f32> = g.row(r).to_vec();
        for (c, v) in s.row_entries(r) {
            for (o, &x) in scatter.row_mut(c).iter_mut().zip(&src) {
                *o += v * x;
            }
        }
    }
    for threads in THREAD_SWEEP {
        let fast = edge_par::with_max_threads(threads, || s.transpose_matmul_dense(&g));
        for (a, b) in scatter.data().iter().zip(fast.data()) {
            assert!(a.to_bits() == b.to_bits(), "{a} vs {b} @ {threads} threads");
        }
    }
}

#[test]
fn nested_parallel_kernels_do_not_deadlock_and_stay_deterministic() {
    // A pooled task that itself runs pooled kernels: the pool must service
    // the inner regions (the submitting worker participates), and the
    // results must still match the serial path bit-for-bit.
    let a = random_dense(96, 64, 9);
    let b = random_dense(64, 48, 10);
    let expected = edge_par::with_max_threads(1, || a.matmul(&b));
    let results: Vec<std::sync::Mutex<Option<Matrix>>> =
        (0..4).map(|_| std::sync::Mutex::new(None)).collect();
    edge_par::with_max_threads(8, || {
        edge_par::parallel_for(4, |i| {
            *results[i].lock().unwrap() = Some(a.matmul(&b));
        });
    });
    for slot in results {
        let got = slot.into_inner().unwrap().expect("inner kernel ran");
        for (x, y) in expected.data().iter().zip(got.data()) {
            assert!(x.to_bits() == y.to_bits());
        }
    }
}

#[test]
fn dense_transpose_blocked_path_matches_naive() {
    for (rows, cols) in [(1, 1), (7, 3), (33, 65), (128, 37)] {
        let m = random_dense(rows, cols, 1000 + (rows * cols) as u64);
        let t = m.transpose();
        assert_eq!(t.shape(), (cols, rows));
        for r in 0..rows {
            for c in 0..cols {
                assert_eq!(t.get(c, r).to_bits(), m.get(r, c).to_bits());
            }
        }
    }
}
