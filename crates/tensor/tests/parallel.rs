//! Parallel-correctness properties: the pooled kernels must produce results
//! **bit-for-bit identical** to the serial path at every thread count, and
//! the AVX2 kernels must be bit-for-bit identical to the scalar reference.
//! The kernels guarantee this by parallelizing only across output rows and
//! accumulating every output element in the same (ascending-k / ascending-
//! entry) order with unfused mul + add, so the sweep below — threads ∈
//! {1, 2, 8} × kernels ∈ {simd, scalar}, installed per-thread via
//! `edge_par::with_max_threads` / `edge_tensor::with_scalar_kernels` since
//! the corresponding environment variables are read once per process — is a
//! real invariant, not a tolerance check. (On hardware without AVX2 the simd
//! arm silently runs scalar and the sweep still passes.)

use edge_tensor::{CsrMatrix, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The thread counts the determinism contract is checked under.
const THREAD_SWEEP: [usize; 3] = [1, 2, 8];

fn random_dense(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::random_uniform(rows, cols, 1.0, &mut rng)
}

fn random_csr(rows: usize, cols: usize, nnz: usize, seed: u64) -> CsrMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let triplets: Vec<(usize, usize, f32)> = (0..nnz)
        .map(|_| (rng.gen_range(0..rows), rng.gen_range(0..cols), rng.gen_range(-1.0..1.0)))
        .collect();
    CsrMatrix::from_triplets(rows, cols, &triplets)
}

/// Runs `f` under every (thread count × simd on/off) combination and asserts
/// all results equal the scalar single-threaded reference, bit for bit.
fn assert_thread_invariant(label: &str, f: impl Fn() -> Matrix) {
    let reference = edge_tensor::with_scalar_kernels(|| edge_par::with_max_threads(1, &f));
    for simd in [false, true] {
        for threads in THREAD_SWEEP {
            let run = || edge_par::with_max_threads(threads, &f);
            let result = if simd { run() } else { edge_tensor::with_scalar_kernels(run) };
            assert_eq!(
                reference.shape(),
                result.shape(),
                "{label} shape @ {threads} threads, simd={simd}"
            );
            for (i, (a, b)) in reference.data().iter().zip(result.data()).enumerate() {
                assert!(
                    a.to_bits() == b.to_bits(),
                    "{label} diverges at entry {i} with {threads} threads, \
                     simd={simd}: {a} vs {b}"
                );
            }
        }
    }
}

#[test]
fn matmul_is_bitwise_deterministic_across_thread_counts() {
    // 96×64×48 is far above PAR_THRESHOLD, so the parallel path engages.
    const _: () = assert!(96 * 64 * 48 >= edge_tensor::PAR_THRESHOLD);
    let a = random_dense(96, 64, 1);
    let b = random_dense(64, 48, 2);
    assert_thread_invariant("matmul", || a.matmul(&b));
}

#[test]
fn spmm_is_bitwise_deterministic_across_thread_counts() {
    let s = random_csr(120, 80, 1200, 3);
    let x = random_dense(80, 40, 4);
    assert_thread_invariant("spmm", || s.matmul_dense(&x));
}

#[test]
fn transpose_matmul_is_bitwise_deterministic_across_thread_counts() {
    let s = random_csr(90, 70, 900, 5);
    let g = random_dense(90, 30, 6);
    assert_thread_invariant("spmm^T", || s.transpose_matmul_dense(&g));
}

#[test]
fn transpose_matmul_matches_historical_serial_scatter_bitwise() {
    // The pre-pool implementation: serial scatter-adds over stored entries,
    // walking source rows in ascending order. The cached-transpose gather
    // kernel must reproduce it exactly.
    let s = random_csr(64, 50, 700, 7);
    let g = random_dense(64, 24, 8);
    let mut scatter = Matrix::zeros(s.cols(), g.cols());
    for r in 0..s.rows() {
        let src: Vec<f32> = g.row(r).to_vec();
        for (c, v) in s.row_entries(r) {
            for (o, &x) in scatter.row_mut(c).iter_mut().zip(&src) {
                *o += v * x;
            }
        }
    }
    for threads in THREAD_SWEEP {
        let fast = edge_par::with_max_threads(threads, || s.transpose_matmul_dense(&g));
        for (a, b) in scatter.data().iter().zip(fast.data()) {
            assert!(a.to_bits() == b.to_bits(), "{a} vs {b} @ {threads} threads");
        }
    }
}

#[test]
fn nested_parallel_kernels_do_not_deadlock_and_stay_deterministic() {
    // A pooled task that itself runs pooled kernels: the pool must service
    // the inner regions (the submitting worker participates), and the
    // results must still match the serial path bit-for-bit.
    let a = random_dense(96, 64, 9);
    let b = random_dense(64, 48, 10);
    let expected = edge_par::with_max_threads(1, || a.matmul(&b));
    let results: Vec<std::sync::Mutex<Option<Matrix>>> =
        (0..4).map(|_| std::sync::Mutex::new(None)).collect();
    edge_par::with_max_threads(8, || {
        edge_par::parallel_for(4, |i| {
            *results[i].lock().unwrap() = Some(a.matmul(&b));
        });
    });
    for slot in results {
        let got = slot.into_inner().unwrap().expect("inner kernel ran");
        for (x, y) in expected.data().iter().zip(got.data()) {
            assert!(x.to_bits() == y.to_bits());
        }
    }
}

#[test]
fn matmul_simd_tail_shapes_match_scalar_bitwise() {
    // Widths straddling the 16-column tile (masked/zero-padded tails), row
    // counts straddling the 4-row block, and a single-row product that takes
    // the unpacked strided path — every tail case of the AVX2 kernel.
    for (n, k, m) in
        [(1, 64, 48), (3, 33, 17), (5, 40, 16), (8, 21, 9), (13, 29, 31), (64, 50, 100)]
    {
        let a = random_dense(n, k, 100 + (n * k) as u64);
        let b = random_dense(k, m, 200 + (k * m) as u64);
        assert_thread_invariant(&format!("matmul {n}x{k}x{m}"), || a.matmul(&b));
    }
}

#[test]
fn matmul_simd_replicates_the_zero_skip_bitwise() {
    // The scalar kernel skips `a == 0.0` entries; `-0.0` accumulators make
    // skip-vs-add observable (`-0.0 + 0.0 == 0.0`), so the SIMD kernel must
    // replicate the skip exactly.
    let mut rng = StdRng::seed_from_u64(11);
    let mut a = Matrix::zeros(12, 40);
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            let v = match rng.gen_range(0..4) {
                0 => 0.0,
                1 => -0.0,
                _ => rng.gen_range(-1.0..1.0),
            };
            a.set(r, c, v);
        }
    }
    let mut b = random_dense(40, 24, 12);
    for c in 0..b.cols() {
        b.set(0, c, -0.0);
    }
    assert_thread_invariant("matmul zero-skip", || a.matmul(&b));
}

#[test]
fn spmm_simd_tail_widths_match_scalar_bitwise() {
    // Dense widths exercising the 32-strip, 8-strip, and scalar-tail loops
    // of the SIMD gather (and, below 8, the scalar fallback gate).
    let s = random_csr(60, 45, 500, 21);
    for m in [5, 8, 9, 24, 33, 40, 64] {
        let x = random_dense(45, m, 300 + m as u64);
        assert_thread_invariant(&format!("spmm width {m}"), || s.matmul_dense(&x));
        let g = random_dense(60, m, 400 + m as u64);
        assert_thread_invariant(&format!("spmm^T width {m}"), || s.transpose_matmul_dense(&g));
    }
}

#[test]
fn axpy_simd_matches_scalar_bitwise() {
    // Lengths exercising the 8-lane strips, the scalar tail, and the
    // below-8 scalar gate; alpha including the zero and -0.0 edge cases.
    let mut rng = StdRng::seed_from_u64(31);
    for len in [1, 7, 8, 9, 24, 31, 257] {
        for alpha in [0.0f32, -0.0, 0.37, -2.5] {
            let x: Vec<f32> = (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let base: Vec<f32> = (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut reference = base.clone();
            for (yv, &xv) in reference.iter_mut().zip(&x) {
                *yv += alpha * xv;
            }
            let mut simd = base.clone();
            edge_tensor::axpy(alpha, &x, &mut simd);
            let mut scalar = base.clone();
            edge_tensor::with_scalar_kernels(|| edge_tensor::axpy(alpha, &x, &mut scalar));
            for i in 0..len {
                assert_eq!(reference[i].to_bits(), simd[i].to_bits(), "simd len {len} @ {i}");
                assert_eq!(reference[i].to_bits(), scalar[i].to_bits(), "scalar len {len} @ {i}");
            }
        }
    }
}

#[test]
fn dense_transpose_blocked_path_matches_naive() {
    for (rows, cols) in [(1, 1), (7, 3), (33, 65), (128, 37)] {
        let m = random_dense(rows, cols, 1000 + (rows * cols) as u64);
        let t = m.transpose();
        assert_eq!(t.shape(), (cols, rows));
        for r in 0..rows {
            for c in 0..cols {
                assert_eq!(t.get(c, r).to_bits(), m.get(r, c).to_bits());
            }
        }
    }
}
