//! Finite-difference gradient checks for every differentiable tape op.
//!
//! Each check builds a small graph ending in a scalar, perturbs every entry
//! of every parameter by ±h, and compares the numeric slope against the
//! tape's analytic gradient. This is the correctness gate the whole EDGE
//! model relies on.

use std::sync::Arc;

use edge_tensor::matrix::Matrix;
use edge_tensor::sparse::CsrMatrix;
use edge_tensor::tape::{ParamId, ParamStore, Tape};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds the scalar loss for the current parameter values.
type LossFn = dyn Fn(&mut Tape, &ParamStore) -> edge_tensor::tape::NodeId;

fn grad_check(params: &mut ParamStore, ids: &[ParamId], f: &LossFn, tol: f32) {
    // Analytic gradients.
    let mut tape = Tape::new();
    let loss = f(&mut tape, params);
    let grads = tape.backward(loss);
    let analytic: Vec<(ParamId, Matrix)> = grads;

    let h = 1e-2f32; // f32 sweet spot: truncation vs cancellation
    for &id in ids {
        let g = analytic
            .iter()
            .find(|(p, _)| *p == id)
            .unwrap_or_else(|| panic!("no gradient reported for param {}", id.0));
        let shape = params.get(id).shape();
        for r in 0..shape.0 {
            for c in 0..shape.1 {
                let orig = params.get(id).get(r, c);
                params.get_mut(id).set(r, c, orig + h);
                let mut t1 = Tape::new();
                let l_plus = {
                    let l = f(&mut t1, params);
                    t1.scalar(l) as f64
                };
                params.get_mut(id).set(r, c, orig - h);
                let mut t2 = Tape::new();
                let l_minus = {
                    let l = f(&mut t2, params);
                    t2.scalar(l) as f64
                };
                params.get_mut(id).set(r, c, orig);
                let fd = ((l_plus - l_minus) / (2.0 * h as f64)) as f32;
                let a = g.1.get(r, c);
                assert!(
                    (a - fd).abs() <= tol * (1.0 + fd.abs()),
                    "param {} entry ({r},{c}): analytic {a} vs finite-diff {fd}",
                    id.0
                );
            }
        }
    }
}

fn rng() -> StdRng {
    StdRng::seed_from_u64(1234)
}

#[test]
fn matmul_chain_gradients() {
    let mut rng = rng();
    let mut params = ParamStore::new();
    let w1 = params.add("w1", Matrix::random_uniform(4, 3, 0.5, &mut rng));
    let w2 = params.add("w2", Matrix::random_uniform(3, 2, 0.5, &mut rng));
    let x = Matrix::random_uniform(5, 4, 0.5, &mut rng);
    grad_check(
        &mut params,
        &[w1, w2],
        &move |t, p| {
            let xn = t.constant(x.clone());
            let a = t.param(w1, p);
            let b = t.param(w2, p);
            let h = t.matmul(xn, a);
            let y = t.matmul(h, b);
            t.sum_all(y)
        },
        2e-2,
    );
}

#[test]
fn spmm_gradient() {
    let mut rng = rng();
    let sparse = Arc::new(CsrMatrix::from_triplets(
        4,
        4,
        &[(0, 0, 0.5), (0, 1, 0.5), (1, 1, 1.0), (2, 0, 0.3), (2, 3, 0.7), (3, 3, 1.0)],
    ));
    let mut params = ParamStore::new();
    let w = params.add("w", Matrix::random_uniform(4, 3, 0.5, &mut rng));
    grad_check(
        &mut params,
        &[w],
        &move |t, p| {
            let h = t.param(w, p);
            let s = t.spmm(Arc::clone(&sparse), h);
            let sq = t.hadamard(s, s);
            t.sum_all(sq)
        },
        2e-2,
    );
}

#[test]
fn activation_gradients() {
    let mut rng = rng();
    // Offset inputs away from the ReLU kink at 0 for a clean finite diff.
    let base = Matrix::random_uniform(3, 4, 1.0, &mut rng).map(|v| v + v.signum() * 0.2);
    for act in ["relu", "tanh", "sigmoid", "softplus", "softsign"] {
        let mut params = ParamStore::new();
        let w = params.add("w", base.clone());
        let act = act.to_string();
        grad_check(
            &mut params,
            &[w],
            &move |t, p| {
                let x = t.param(w, p);
                let y = match act.as_str() {
                    "relu" => t.relu(x),
                    "tanh" => t.tanh(x),
                    "sigmoid" => t.sigmoid(x),
                    "softplus" => t.softplus(x),
                    "softsign" => t.softsign(x),
                    _ => unreachable!(),
                };
                let sq = t.hadamard(y, y);
                t.sum_all(sq)
            },
            3e-2,
        );
    }
}

#[test]
fn softmax_rows_gradient() {
    let mut rng = rng();
    let mut params = ParamStore::new();
    let w = params.add("w", Matrix::random_uniform(3, 5, 1.0, &mut rng));
    let weights = Matrix::random_uniform(3, 5, 1.0, &mut rng);
    grad_check(
        &mut params,
        &[w],
        &move |t, p| {
            let x = t.param(w, p);
            let s = t.softmax_rows(x);
            let c = t.constant(weights.clone());
            let weighted = t.hadamard(s, c);
            t.sum_all(weighted)
        },
        2e-2,
    );
}

#[test]
fn broadcast_transpose_scale_gradients() {
    let mut rng = rng();
    let mut params = ParamStore::new();
    let w = params.add("w", Matrix::random_uniform(4, 3, 0.5, &mut rng));
    let b = params.add("b", Matrix::random_uniform(1, 3, 0.5, &mut rng));
    grad_check(
        &mut params,
        &[w, b],
        &move |t, p| {
            let x = t.param(w, p);
            let bias = t.param(b, p);
            let y = t.add_row_broadcast(x, bias);
            let yt = t.transpose(y);
            let scaled = t.scale(yt, 1.7);
            let sq = t.hadamard(scaled, scaled);
            t.sum_all(sq)
        },
        2e-2,
    );
}

#[test]
fn gather_concat_slice_gradients() {
    let mut rng = rng();
    let mut params = ParamStore::new();
    let w = params.add("w", Matrix::random_uniform(6, 4, 0.5, &mut rng));
    grad_check(
        &mut params,
        &[w],
        &move |t, p| {
            let x = t.param(w, p);
            // Repeated indices exercise the scatter-add backward.
            let g1 = t.gather_rows(x, &[0, 2, 2, 5]);
            let g2 = t.gather_rows(x, &[1, 1]);
            let cat = t.concat_rows(&[g1, g2]);
            let sl = t.slice_cols(cat, 1, 3);
            let sq = t.hadamard(sl, sl);
            t.sum_all(sq)
        },
        2e-2,
    );
}

#[test]
fn reduction_gradients() {
    let mut rng = rng();
    let mut params = ParamStore::new();
    let w = params.add("w", Matrix::random_uniform(4, 3, 0.8, &mut rng));
    grad_check(
        &mut params,
        &[w],
        &move |t, p| {
            let x = t.param(w, p);
            let sq = t.hadamard(x, x);
            let row = t.sum_rows(sq);
            t.mean_all(row)
        },
        2e-2,
    );
}

#[test]
fn add_sub_hadamard_two_param_gradients() {
    let mut rng = rng();
    let mut params = ParamStore::new();
    let a = params.add("a", Matrix::random_uniform(3, 3, 0.5, &mut rng));
    let b = params.add("b", Matrix::random_uniform(3, 3, 0.5, &mut rng));
    grad_check(
        &mut params,
        &[a, b],
        &move |t, p| {
            let x = t.param(a, p);
            let y = t.param(b, p);
            let s = t.add(x, y);
            let d = t.sub(x, y);
            let h = t.hadamard(s, d); // = x² − y²
            t.sum_all(h)
        },
        2e-2,
    );
}

#[test]
fn max_pool_gradient() {
    let mut rng = rng();
    let mut params = ParamStore::new();
    // Well-separated values so ±h never flips an argmax.
    let mut base = Matrix::random_uniform(5, 3, 0.1, &mut rng);
    for r in 0..5 {
        for c in 0..3 {
            base.set(r, c, base.get(r, c) + (r as f32) * ((c + 1) as f32));
        }
    }
    let w = params.add("w", base);
    grad_check(
        &mut params,
        &[w],
        &move |t, p| {
            let x = t.param(w, p);
            let pooled = t.max_pool_rows(x);
            let sq = t.hadamard(pooled, pooled);
            t.sum_all(sq)
        },
        2e-2,
    );
}

#[test]
fn im2col_conv_gradient() {
    let mut rng = rng();
    let mut params = ParamStore::new();
    let seq = params.add("seq", Matrix::random_uniform(8, 3, 0.5, &mut rng));
    let kernel = params.add("kernel", Matrix::random_uniform(9, 2, 0.5, &mut rng)); // 3*3 x 2
    grad_check(
        &mut params,
        &[seq, kernel],
        &move |t, p| {
            let x = t.param(seq, p);
            let k = t.param(kernel, p);
            let unfolded = t.im2col(x, 3);
            let conv = t.matmul(unfolded, k);
            let act = t.tanh(conv);
            let pooled = t.max_pool_rows(act);
            t.sum_all(pooled)
        },
        3e-2,
    );
}

#[test]
fn gmm_nll_gradient_through_tape() {
    let mut rng = rng();
    let m = 2;
    let mut params = ParamStore::new();
    // Keep μ near the targets so the NLL is in a well-conditioned regime.
    let mut theta = Matrix::random_uniform(3, 6 * m, 0.5, &mut rng);
    for b in 0..3 {
        theta.set(b, m, 40.5); // μ_lat block
        theta.set(b, m + 1, 40.9);
        theta.set(b, 2 * m, -74.1); // μ_lon block
        theta.set(b, 2 * m + 1, -73.8);
    }
    let w = params.add("theta", theta);
    let targets = vec![(40.7f64, -74.0f64), (40.6, -73.9), (40.8, -74.05)];
    grad_check(
        &mut params,
        &[w],
        &move |t, p| {
            let x = t.param(w, p);
            t.gmm_nll(x, &targets, m)
        },
        3e-2,
    );
}

#[test]
fn gmm_nll_through_linear_layer() {
    // End-to-end through a dense layer, as the real model uses it (Eq. 7).
    let mut rng = rng();
    let m = 2;
    let mut params = ParamStore::new();
    let w = params.add("w", Matrix::random_uniform(4, 6 * m, 0.3, &mut rng));
    let b = params.add("b", {
        let mut bias = Matrix::zeros(1, 6 * m);
        // Bias the μ blocks into the metro area.
        for k in 0..m {
            bias.set(0, m + k, 40.7);
            bias.set(0, 2 * m + k, -74.0);
        }
        bias
    });
    let z = Matrix::random_uniform(3, 4, 0.5, &mut rng);
    let targets = vec![(40.7f64, -74.0f64), (40.65, -73.95), (40.75, -74.03)];
    grad_check(
        &mut params,
        &[w, b],
        &move |t, p| {
            let zn = t.constant(z.clone());
            let wn = t.param(w, p);
            let bn = t.param(b, p);
            let lin = t.matmul(zn, wn);
            let theta = t.add_row_broadcast(lin, bn);
            t.gmm_nll(theta, &targets, m)
        },
        3e-2,
    );
}

#[test]
fn mixture_const_nll_gradient_through_tape() {
    let mut rng = rng();
    let mut params = ParamStore::new();
    let w = params.add("logits", Matrix::random_uniform(2, 5, 1.0, &mut rng));
    let log_comp = Matrix::random_uniform(2, 5, 2.0, &mut rng).map(|v| v - 3.0);
    grad_check(
        &mut params,
        &[w],
        &move |t, p| {
            let x = t.param(w, p);
            t.mixture_const_nll(x, &log_comp)
        },
        2e-2,
    );
}

#[test]
fn shared_param_gradient_accumulates() {
    // The same parameter used twice must receive the sum of both paths.
    let mut rng = rng();
    let mut params = ParamStore::new();
    let w = params.add("w", Matrix::random_uniform(3, 3, 0.5, &mut rng));
    grad_check(
        &mut params,
        &[w],
        &move |t, p| {
            let x1 = t.param(w, p);
            let x2 = t.param(w, p);
            let prod = t.matmul(x1, x2); // w @ w
            t.sum_all(prod)
        },
        2e-2,
    );
}

#[test]
fn constants_receive_no_gradient() {
    let mut params = ParamStore::new();
    let w = params.add("w", Matrix::full(2, 2, 1.0));
    let mut t = Tape::new();
    let c = t.constant(Matrix::full(2, 2, 3.0));
    let x = t.param(w, &params);
    let y = t.matmul(c, x);
    let loss = t.sum_all(y);
    let grads = t.backward(loss);
    assert_eq!(grads.len(), 1);
    assert_eq!(grads[0].0, w);
}

#[test]
fn backward_requires_scalar() {
    let mut params = ParamStore::new();
    let w = params.add("w", Matrix::full(2, 2, 1.0));
    let mut t = Tape::new();
    let x = t.param(w, &params);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| t.backward(x)));
    assert!(result.is_err(), "backward from a non-scalar should panic");
}

#[test]
fn attention_block_gradient() {
    // The exact attention computation of Eq. 2–4 on one tweet.
    let mut rng = rng();
    let mut params = ParamStore::new();
    let h = params.add("h", Matrix::random_uniform(4, 6, 0.5, &mut rng)); // K=4 entities
    let q1 = params.add("q1", Matrix::random_uniform(6, 1, 0.5, &mut rng));
    let b1 = params.add("b1", Matrix::random_uniform(1, 1, 0.2, &mut rng));
    grad_check(
        &mut params,
        &[h, q1, b1],
        &move |t, p| {
            let hn = t.param(h, p);
            let q = t.param(q1, p);
            let b = t.param(b1, p);
            let scores = t.matmul(hn, q); // K x 1
            let biased = t.add_row_broadcast(scores, b);
            let s = t.relu(biased);
            let st = t.transpose(s); // 1 x K
            let w = t.softmax_rows(st); // Eq. 3
            let z = t.matmul(w, hn); // Eq. 4: 1 x d
            let sq = t.hadamard(z, z);
            t.sum_all(sq)
        },
        3e-2,
    );
}
