//! f16 and int8 quantization kernels for compact inference weights.
//!
//! Two codecs, both with scalar reference implementations and runtime-
//! detected vector paths that follow the [`crate::simd`] conventions
//! (`EDGE_NO_SIMD`, [`crate::simd::with_scalar_kernels`]):
//!
//! * **f16** — IEEE 754 binary16 with round-to-nearest-even encode.
//!   Decoding f16 → f32 is *exact* (every half value is representable as
//!   a float), so the F16C vector path (`vcvtph2ps`) and the scalar
//!   bit-twiddling path are bit-for-bit identical by construction — the
//!   parity tests sweep the full 16-bit domain to prove it.
//! * **int8** — per-row absmax affine code: `scale = absmax / 127`,
//!   `q = round(x / scale)` clamped to ±127, dequant `x̂ = q · scale`.
//!   The AVX2 dequant widens `i8 → i32 → f32` and multiplies by the
//!   broadcast scale — the same single rounding step as the scalar
//!   `q as f32 * scale`, so the two paths are bit-identical too.
//!
//! Quantization itself (encode) runs offline at artifact-build time and
//! is scalar only; the latency-sensitive direction is dequantization in
//! the serve gather path, which is where the vector kernels live.

use crate::simd::simd_active;

/// Converts one f32 to IEEE binary16 with round-to-nearest-even.
/// Overflow saturates to ±inf; NaN payloads keep their top mantissa bits.
pub fn f32_to_f16(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;
    if exp == 0xff {
        // Inf / NaN: keep NaN-ness (quiet bit forced so a payload that
        // truncates to zero cannot turn a NaN into an infinity).
        let m = if mant != 0 { 0x0200 | (mant >> 13) as u16 } else { 0 };
        return sign | 0x7c00 | m;
    }
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7c00; // overflow → ±inf
    }
    if unbiased >= -14 {
        // Normal half: drop 13 mantissa bits with round-to-nearest-even.
        let mut half = (((unbiased + 15) as u32) << 10) | (mant >> 13);
        let rem = mant & 0x1fff;
        if rem > 0x1000 || (rem == 0x1000 && (half & 1) == 1) {
            half += 1; // may carry into the exponent; 0x7c00 is then ±inf
        }
        return sign | half as u16;
    }
    if unbiased >= -25 {
        // Subnormal half: shift the implicit bit into the 10-bit field.
        let m = 0x0080_0000 | mant;
        let shift = (13 - unbiased - 14) as u32; // 14..=24
        let mut half = m >> shift;
        let halfway = 1u32 << (shift - 1);
        let rem = m & ((1u32 << shift) - 1);
        if rem > halfway || (rem == halfway && (half & 1) == 1) {
            half += 1;
        }
        return sign | half as u16;
    }
    sign // underflow to signed zero
}

/// Converts one IEEE binary16 to f32 (exact).
pub fn f16_to_f32(h: u16) -> f32 {
    let sign = (h as u32 & 0x8000) << 16;
    let exp = (h >> 10) & 0x1f;
    let mant = (h & 0x03ff) as u32;
    let bits = if exp == 0 {
        if mant == 0 {
            sign // signed zero
        } else {
            // Subnormal (value = mant · 2⁻²⁴): renormalize around the
            // mantissa's MSB at index k, giving exponent k − 24.
            let k = 31 - mant.leading_zeros(); // 0..=9
            let e = k + 103; // (k − 24) + 127
            let m = (mant ^ (1 << k)) << (23 - k);
            sign | (e << 23) | m
        }
    } else if exp == 0x1f {
        sign | 0x7f80_0000 | (mant << 13) // inf / NaN
    } else {
        sign | (((exp as u32) + 112) << 23) | (mant << 13)
    };
    f32::from_bits(bits)
}

/// Whether the F16C conversion instructions are available (separate CPUID
/// bit from AVX2/FMA, so detected separately from [`crate::simd`]).
pub fn f16c_available() -> bool {
    static AVAILABLE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            is_x86_feature_detected!("f16c")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

/// Encodes a slice of f32 to f16 codes (round-to-nearest-even).
pub fn encode_f16(src: &[f32]) -> Vec<u16> {
    src.iter().map(|&x| f32_to_f16(x)).collect()
}

/// Decodes f16 codes into `dst` (`dst.len() == src.len()`), dispatching
/// to F16C when active. Both paths are bit-identical.
pub fn decode_f16_into(src: &[u16], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "f16 decode length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_active() && f16c_available() {
        // SAFETY: f16c_available() verified the CPUID bit.
        unsafe { decode_f16_f16c(src, dst) };
        return;
    }
    for (d, &h) in dst.iter_mut().zip(src) {
        *d = f16_to_f32(h);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "f16c,avx")]
unsafe fn decode_f16_f16c(src: &[u16], dst: &mut [f32]) {
    use std::arch::x86_64::*;
    let n = src.len();
    let chunks = n / 8;
    for c in 0..chunks {
        let halves = _mm_loadu_si128(src.as_ptr().add(c * 8) as *const __m128i);
        let floats = _mm256_cvtph_ps(halves);
        _mm256_storeu_ps(dst.as_mut_ptr().add(c * 8), floats);
    }
    for i in chunks * 8..n {
        dst[i] = f16_to_f32(src[i]);
    }
}

/// Per-row absmax int8 quantization of a `rows × cols` row-major table.
/// Returns the codes and one f32 scale per row (`0.0` for all-zero rows,
/// which dequantize back to exact zeros).
pub fn quantize_rows_i8(data: &[f32], rows: usize, cols: usize) -> (Vec<i8>, Vec<f32>) {
    assert_eq!(data.len(), rows * cols, "int8 quantize shape mismatch");
    let mut codes = vec![0i8; data.len()];
    let mut scales = vec![0f32; rows];
    for r in 0..rows {
        let row = &data[r * cols..(r + 1) * cols];
        let absmax = row.iter().fold(0f32, |m, &x| m.max(x.abs()));
        if absmax == 0.0 {
            continue;
        }
        let scale = absmax / 127.0;
        scales[r] = scale;
        let inv = 1.0 / scale;
        for (q, &x) in codes[r * cols..(r + 1) * cols].iter_mut().zip(row) {
            *q = (x * inv).round().clamp(-127.0, 127.0) as i8;
        }
    }
    (codes, scales)
}

/// Dequantizes one int8 row into `dst` (`dst.len() == src.len()`),
/// dispatching to AVX2 when active. Both paths compute `q as f32 * scale`
/// with one rounding step, so they are bit-identical.
pub fn dequant_i8_into(src: &[i8], scale: f32, dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "int8 dequant length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: simd_active() verified AVX2 support.
        unsafe { dequant_i8_avx2(src, scale, dst) };
        return;
    }
    for (d, &q) in dst.iter_mut().zip(src) {
        *d = q as f32 * scale;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dequant_i8_avx2(src: &[i8], scale: f32, dst: &mut [f32]) {
    use std::arch::x86_64::*;
    let n = src.len();
    let s = _mm256_set1_ps(scale);
    let chunks = n / 8;
    for c in 0..chunks {
        // 8 sign-extended bytes → 8 i32 lanes → 8 f32 lanes → × scale.
        let bytes = _mm_loadl_epi64(src.as_ptr().add(c * 8) as *const __m128i);
        let ints = _mm256_cvtepi8_epi32(bytes);
        let floats = _mm256_cvtepi32_ps(ints);
        _mm256_storeu_ps(dst.as_mut_ptr().add(c * 8), _mm256_mul_ps(floats, s));
    }
    for i in chunks * 8..n {
        dst[i] = src[i] as f32 * scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simd::{simd_active, with_scalar_kernels};

    #[test]
    fn f16_decode_encode_roundtrip_is_identity_on_all_halves() {
        // Every finite half decodes to an f32 that encodes back to itself
        // (decode is exact, and the decoded value needs no rounding).
        for h in 0..=u16::MAX {
            let exp = (h >> 10) & 0x1f;
            let f = f16_to_f32(h);
            if exp == 0x1f && (h & 0x03ff) != 0 {
                assert!(f.is_nan(), "h={h:#06x} must decode to NaN");
                continue;
            }
            assert_eq!(f32_to_f16(f), h, "h={h:#06x} f={f}");
        }
    }

    #[test]
    fn f16_encode_rounds_to_nearest_even() {
        // 1.0 + 2^-11 sits exactly between 1.0 and the next half
        // (1.0 + 2^-10); ties go to the even code (1.0).
        assert_eq!(f32_to_f16(1.0 + f32::powi(2.0, -11)), f32_to_f16(1.0));
        // One ulp above the tie rounds up.
        let just_above = f32::from_bits((1.0f32 + f32::powi(2.0, -11)).to_bits() + 1);
        assert_eq!(f32_to_f16(just_above), f32_to_f16(1.0) + 1);
        // Overflow saturates to inf, preserving sign.
        assert_eq!(f32_to_f16(1e6), 0x7c00);
        assert_eq!(f32_to_f16(-1e6), 0xfc00);
        // Tiny values underflow to signed zero.
        assert_eq!(f32_to_f16(1e-10), 0x0000);
        assert_eq!(f32_to_f16(-1e-10), 0x8000);
        // Subnormal halves survive the trip.
        let sub = f16_to_f32(0x0001);
        assert_eq!(f32_to_f16(sub), 0x0001);
    }

    #[test]
    fn f16_vector_and_scalar_decodes_agree_bitwise() {
        let src: Vec<u16> = (0..=u16::MAX).filter(|h| (h >> 10) & 0x1f != 0x1f).collect();
        let mut fast = vec![0f32; src.len()];
        let mut slow = vec![0f32; src.len()];
        decode_f16_into(&src, &mut fast);
        with_scalar_kernels(|| decode_f16_into(&src, &mut slow));
        for (i, (a, b)) in fast.iter().zip(&slow).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "half {:#06x}", src[i]);
        }
    }

    #[test]
    fn i8_roundtrip_error_is_bounded_by_half_scale() {
        let rows = 7;
        let cols = 33;
        let data: Vec<f32> =
            (0..rows * cols).map(|i| ((i * 2654435761) % 1000) as f32 / 250.0 - 2.0).collect();
        let (codes, scales) = quantize_rows_i8(&data, rows, cols);
        let mut out = vec![0f32; cols];
        for r in 0..rows {
            dequant_i8_into(&codes[r * cols..(r + 1) * cols], scales[r], &mut out);
            for (x, y) in data[r * cols..(r + 1) * cols].iter().zip(&out) {
                assert!((x - y).abs() <= scales[r] * 0.5 + 1e-7, "row {r}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn i8_zero_row_has_zero_scale_and_exact_zeros() {
        let data = vec![0f32; 12];
        let (codes, scales) = quantize_rows_i8(&data, 3, 4);
        assert!(scales.iter().all(|&s| s == 0.0));
        let mut out = vec![1f32; 4];
        dequant_i8_into(&codes[..4], scales[0], &mut out);
        assert!(out.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn i8_vector_and_scalar_dequants_agree_bitwise() {
        let src: Vec<i8> = (0..257).map(|i| ((i * 89) % 255 - 127) as i8).collect();
        let scale = 0.037_f32;
        let mut fast = vec![0f32; src.len()];
        let mut slow = vec![0f32; src.len()];
        dequant_i8_into(&src, scale, &mut fast);
        with_scalar_kernels(|| dequant_i8_into(&src, scale, &mut slow));
        for (a, b) in fast.iter().zip(&slow) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Report which path actually ran so CI logs show coverage.
        eprintln!("i8 parity checked with simd_active={}", simd_active());
    }
}
