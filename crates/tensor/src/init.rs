//! Weight initialization schemes.

use rand::Rng;

use crate::matrix::Matrix;

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. The right default for the linear and
/// GCN layers (tanh/softmax-adjacent activations).
pub fn xavier_uniform<R: Rng + ?Sized>(fan_in: usize, fan_out: usize, rng: &mut R) -> Matrix {
    assert!(fan_in > 0 && fan_out > 0, "fan dimensions must be positive");
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Matrix::random_uniform(fan_in, fan_out, a, rng)
}

/// He/Kaiming uniform initialization: `U(-a, a)` with `a = sqrt(6 / fan_in)`,
/// suited to ReLU layers.
pub fn he_uniform<R: Rng + ?Sized>(fan_in: usize, fan_out: usize, rng: &mut R) -> Matrix {
    assert!(fan_in > 0 && fan_out > 0, "fan dimensions must be positive");
    let a = (6.0 / fan_in as f32).sqrt();
    Matrix::random_uniform(fan_in, fan_out, a, rng)
}

/// A zero bias row `1 × n`.
pub fn zero_bias(n: usize) -> Matrix {
    Matrix::zeros(1, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_bound_holds() {
        let mut rng = StdRng::seed_from_u64(0);
        let w = xavier_uniform(64, 32, &mut rng);
        let bound = (6.0f32 / 96.0).sqrt();
        assert_eq!(w.shape(), (64, 32));
        assert!(w.max_abs() <= bound);
        assert!(w.max_abs() > bound * 0.8, "suspiciously small spread");
    }

    #[test]
    fn he_bound_holds() {
        let mut rng = StdRng::seed_from_u64(0);
        let w = he_uniform(50, 10, &mut rng);
        let bound = (6.0f32 / 50.0).sqrt();
        assert!(w.max_abs() <= bound);
    }

    #[test]
    fn init_is_deterministic_per_seed() {
        let a = xavier_uniform(8, 8, &mut StdRng::seed_from_u64(42));
        let b = xavier_uniform(8, 8, &mut StdRng::seed_from_u64(42));
        let c = xavier_uniform(8, 8, &mut StdRng::seed_from_u64(43));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_bias_shape() {
        let b = zero_bias(5);
        assert_eq!(b.shape(), (1, 5));
        assert!(b.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_fan() {
        let _ = xavier_uniform(0, 4, &mut StdRng::seed_from_u64(0));
    }
}
