//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Tape`] is an eagerly evaluated computation graph: every builder
//! method computes the forward value immediately and records the operation
//! so that [`Tape::backward`] can later push gradients from a scalar loss to
//! every parameter leaf. One tape is built per training step; persistent
//! parameters live in a [`ParamStore`].
//!
//! The operation set is exactly what the EDGE model family needs: dense and
//! sparse matrix products (GCN layers), the activation functions of
//! Eq. 2/10/11/12 (ReLU, softplus, softsign, softmax), row gather/concat
//! (per-tweet entity sets), 1-D convolution with max-pooling (the
//! UnicodeCNN baseline) and two fused negative-log-likelihood heads (the
//! bivariate-Gaussian-mixture loss of Eq. 13 and the fixed-component MvMF
//! loss) whose hand-derived gradients are verified against finite
//! differences in this crate's tests.
//!
//! ## Memory plan
//!
//! Tapes are built to be *recycled*, not merely dropped. Every transient
//! buffer a tape creates — node values, backward gradients, gather index
//! lists, fused-loss scratch — is carved out of a [`TapeArena`]
//! ([`Tape::with_arena`]) and returned to it by [`Tape::into_arena`], so a
//! steady-state training loop allocates nothing per batch. Parameter and
//! constant leaves are zero-copy: [`Tape::param`] and
//! [`Tape::constant_shared`] record an `Arc` onto the tape instead of
//! deep-cloning the matrix. Recycled buffers are re-zeroed before reuse, so
//! results are bit-for-bit identical to a fresh-allocation tape.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::arena::TapeArena;
use crate::matrix::Matrix;
use crate::sparse::CsrMatrix;

/// Handle to a persistent parameter in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub usize);

/// Persistent trainable parameters, shared across training steps.
///
/// Values are stored behind `Arc` so a tape can record a parameter leaf
/// without deep-cloning it ([`ParamStore::shared`]). Mutation goes through
/// [`ParamStore::get_mut`], which is copy-on-write: it is in-place whenever
/// no tape still holds the value (the train loop guarantees this by retiring
/// the tape before the optimizer step). `clone()` is correspondingly shallow
/// and copy-on-write; use [`ParamStore::deep_clone`] where an immediately
/// independent copy is required (checkpoints).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ParamStore {
    mats: Vec<Arc<Matrix>>,
    names: Vec<String>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter and returns its id.
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        self.mats.push(Arc::new(value));
        self.names.push(name.into());
        ParamId(self.mats.len() - 1)
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.mats.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.mats.is_empty()
    }

    /// Reads a parameter value.
    pub fn get(&self, id: ParamId) -> &Matrix {
        &self.mats[id.0]
    }

    /// A shared handle to a parameter value (the zero-copy leaf for
    /// [`Tape::param`]).
    pub fn shared(&self, id: ParamId) -> Arc<Matrix> {
        Arc::clone(&self.mats[id.0])
    }

    /// Mutates a parameter value (used by optimizers). Copy-on-write: clones
    /// the matrix first iff some tape or checkpoint still shares it.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Matrix {
        Arc::make_mut(&mut self.mats[id.0])
    }

    /// A deep copy whose matrices share nothing with `self`, so later
    /// in-place updates of either store cannot alias (checkpointing).
    pub fn deep_clone(&self) -> ParamStore {
        ParamStore {
            mats: self.mats.iter().map(|m| Arc::new(Matrix::clone(m))).collect(),
            names: self.names.clone(),
        }
    }

    /// The registered name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Iterates `(id, name, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Matrix)> {
        self.mats
            .iter()
            .zip(&self.names)
            .enumerate()
            .map(|(i, (m, n))| (ParamId(i), n.as_str(), &**m))
    }

    /// Total number of scalar parameters.
    pub fn total_scalars(&self) -> usize {
        self.mats.iter().map(|m| m.len()).sum()
    }
}

/// Handle to a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeId(usize);

/// A node's forward value: owned (arena-recyclable) or shared zero-copy with
/// a [`ParamStore`] / caller-held constant.
#[derive(Debug)]
pub(crate) enum Value {
    Owned(Matrix),
    Shared(Arc<Matrix>),
}

impl Value {
    #[inline]
    fn as_matrix(&self) -> &Matrix {
        match self {
            Value::Owned(m) => m,
            Value::Shared(m) => m,
        }
    }
}

#[derive(Debug)]
pub(crate) enum Op {
    Constant,
    Param(ParamId),
    MatMul(NodeId, NodeId),
    /// Sparse × dense; the sparse operand is constant (no gradient).
    SpMM(Arc<CsrMatrix>, NodeId),
    Add(NodeId, NodeId),
    Sub(NodeId, NodeId),
    Hadamard(NodeId, NodeId),
    Scale(NodeId, f32),
    /// `matrix + row` broadcast over rows.
    AddRowBroadcast(NodeId, NodeId),
    Relu(NodeId),
    Tanh(NodeId),
    Sigmoid(NodeId),
    Softplus(NodeId),
    Softsign(NodeId),
    /// Softmax applied independently to each row.
    SoftmaxRows(NodeId),
    Transpose(NodeId),
    GatherRows(NodeId, Vec<usize>),
    SliceCols(NodeId, usize, usize),
    ConcatRows(Vec<NodeId>),
    /// Column-wise sum, producing a single row.
    SumRows(NodeId),
    SumAll(NodeId),
    MeanAll(NodeId),
    /// Column-wise max over rows with cached argmax (global max pooling).
    MaxPoolRows(NodeId, Vec<usize>),
    /// Sliding-window row unfolding for 1-D convolution. Caches the kernel
    /// width; stride is 1.
    Im2Col(NodeId, usize),
    /// Fused bivariate-Gaussian-mixture NLL (Eq. 13) with gradient cached at
    /// forward time.
    GmmNll(NodeId, Matrix),
    /// Fused fixed-component mixture NLL (UnicodeCNN head) with cached
    /// gradient.
    MixtureConstNll(NodeId, Matrix),
}

#[derive(Debug)]
pub(crate) struct Node {
    pub(crate) value: Value,
    pub(crate) op: Op,
    pub(crate) requires_grad: bool,
}

/// An eagerly evaluated autodiff tape.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    arena: TapeArena,
}

/// Accumulates `delta` into the gradient slot of `target`, recycling the
/// delta buffer when the slot already holds a gradient. Bit-identical to the
/// historical clone-then-add: the existing slot stays the accumulator, so
/// addition order is unchanged.
fn acc(arena: &mut TapeArena, grads: &mut [Option<Matrix>], target: NodeId, delta: Matrix) {
    match &mut grads[target.0] {
        Some(existing) => {
            existing.add_scaled_inplace(&delta, 1.0);
            arena.recycle(delta);
        }
        slot @ None => *slot = Some(delta),
    }
}

impl Tape {
    /// An empty tape with a private arena (every buffer freshly allocated —
    /// the reference mode the recycled path is tested against).
    pub fn new() -> Self {
        Self::default()
    }

    /// A tape that carves its buffers out of `arena`'s recycled storage.
    /// Retire the tape with [`Tape::into_arena`] to keep the cycle going.
    pub fn with_arena(mut arena: TapeArena) -> Self {
        let nodes = std::mem::take(&mut arena.nodes);
        Self { nodes, arena }
    }

    /// Tears the tape down, returning every recyclable buffer (node values,
    /// index lists, cached loss gradients, the node vector itself) to the
    /// arena. Shared (`Arc`) leaves only drop their refcount — which is what
    /// lets the optimizer update parameters in place afterwards.
    pub fn into_arena(mut self) -> TapeArena {
        let mut nodes = std::mem::take(&mut self.nodes);
        let mut arena = std::mem::take(&mut self.arena);
        for node in nodes.drain(..) {
            let Node { value, op, .. } = node;
            match op {
                Op::GatherRows(_, indices) => arena.recycle_indices(indices),
                Op::MaxPoolRows(_, argmax) => arena.recycle_indices(argmax),
                Op::ConcatRows(parts) => arena.recycle_node_list(parts),
                Op::GmmNll(_, cached) | Op::MixtureConstNll(_, cached) => arena.recycle(cached),
                _ => {}
            }
            if let Value::Owned(m) = value {
                arena.recycle(m);
            }
        }
        arena.nodes = nodes;
        arena
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of a node.
    pub fn value(&self, id: NodeId) -> &Matrix {
        self.nodes[id.0].value.as_matrix()
    }

    /// The scalar value of a 1×1 node.
    pub fn scalar(&self, id: NodeId) -> f32 {
        let v = self.value(id);
        assert_eq!(v.shape(), (1, 1), "scalar() on a non-scalar node {:?}", v.shape());
        v.get(0, 0)
    }

    fn push(&mut self, value: Value, op: Op, requires_grad: bool) -> NodeId {
        edge_obs::counter!("tensor.tape.ops").inc(1);
        self.nodes.push(Node { value, op, requires_grad });
        NodeId(self.nodes.len() - 1)
    }

    fn rg(&self, id: NodeId) -> bool {
        self.nodes[id.0].requires_grad
    }

    /// An arena matrix shaped like node `id` (split-borrow helper: computes
    /// the shape before taking the arena mutably).
    fn take_like_node(&mut self, id: NodeId) -> Matrix {
        let (rows, cols) = self.value(id).shape();
        self.arena.take_matrix(rows, cols)
    }

    // ---- leaves -----------------------------------------------------------

    /// Records a constant (no gradient flows into it).
    pub fn constant(&mut self, value: Matrix) -> NodeId {
        self.push(Value::Owned(value), Op::Constant, false)
    }

    /// Records a constant without copying it: the tape holds a refcount, not
    /// a clone. The buffer is returned to the caller's `Arc` (not the arena)
    /// on teardown.
    pub fn constant_shared(&mut self, value: Arc<Matrix>) -> NodeId {
        self.push(Value::Shared(value), Op::Constant, false)
    }

    /// Records a parameter leaf whose gradient will be reported by
    /// [`Tape::backward`]. Zero-copy: shares the store's matrix.
    pub fn param(&mut self, id: ParamId, store: &ParamStore) -> NodeId {
        self.push(Value::Shared(store.shared(id)), Op::Param(id), true)
    }

    // ---- linear algebra ---------------------------------------------------

    /// `a × b`.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (rows, cols) = (self.value(a).rows(), self.value(b).cols());
        let mut v = self.arena.take_matrix(rows, cols);
        self.value(a).matmul_into(self.value(b), &mut v);
        let g = self.rg(a) || self.rg(b);
        self.push(Value::Owned(v), Op::MatMul(a, b), g)
    }

    /// `sparse × dense` with a constant sparse operand.
    pub fn spmm(&mut self, sparse: Arc<CsrMatrix>, dense: NodeId) -> NodeId {
        let mut v = self.arena.take_matrix(sparse.rows(), self.value(dense).cols());
        sparse.matmul_dense_into(self.value(dense), &mut v);
        let g = self.rg(dense);
        self.push(Value::Owned(v), Op::SpMM(sparse, dense), g)
    }

    /// `a + b` (same shape).
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let mut v = self.take_like_node(a);
        self.value(a).zip_map_into(self.value(b), &mut v, |x, y| x + y);
        let g = self.rg(a) || self.rg(b);
        self.push(Value::Owned(v), Op::Add(a, b), g)
    }

    /// `a - b` (same shape).
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let mut v = self.take_like_node(a);
        self.value(a).zip_map_into(self.value(b), &mut v, |x, y| x - y);
        let g = self.rg(a) || self.rg(b);
        self.push(Value::Owned(v), Op::Sub(a, b), g)
    }

    /// Elementwise product.
    pub fn hadamard(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let mut v = self.take_like_node(a);
        self.value(a).zip_map_into(self.value(b), &mut v, |x, y| x * y);
        let g = self.rg(a) || self.rg(b);
        self.push(Value::Owned(v), Op::Hadamard(a, b), g)
    }

    /// `a * s` for a scalar `s`.
    pub fn scale(&mut self, a: NodeId, s: f32) -> NodeId {
        let mut v = self.take_like_node(a);
        self.value(a).map_into(&mut v, |x| x * s);
        let g = self.rg(a);
        self.push(Value::Owned(v), Op::Scale(a, s), g)
    }

    /// `matrix + row`, the bias-add of Eq. 2 / Eq. 7.
    pub fn add_row_broadcast(&mut self, matrix: NodeId, row: NodeId) -> NodeId {
        let mut v = self.take_like_node(matrix);
        self.value(matrix).add_row_broadcast_into(self.value(row), &mut v);
        let g = self.rg(matrix) || self.rg(row);
        self.push(Value::Owned(v), Op::AddRowBroadcast(matrix, row), g)
    }

    // ---- activations ------------------------------------------------------

    fn unary_map(&mut self, a: NodeId, op: Op, f: impl Fn(f32) -> f32) -> NodeId {
        let mut v = self.take_like_node(a);
        self.value(a).map_into(&mut v, f);
        let g = self.rg(a);
        self.push(Value::Owned(v), op, g)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        self.unary_map(a, Op::Relu(a), |x| x.max(0.0))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        self.unary_map(a, Op::Tanh(a), f32::tanh)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        self.unary_map(a, Op::Sigmoid(a), |x| 1.0 / (1.0 + (-x).exp()))
    }

    /// Softplus `ln(1 + eˣ)` (Eq. 10), computed stably for large |x|.
    pub fn softplus(&mut self, a: NodeId) -> NodeId {
        self.unary_map(a, Op::Softplus(a), softplus_f32)
    }

    /// Softsign `x / (1 + |x|)` (Eq. 11).
    pub fn softsign(&mut self, a: NodeId) -> NodeId {
        self.unary_map(a, Op::Softsign(a), |x| x / (1.0 + x.abs()))
    }

    /// Row-wise softmax (Eq. 3 / Eq. 12), max-shifted for stability.
    pub fn softmax_rows(&mut self, a: NodeId) -> NodeId {
        let mut v = self.take_like_node(a);
        v.copy_from(self.value(a));
        for r in 0..v.rows() {
            softmax_in_place(v.row_mut(r));
        }
        let g = self.rg(a);
        self.push(Value::Owned(v), Op::SoftmaxRows(a), g)
    }

    // ---- shape manipulation -------------------------------------------------

    /// Matrix transpose.
    pub fn transpose(&mut self, a: NodeId) -> NodeId {
        let (rows, cols) = self.value(a).shape();
        let mut v = self.arena.take_matrix(cols, rows);
        self.value(a).transpose_into(&mut v);
        let g = self.rg(a);
        self.push(Value::Owned(v), Op::Transpose(a), g)
    }

    /// Row gather (entity-set extraction); indices may repeat. Borrows the
    /// index slice — the per-tweet entity lists of the train loop are *not*
    /// cloned per batch; the tape interns them into recycled storage.
    pub fn gather_rows(&mut self, a: NodeId, indices: &[usize]) -> NodeId {
        let mut interned = self.arena.take_indices(indices.len());
        interned.extend_from_slice(indices);
        let mut v = self.arena.take_matrix(indices.len(), self.value(a).cols());
        self.value(a).gather_rows_into(&interned, &mut v);
        let g = self.rg(a);
        self.push(Value::Owned(v), Op::GatherRows(a, interned), g)
    }

    /// Column slice `[start, end)`.
    pub fn slice_cols(&mut self, a: NodeId, start: usize, end: usize) -> NodeId {
        assert!(start < end && end <= self.value(a).cols(), "bad column slice {start}..{end}");
        let mut v = self.arena.take_matrix(self.value(a).rows(), end - start);
        let x = self.value(a);
        for r in 0..x.rows() {
            v.row_mut(r).copy_from_slice(&x.row(r)[start..end]);
        }
        let g = self.rg(a);
        self.push(Value::Owned(v), Op::SliceCols(a, start, end), g)
    }

    /// Vertical concatenation of nodes with equal column counts. Borrows the
    /// part list (interned into recycled storage).
    pub fn concat_rows(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "concat_rows needs at least one part");
        let mut interned = self.arena.take_node_list(parts.len());
        interned.extend_from_slice(parts);
        let cols = self.value(parts[0]).cols();
        let total: usize = parts.iter().map(|&p| self.value(p).rows()).sum();
        let mut v = self.arena.take_matrix(total, cols);
        let mut offset = 0;
        for &p in parts {
            let x = self.value(p);
            assert_eq!(x.cols(), cols, "concat_rows width mismatch");
            for r in 0..x.rows() {
                v.row_mut(offset + r).copy_from_slice(x.row(r));
            }
            offset += x.rows();
        }
        let g = parts.iter().any(|&p| self.rg(p));
        self.push(Value::Owned(v), Op::ConcatRows(interned), g)
    }

    // ---- reductions -------------------------------------------------------

    /// Column-wise sum producing a 1×cols row (the SUM ablation aggregator).
    pub fn sum_rows(&mut self, a: NodeId) -> NodeId {
        let mut v = self.arena.take_matrix(1, self.value(a).cols());
        self.value(a).sum_rows_into(&mut v);
        let g = self.rg(a);
        self.push(Value::Owned(v), Op::SumRows(a), g)
    }

    /// Sum of all entries (1×1).
    pub fn sum_all(&mut self, a: NodeId) -> NodeId {
        let mut v = self.arena.take_matrix(1, 1);
        v.set(0, 0, self.value(a).sum());
        let g = self.rg(a);
        self.push(Value::Owned(v), Op::SumAll(a), g)
    }

    /// Mean of all entries (1×1).
    pub fn mean_all(&mut self, a: NodeId) -> NodeId {
        let mut v = self.arena.take_matrix(1, 1);
        {
            let x = self.value(a);
            let mean = x.sum() / x.len() as f32;
            v.set(0, 0, mean);
        }
        let g = self.rg(a);
        self.push(Value::Owned(v), Op::MeanAll(a), g)
    }

    /// Global max pooling over rows: `L×C → 1×C` with cached argmax.
    pub fn max_pool_rows(&mut self, a: NodeId) -> NodeId {
        assert!(self.value(a).rows() > 0, "max_pool_rows on empty matrix");
        let cols = self.value(a).cols();
        let mut argmax = self.arena.take_indices(cols);
        argmax.resize(cols, 0);
        let mut v = self.arena.take_matrix(1, cols);
        {
            let x = self.value(a);
            for (c, arg) in argmax.iter_mut().enumerate() {
                let mut best = f32::NEG_INFINITY;
                for r in 0..x.rows() {
                    let val = x.get(r, c);
                    if val > best {
                        best = val;
                        *arg = r;
                    }
                }
                v.set(0, c, best);
            }
        }
        let g = self.rg(a);
        self.push(Value::Owned(v), Op::MaxPoolRows(a, argmax), g)
    }

    // ---- convolution ------------------------------------------------------

    /// Unfolds `L×C` into `(L-k+1) × (k·C)` sliding windows (stride 1), the
    /// im2col step of 1-D convolution. Requires `L ≥ k`.
    pub fn im2col(&mut self, a: NodeId, kernel: usize) -> NodeId {
        let (rows, c) = self.value(a).shape();
        assert!(kernel >= 1 && rows >= kernel, "im2col: input shorter than kernel");
        let out_rows = rows - kernel + 1;
        let mut v = self.arena.take_matrix(out_rows, kernel * c);
        {
            let x = self.value(a);
            for r in 0..out_rows {
                for k in 0..kernel {
                    v.row_mut(r)[k * c..(k + 1) * c].copy_from_slice(x.row(r + k));
                }
            }
        }
        let g = self.rg(a);
        self.push(Value::Owned(v), Op::Im2Col(a, kernel), g)
    }

    // ---- fused losses -----------------------------------------------------

    /// Fused negative log-likelihood of bivariate Gaussian mixtures (Eq. 13).
    ///
    /// `theta` is `B × 6M` with column layout
    /// `[π̂ | μ_lat | μ_lon | σ̂_lat | σ̂_lon | ρ̂]` (each block of width `M`);
    /// the activations of Eq. 10–12 (softplus on σ, softsign on ρ, softmax on
    /// π) are applied *inside* this op. `targets[b] = (lat, lon)` is the
    /// ground-truth location of row `b`. The output is the **summed** NLL
    /// (1×1); scale by `1/B` for a mean.
    pub fn gmm_nll(&mut self, theta: NodeId, targets: &[(f64, f64)], m: usize) -> NodeId {
        {
            let x = self.value(theta);
            assert_eq!(x.rows(), targets.len(), "one target per theta row");
            assert_eq!(x.cols(), 6 * m, "theta must be B x 6M");
        }
        let (rows, cols) = self.value(theta).shape();
        let mut grad = self.arena.take_matrix(rows, cols);
        let mut scratch = std::mem::take(&mut self.arena.loss_scratch);
        let mut loss = 0.0f64;
        {
            let x = self.value(theta);
            for (b, &(t_lat, t_lon)) in targets.iter().enumerate() {
                loss += crate::loss::gmm_nll_row_into(
                    x.row(b),
                    t_lat,
                    t_lon,
                    m,
                    &mut scratch,
                    grad.row_mut(b),
                );
            }
        }
        self.arena.loss_scratch = scratch;
        let mut v = self.arena.take_matrix(1, 1);
        v.set(0, 0, loss as f32);
        let g = self.rg(theta);
        self.push(Value::Owned(v), Op::GmmNll(theta, grad), g)
    }

    /// Fused NLL for a mixture with fixed components and learnable weights
    /// (the UnicodeCNN / MvMF head): `loss_b = -ln Σ_m softmax(logits_b)_m
    /// exp(log_comp[b][m])`.
    ///
    /// `log_comp` holds the log-density of each fixed component at row `b`'s
    /// true location. Output is the summed NLL (1×1).
    pub fn mixture_const_nll(&mut self, logits: NodeId, log_comp: &Matrix) -> NodeId {
        assert_eq!(self.value(logits).shape(), log_comp.shape(), "logits/log_comp shape mismatch");
        let (rows, cols) = self.value(logits).shape();
        let mut grad = self.arena.take_matrix(rows, cols);
        let mut scratch = std::mem::take(&mut self.arena.loss_scratch);
        let mut loss = 0.0f64;
        {
            let x = self.value(logits);
            for b in 0..rows {
                loss += crate::loss::mixture_const_nll_row_into(
                    x.row(b),
                    log_comp.row(b),
                    &mut scratch,
                    grad.row_mut(b),
                );
            }
        }
        self.arena.loss_scratch = scratch;
        let mut v = self.arena.take_matrix(1, 1);
        v.set(0, 0, loss as f32);
        let g = self.rg(logits);
        self.push(Value::Owned(v), Op::MixtureConstNll(logits, grad), g)
    }

    // ---- backward ---------------------------------------------------------

    /// Reverse-mode sweep from scalar node `loss` (must be 1×1). Returns the
    /// gradient of every [`ParamId`] leaf that the loss depends on.
    pub fn backward(&mut self, loss: NodeId) -> Vec<(ParamId, Matrix)> {
        let mut param_grads = Vec::new();
        self.backward_into(loss, &mut param_grads);
        param_grads
    }

    /// [`Tape::backward`] writing into a caller-owned vector (cleared
    /// first). The gradient matrices are arena-class buffers; hand them back
    /// via [`TapeArena::recycle`] after the optimizer step to complete the
    /// zero-allocation cycle.
    pub fn backward_into(&mut self, loss: NodeId, param_grads: &mut Vec<(ParamId, Matrix)>) {
        assert_eq!(self.value(loss).shape(), (1, 1), "backward must start from a scalar loss");
        edge_obs::counter!("tensor.tape.backward.calls").inc(1);
        let _span = edge_obs::span("backward");
        param_grads.clear();
        let Tape { nodes, arena } = self;
        let mut grads = std::mem::take(&mut arena.slots);
        grads.clear();
        grads.resize_with(nodes.len(), || None);
        let mut seed = arena.take_matrix(1, 1);
        seed.set(0, 0, 1.0);
        grads[loss.0] = Some(seed);

        for i in (0..=loss.0).rev() {
            let Some(g_out) = grads[i].take() else { continue };
            if !nodes[i].requires_grad {
                arena.recycle(g_out);
                continue;
            }
            let val = |id: NodeId| nodes[id.0].value.as_matrix();
            let rg = |id: NodeId| nodes[id.0].requires_grad;
            match &nodes[i].op {
                Op::Constant => {}
                Op::Param(pid) => {
                    // The same parameter may appear as several leaves (e.g. a
                    // weight matrix reused across layers); merge those here so
                    // optimizers see one gradient per parameter.
                    match param_grads.iter_mut().find(|(p, _)| p == pid) {
                        Some((_, existing)) => {
                            existing.add_scaled_inplace(&g_out, 1.0);
                            arena.recycle(g_out);
                        }
                        None => param_grads.push((*pid, g_out)),
                    }
                    continue;
                }
                Op::MatMul(a, b) => {
                    if rg(*a) {
                        let bv = val(*b);
                        let mut bt = arena.take_matrix(bv.cols(), bv.rows());
                        bv.transpose_into(&mut bt);
                        let mut d = arena.take_matrix(g_out.rows(), bt.cols());
                        g_out.matmul_into(&bt, &mut d);
                        arena.recycle(bt);
                        acc(arena, &mut grads, *a, d);
                    }
                    if rg(*b) {
                        let av = val(*a);
                        let mut at = arena.take_matrix(av.cols(), av.rows());
                        av.transpose_into(&mut at);
                        let mut d = arena.take_matrix(at.rows(), g_out.cols());
                        at.matmul_into(&g_out, &mut d);
                        arena.recycle(at);
                        acc(arena, &mut grads, *b, d);
                    }
                }
                Op::SpMM(s, dense) => {
                    if rg(*dense) {
                        let mut d = arena.take_matrix(s.cols(), g_out.cols());
                        s.transpose_matmul_dense_into(&g_out, &mut d);
                        acc(arena, &mut grads, *dense, d);
                    }
                }
                Op::Add(a, b) => {
                    if rg(*a) {
                        let mut d = arena.take_matrix_like(&g_out);
                        d.copy_from(&g_out);
                        acc(arena, &mut grads, *a, d);
                    }
                    if rg(*b) {
                        acc(arena, &mut grads, *b, g_out);
                        continue;
                    }
                }
                Op::Sub(a, b) => {
                    if rg(*a) {
                        let mut d = arena.take_matrix_like(&g_out);
                        d.copy_from(&g_out);
                        acc(arena, &mut grads, *a, d);
                    }
                    if rg(*b) {
                        let mut d = arena.take_matrix_like(&g_out);
                        g_out.map_into(&mut d, |v| -v);
                        acc(arena, &mut grads, *b, d);
                    }
                }
                Op::Hadamard(a, b) => {
                    if rg(*a) {
                        let mut d = arena.take_matrix_like(&g_out);
                        g_out.zip_map_into(val(*b), &mut d, |x, y| x * y);
                        acc(arena, &mut grads, *a, d);
                    }
                    if rg(*b) {
                        let mut d = arena.take_matrix_like(&g_out);
                        g_out.zip_map_into(val(*a), &mut d, |x, y| x * y);
                        acc(arena, &mut grads, *b, d);
                    }
                }
                Op::Scale(a, s) => {
                    if rg(*a) {
                        let mut d = arena.take_matrix_like(&g_out);
                        let s = *s;
                        g_out.map_into(&mut d, |v| v * s);
                        acc(arena, &mut grads, *a, d);
                    }
                }
                Op::AddRowBroadcast(mat, row) => {
                    if rg(*mat) {
                        let mut d = arena.take_matrix_like(&g_out);
                        d.copy_from(&g_out);
                        acc(arena, &mut grads, *mat, d);
                    }
                    if rg(*row) {
                        let mut d = arena.take_matrix(1, g_out.cols());
                        g_out.sum_rows_into(&mut d);
                        acc(arena, &mut grads, *row, d);
                    }
                }
                // The unary activations fuse mask-then-multiply into one
                // zip: `g · f'(x)` multiplies the same two factors in the
                // same order as the historical map-then-hadamard, so results
                // are bit-for-bit unchanged.
                Op::Relu(a) => {
                    if rg(*a) {
                        let mut d = arena.take_matrix_like(&g_out);
                        g_out.zip_map_into(val(*a), &mut d, |g, x| {
                            g * if x > 0.0 { 1.0 } else { 0.0 }
                        });
                        acc(arena, &mut grads, *a, d);
                    }
                }
                Op::Tanh(a) => {
                    if rg(*a) {
                        let mut d = arena.take_matrix_like(&g_out);
                        g_out.zip_map_into(nodes[i].value.as_matrix(), &mut d, |g, y| {
                            g * (1.0 - y * y)
                        });
                        acc(arena, &mut grads, *a, d);
                    }
                }
                Op::Sigmoid(a) => {
                    if rg(*a) {
                        let mut d = arena.take_matrix_like(&g_out);
                        g_out.zip_map_into(nodes[i].value.as_matrix(), &mut d, |g, y| {
                            g * (y * (1.0 - y))
                        });
                        acc(arena, &mut grads, *a, d);
                    }
                }
                Op::Softplus(a) => {
                    if rg(*a) {
                        let mut d = arena.take_matrix_like(&g_out);
                        g_out.zip_map_into(val(*a), &mut d, |g, x| g * (1.0 / (1.0 + (-x).exp())));
                        acc(arena, &mut grads, *a, d);
                    }
                }
                Op::Softsign(a) => {
                    if rg(*a) {
                        let mut d = arena.take_matrix_like(&g_out);
                        g_out.zip_map_into(val(*a), &mut d, |g, x| {
                            let t = 1.0 + x.abs();
                            g * (1.0 / (t * t))
                        });
                        acc(arena, &mut grads, *a, d);
                    }
                }
                Op::SoftmaxRows(a) => {
                    if rg(*a) {
                        let y = nodes[i].value.as_matrix();
                        let mut d = arena.take_matrix_like(y);
                        for r in 0..y.rows() {
                            let yr = y.row(r);
                            let gr = g_out.row(r);
                            let dot: f32 = yr.iter().zip(gr).map(|(&a, &b)| a * b).sum();
                            for c in 0..y.cols() {
                                d.set(r, c, yr[c] * (gr[c] - dot));
                            }
                        }
                        acc(arena, &mut grads, *a, d);
                    }
                }
                Op::Transpose(a) => {
                    if rg(*a) {
                        let mut d = arena.take_matrix(g_out.cols(), g_out.rows());
                        g_out.transpose_into(&mut d);
                        acc(arena, &mut grads, *a, d);
                    }
                }
                Op::GatherRows(a, indices) => {
                    if rg(*a) {
                        let src = val(*a);
                        let mut d = arena.take_matrix_like(src);
                        for (out_r, &src_r) in indices.iter().enumerate() {
                            let g_row = g_out.row(out_r);
                            let d_row = d.row_mut(src_r);
                            for (dst, &g) in d_row.iter_mut().zip(g_row) {
                                *dst += g;
                            }
                        }
                        acc(arena, &mut grads, *a, d);
                    }
                }
                Op::SliceCols(a, start, _end) => {
                    if rg(*a) {
                        let src = val(*a);
                        let mut d = arena.take_matrix_like(src);
                        for r in 0..g_out.rows() {
                            d.row_mut(r)[*start..*start + g_out.cols()]
                                .copy_from_slice(g_out.row(r));
                        }
                        acc(arena, &mut grads, *a, d);
                    }
                }
                Op::ConcatRows(parts) => {
                    let mut offset = 0;
                    for &p in parts {
                        let rows = val(p).rows();
                        if rg(p) {
                            let mut d = arena.take_matrix(rows, g_out.cols());
                            for r in 0..rows {
                                d.row_mut(r).copy_from_slice(g_out.row(offset + r));
                            }
                            acc(arena, &mut grads, p, d);
                        }
                        offset += rows;
                    }
                }
                Op::SumRows(a) => {
                    if rg(*a) {
                        let src = val(*a);
                        let mut d = arena.take_matrix_like(src);
                        for r in 0..src.rows() {
                            d.row_mut(r).copy_from_slice(g_out.row(0));
                        }
                        acc(arena, &mut grads, *a, d);
                    }
                }
                Op::SumAll(a) => {
                    if rg(*a) {
                        let src = val(*a);
                        let mut d = arena.take_matrix_like(src);
                        d.fill(g_out.get(0, 0));
                        acc(arena, &mut grads, *a, d);
                    }
                }
                Op::MeanAll(a) => {
                    if rg(*a) {
                        let src = val(*a);
                        let mut d = arena.take_matrix_like(src);
                        d.fill(g_out.get(0, 0) / src.len() as f32);
                        acc(arena, &mut grads, *a, d);
                    }
                }
                Op::MaxPoolRows(a, argmax) => {
                    if rg(*a) {
                        let src = val(*a);
                        let mut d = arena.take_matrix_like(src);
                        for (c, &r) in argmax.iter().enumerate() {
                            d.set(r, c, g_out.get(0, c));
                        }
                        acc(arena, &mut grads, *a, d);
                    }
                }
                Op::Im2Col(a, kernel) => {
                    if rg(*a) {
                        let src = val(*a);
                        let c = src.cols();
                        let mut d = arena.take_matrix_like(src);
                        for r in 0..g_out.rows() {
                            for k in 0..*kernel {
                                let g_seg = &g_out.row(r)[k * c..(k + 1) * c];
                                let d_row = d.row_mut(r + k);
                                for (dst, &g) in d_row.iter_mut().zip(g_seg) {
                                    *dst += g;
                                }
                            }
                        }
                        acc(arena, &mut grads, *a, d);
                    }
                }
                Op::GmmNll(theta, cached) => {
                    if rg(*theta) {
                        let mut d = arena.take_matrix_like(cached);
                        let s = g_out.get(0, 0);
                        cached.map_into(&mut d, |v| v * s);
                        acc(arena, &mut grads, *theta, d);
                    }
                }
                Op::MixtureConstNll(logits, cached) => {
                    if rg(*logits) {
                        let mut d = arena.take_matrix_like(cached);
                        let s = g_out.get(0, 0);
                        cached.map_into(&mut d, |v| v * s);
                        acc(arena, &mut grads, *logits, d);
                    }
                }
            }
            arena.recycle(g_out);
        }
        // Gradients that never reached a parameter leaf (dead branches) go
        // back to the pool, and the slot vector's capacity is kept for the
        // next backward pass.
        for slot in grads.iter_mut() {
            if let Some(m) = slot.take() {
                arena.recycle(m);
            }
        }
        arena.slots = grads;
    }
}

/// Numerically stable softplus.
pub fn softplus_f32(x: f32) -> f32 {
    if x > 20.0 {
        x
    } else if x < -20.0 {
        x.exp()
    } else {
        (1.0 + x.exp()).ln()
    }
}

/// In-place stable softmax of a slice.
pub fn softmax_in_place(xs: &mut [f32]) {
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in xs.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    for x in xs.iter_mut() {
        *x /= sum;
    }
}
