//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Tape`] is an eagerly evaluated computation graph: every builder
//! method computes the forward value immediately and records the operation
//! so that [`Tape::backward`] can later push gradients from a scalar loss to
//! every parameter leaf. One tape is built per training step and dropped
//! afterwards; persistent parameters live in a [`ParamStore`].
//!
//! The operation set is exactly what the EDGE model family needs: dense and
//! sparse matrix products (GCN layers), the activation functions of
//! Eq. 2/10/11/12 (ReLU, softplus, softsign, softmax), row gather/concat
//! (per-tweet entity sets), 1-D convolution with max-pooling (the
//! UnicodeCNN baseline) and two fused negative-log-likelihood heads (the
//! bivariate-Gaussian-mixture loss of Eq. 13 and the fixed-component MvMF
//! loss) whose hand-derived gradients are verified against finite
//! differences in this crate's tests.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;
use crate::sparse::CsrMatrix;

/// Handle to a persistent parameter in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub usize);

/// Persistent trainable parameters, shared across training steps.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ParamStore {
    mats: Vec<Matrix>,
    names: Vec<String>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter and returns its id.
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        self.mats.push(value);
        self.names.push(name.into());
        ParamId(self.mats.len() - 1)
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.mats.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.mats.is_empty()
    }

    /// Reads a parameter value.
    pub fn get(&self, id: ParamId) -> &Matrix {
        &self.mats[id.0]
    }

    /// Mutates a parameter value (used by optimizers).
    pub fn get_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.mats[id.0]
    }

    /// The registered name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Iterates `(id, name, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Matrix)> {
        self.mats.iter().zip(&self.names).enumerate().map(|(i, (m, n))| (ParamId(i), n.as_str(), m))
    }

    /// Total number of scalar parameters.
    pub fn total_scalars(&self) -> usize {
        self.mats.iter().map(Matrix::len).sum()
    }
}

/// Handle to a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeId(usize);

enum Op {
    Constant,
    Param(ParamId),
    MatMul(NodeId, NodeId),
    /// Sparse × dense; the sparse operand is constant (no gradient).
    SpMM(Arc<CsrMatrix>, NodeId),
    Add(NodeId, NodeId),
    Sub(NodeId, NodeId),
    Hadamard(NodeId, NodeId),
    Scale(NodeId, f32),
    /// `matrix + row` broadcast over rows.
    AddRowBroadcast(NodeId, NodeId),
    Relu(NodeId),
    Tanh(NodeId),
    Sigmoid(NodeId),
    Softplus(NodeId),
    Softsign(NodeId),
    /// Softmax applied independently to each row.
    SoftmaxRows(NodeId),
    Transpose(NodeId),
    GatherRows(NodeId, Vec<usize>),
    SliceCols(NodeId, usize, usize),
    ConcatRows(Vec<NodeId>),
    /// Column-wise sum, producing a single row.
    SumRows(NodeId),
    SumAll(NodeId),
    MeanAll(NodeId),
    /// Column-wise max over rows with cached argmax (global max pooling).
    MaxPoolRows(NodeId, Vec<usize>),
    /// Sliding-window row unfolding for 1-D convolution. Caches the kernel
    /// width; stride is 1.
    Im2Col(NodeId, usize),
    /// Fused bivariate-Gaussian-mixture NLL (Eq. 13) with gradient cached at
    /// forward time.
    GmmNll(NodeId, Matrix),
    /// Fused fixed-component mixture NLL (UnicodeCNN head) with cached
    /// gradient.
    MixtureConstNll(NodeId, Matrix),
}

struct Node {
    value: Matrix,
    op: Op,
    requires_grad: bool,
}

/// An eagerly evaluated autodiff tape.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of a node.
    pub fn value(&self, id: NodeId) -> &Matrix {
        &self.nodes[id.0].value
    }

    /// The scalar value of a 1×1 node.
    pub fn scalar(&self, id: NodeId) -> f32 {
        let v = self.value(id);
        assert_eq!(v.shape(), (1, 1), "scalar() on a non-scalar node {:?}", v.shape());
        v.get(0, 0)
    }

    fn push(&mut self, value: Matrix, op: Op, requires_grad: bool) -> NodeId {
        edge_obs::counter!("tensor.tape.ops").inc(1);
        self.nodes.push(Node { value, op, requires_grad });
        NodeId(self.nodes.len() - 1)
    }

    fn rg(&self, id: NodeId) -> bool {
        self.nodes[id.0].requires_grad
    }

    // ---- leaves -----------------------------------------------------------

    /// Records a constant (no gradient flows into it).
    pub fn constant(&mut self, value: Matrix) -> NodeId {
        self.push(value, Op::Constant, false)
    }

    /// Records a parameter leaf whose gradient will be reported by
    /// [`Tape::backward`].
    pub fn param(&mut self, id: ParamId, store: &ParamStore) -> NodeId {
        self.push(store.get(id).clone(), Op::Param(id), true)
    }

    // ---- linear algebra ---------------------------------------------------

    /// `a × b`.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).matmul(self.value(b));
        let g = self.rg(a) || self.rg(b);
        self.push(v, Op::MatMul(a, b), g)
    }

    /// `sparse × dense` with a constant sparse operand.
    pub fn spmm(&mut self, sparse: Arc<CsrMatrix>, dense: NodeId) -> NodeId {
        let v = sparse.matmul_dense(self.value(dense));
        let g = self.rg(dense);
        self.push(v, Op::SpMM(sparse, dense), g)
    }

    /// `a + b` (same shape).
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).add(self.value(b));
        let g = self.rg(a) || self.rg(b);
        self.push(v, Op::Add(a, b), g)
    }

    /// `a - b` (same shape).
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).sub(self.value(b));
        let g = self.rg(a) || self.rg(b);
        self.push(v, Op::Sub(a, b), g)
    }

    /// Elementwise product.
    pub fn hadamard(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).hadamard(self.value(b));
        let g = self.rg(a) || self.rg(b);
        self.push(v, Op::Hadamard(a, b), g)
    }

    /// `a * s` for a scalar `s`.
    pub fn scale(&mut self, a: NodeId, s: f32) -> NodeId {
        let v = self.value(a).scale(s);
        let g = self.rg(a);
        self.push(v, Op::Scale(a, s), g)
    }

    /// `matrix + row`, the bias-add of Eq. 2 / Eq. 7.
    pub fn add_row_broadcast(&mut self, matrix: NodeId, row: NodeId) -> NodeId {
        let v = self.value(matrix).add_row_broadcast(self.value(row));
        let g = self.rg(matrix) || self.rg(row);
        self.push(v, Op::AddRowBroadcast(matrix, row), g)
    }

    // ---- activations ------------------------------------------------------

    /// Rectified linear unit.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(|x| x.max(0.0));
        let g = self.rg(a);
        self.push(v, Op::Relu(a), g)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(f32::tanh);
        let g = self.rg(a);
        self.push(v, Op::Tanh(a), g)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        let g = self.rg(a);
        self.push(v, Op::Sigmoid(a), g)
    }

    /// Softplus `ln(1 + eˣ)` (Eq. 10), computed stably for large |x|.
    pub fn softplus(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(softplus_f32);
        let g = self.rg(a);
        self.push(v, Op::Softplus(a), g)
    }

    /// Softsign `x / (1 + |x|)` (Eq. 11).
    pub fn softsign(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(|x| x / (1.0 + x.abs()));
        let g = self.rg(a);
        self.push(v, Op::Softsign(a), g)
    }

    /// Row-wise softmax (Eq. 3 / Eq. 12), max-shifted for stability.
    pub fn softmax_rows(&mut self, a: NodeId) -> NodeId {
        let x = self.value(a);
        let mut v = x.clone();
        for r in 0..v.rows() {
            softmax_in_place(v.row_mut(r));
        }
        let g = self.rg(a);
        self.push(v, Op::SoftmaxRows(a), g)
    }

    // ---- shape manipulation -------------------------------------------------

    /// Matrix transpose.
    pub fn transpose(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).transpose();
        let g = self.rg(a);
        self.push(v, Op::Transpose(a), g)
    }

    /// Row gather (entity-set extraction); indices may repeat.
    pub fn gather_rows(&mut self, a: NodeId, indices: Vec<usize>) -> NodeId {
        let v = self.value(a).gather_rows(&indices);
        let g = self.rg(a);
        self.push(v, Op::GatherRows(a, indices), g)
    }

    /// Column slice `[start, end)`.
    pub fn slice_cols(&mut self, a: NodeId, start: usize, end: usize) -> NodeId {
        let x = self.value(a);
        assert!(start < end && end <= x.cols(), "bad column slice {start}..{end}");
        let mut v = Matrix::zeros(x.rows(), end - start);
        for r in 0..x.rows() {
            v.row_mut(r).copy_from_slice(&x.row(r)[start..end]);
        }
        let g = self.rg(a);
        self.push(v, Op::SliceCols(a, start, end), g)
    }

    /// Vertical concatenation of nodes with equal column counts.
    pub fn concat_rows(&mut self, parts: Vec<NodeId>) -> NodeId {
        assert!(!parts.is_empty(), "concat_rows needs at least one part");
        let cols = self.value(parts[0]).cols();
        let total: usize = parts.iter().map(|&p| self.value(p).rows()).sum();
        let mut v = Matrix::zeros(total, cols);
        let mut offset = 0;
        for &p in &parts {
            let x = self.value(p);
            assert_eq!(x.cols(), cols, "concat_rows width mismatch");
            for r in 0..x.rows() {
                v.row_mut(offset + r).copy_from_slice(x.row(r));
            }
            offset += x.rows();
        }
        let g = parts.iter().any(|&p| self.rg(p));
        self.push(v, Op::ConcatRows(parts), g)
    }

    // ---- reductions -------------------------------------------------------

    /// Column-wise sum producing a 1×cols row (the SUM ablation aggregator).
    pub fn sum_rows(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).sum_rows();
        let g = self.rg(a);
        self.push(v, Op::SumRows(a), g)
    }

    /// Sum of all entries (1×1).
    pub fn sum_all(&mut self, a: NodeId) -> NodeId {
        let v = Matrix::from_vec(1, 1, vec![self.value(a).sum()]);
        let g = self.rg(a);
        self.push(v, Op::SumAll(a), g)
    }

    /// Mean of all entries (1×1).
    pub fn mean_all(&mut self, a: NodeId) -> NodeId {
        let x = self.value(a);
        let v = Matrix::from_vec(1, 1, vec![x.sum() / x.len() as f32]);
        let g = self.rg(a);
        self.push(v, Op::MeanAll(a), g)
    }

    /// Global max pooling over rows: `L×C → 1×C` with cached argmax.
    pub fn max_pool_rows(&mut self, a: NodeId) -> NodeId {
        let x = self.value(a);
        assert!(x.rows() > 0, "max_pool_rows on empty matrix");
        let mut argmax = vec![0usize; x.cols()];
        let mut v = Matrix::zeros(1, x.cols());
        for (c, arg) in argmax.iter_mut().enumerate() {
            let mut best = f32::NEG_INFINITY;
            for r in 0..x.rows() {
                let val = x.get(r, c);
                if val > best {
                    best = val;
                    *arg = r;
                }
            }
            v.set(0, c, best);
        }
        let g = self.rg(a);
        self.push(v, Op::MaxPoolRows(a, argmax), g)
    }

    // ---- convolution ------------------------------------------------------

    /// Unfolds `L×C` into `(L-k+1) × (k·C)` sliding windows (stride 1), the
    /// im2col step of 1-D convolution. Requires `L ≥ k`.
    pub fn im2col(&mut self, a: NodeId, kernel: usize) -> NodeId {
        let x = self.value(a);
        assert!(kernel >= 1 && x.rows() >= kernel, "im2col: input shorter than kernel");
        let out_rows = x.rows() - kernel + 1;
        let c = x.cols();
        let mut v = Matrix::zeros(out_rows, kernel * c);
        for r in 0..out_rows {
            for k in 0..kernel {
                v.row_mut(r)[k * c..(k + 1) * c].copy_from_slice(x.row(r + k));
            }
        }
        let g = self.rg(a);
        self.push(v, Op::Im2Col(a, kernel), g)
    }

    // ---- fused losses -----------------------------------------------------

    /// Fused negative log-likelihood of bivariate Gaussian mixtures (Eq. 13).
    ///
    /// `theta` is `B × 6M` with column layout
    /// `[π̂ | μ_lat | μ_lon | σ̂_lat | σ̂_lon | ρ̂]` (each block of width `M`);
    /// the activations of Eq. 10–12 (softplus on σ, softsign on ρ, softmax on
    /// π) are applied *inside* this op. `targets[b] = (lat, lon)` is the
    /// ground-truth location of row `b`. The output is the **summed** NLL
    /// (1×1); scale by `1/B` for a mean.
    pub fn gmm_nll(&mut self, theta: NodeId, targets: &[(f64, f64)], m: usize) -> NodeId {
        let x = self.value(theta);
        assert_eq!(x.rows(), targets.len(), "one target per theta row");
        assert_eq!(x.cols(), 6 * m, "theta must be B x 6M");
        let mut grad = Matrix::zeros(x.rows(), x.cols());
        let mut loss = 0.0f64;
        for (b, &(t_lat, t_lon)) in targets.iter().enumerate() {
            let (l, g) = crate::loss::gmm_nll_row(x.row(b), t_lat, t_lon, m);
            loss += l;
            grad.row_mut(b).copy_from_slice(&g);
        }
        let g = self.rg(theta);
        self.push(Matrix::from_vec(1, 1, vec![loss as f32]), Op::GmmNll(theta, grad), g)
    }

    /// Fused NLL for a mixture with fixed components and learnable weights
    /// (the UnicodeCNN / MvMF head): `loss_b = -ln Σ_m softmax(logits_b)_m
    /// exp(log_comp[b][m])`.
    ///
    /// `log_comp` holds the log-density of each fixed component at row `b`'s
    /// true location. Output is the summed NLL (1×1).
    pub fn mixture_const_nll(&mut self, logits: NodeId, log_comp: &Matrix) -> NodeId {
        let x = self.value(logits);
        assert_eq!(x.shape(), log_comp.shape(), "logits/log_comp shape mismatch");
        let mut grad = Matrix::zeros(x.rows(), x.cols());
        let mut loss = 0.0f64;
        for b in 0..x.rows() {
            let (l, g) = crate::loss::mixture_const_nll_row(x.row(b), log_comp.row(b));
            loss += l;
            grad.row_mut(b).copy_from_slice(&g);
        }
        let g = self.rg(logits);
        self.push(Matrix::from_vec(1, 1, vec![loss as f32]), Op::MixtureConstNll(logits, grad), g)
    }

    // ---- backward ---------------------------------------------------------

    /// Reverse-mode sweep from scalar node `loss` (must be 1×1). Returns the
    /// gradient of every [`ParamId`] leaf that the loss depends on.
    pub fn backward(&self, loss: NodeId) -> Vec<(ParamId, Matrix)> {
        assert_eq!(self.value(loss).shape(), (1, 1), "backward must start from a scalar loss");
        edge_obs::counter!("tensor.tape.backward.calls").inc(1);
        let _span = edge_obs::span("backward");
        let mut grads: Vec<Option<Matrix>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[loss.0] = Some(Matrix::from_vec(1, 1, vec![1.0]));

        let mut param_grads: Vec<(ParamId, Matrix)> = Vec::new();
        for i in (0..=loss.0).rev() {
            let Some(g_out) = grads[i].take() else { continue };
            if !self.nodes[i].requires_grad {
                continue;
            }
            let acc =
                |grads: &mut Vec<Option<Matrix>>, target: NodeId, delta: Matrix| match &mut grads
                    [target.0]
                {
                    Some(existing) => existing.add_scaled_inplace(&delta, 1.0),
                    slot @ None => *slot = Some(delta),
                };
            match &self.nodes[i].op {
                Op::Constant => {}
                Op::Param(pid) => {
                    // The same parameter may appear as several leaves (e.g. a
                    // weight matrix reused across layers); merge those here so
                    // optimizers see one gradient per parameter.
                    match param_grads.iter_mut().find(|(p, _)| p == pid) {
                        Some((_, existing)) => existing.add_scaled_inplace(&g_out, 1.0),
                        None => param_grads.push((*pid, g_out)),
                    }
                }
                Op::MatMul(a, b) => {
                    if self.rg(*a) {
                        let d = g_out.matmul(&self.value(*b).transpose());
                        acc(&mut grads, *a, d);
                    }
                    if self.rg(*b) {
                        let d = self.value(*a).transpose().matmul(&g_out);
                        acc(&mut grads, *b, d);
                    }
                }
                Op::SpMM(s, dense) => {
                    if self.rg(*dense) {
                        acc(&mut grads, *dense, s.transpose_matmul_dense(&g_out));
                    }
                }
                Op::Add(a, b) => {
                    if self.rg(*a) {
                        acc(&mut grads, *a, g_out.clone());
                    }
                    if self.rg(*b) {
                        acc(&mut grads, *b, g_out);
                    }
                }
                Op::Sub(a, b) => {
                    if self.rg(*a) {
                        acc(&mut grads, *a, g_out.clone());
                    }
                    if self.rg(*b) {
                        acc(&mut grads, *b, g_out.scale(-1.0));
                    }
                }
                Op::Hadamard(a, b) => {
                    if self.rg(*a) {
                        acc(&mut grads, *a, g_out.hadamard(self.value(*b)));
                    }
                    if self.rg(*b) {
                        acc(&mut grads, *b, g_out.hadamard(self.value(*a)));
                    }
                }
                Op::Scale(a, s) => {
                    if self.rg(*a) {
                        acc(&mut grads, *a, g_out.scale(*s));
                    }
                }
                Op::AddRowBroadcast(mat, row) => {
                    if self.rg(*mat) {
                        acc(&mut grads, *mat, g_out.clone());
                    }
                    if self.rg(*row) {
                        acc(&mut grads, *row, g_out.sum_rows());
                    }
                }
                Op::Relu(a) => {
                    if self.rg(*a) {
                        let mask = self.value(*a).map(|x| if x > 0.0 { 1.0 } else { 0.0 });
                        acc(&mut grads, *a, g_out.hadamard(&mask));
                    }
                }
                Op::Tanh(a) => {
                    if self.rg(*a) {
                        let d = self.nodes[i].value.map(|y| 1.0 - y * y);
                        acc(&mut grads, *a, g_out.hadamard(&d));
                    }
                }
                Op::Sigmoid(a) => {
                    if self.rg(*a) {
                        let d = self.nodes[i].value.map(|y| y * (1.0 - y));
                        acc(&mut grads, *a, g_out.hadamard(&d));
                    }
                }
                Op::Softplus(a) => {
                    if self.rg(*a) {
                        let d = self.value(*a).map(|x| 1.0 / (1.0 + (-x).exp()));
                        acc(&mut grads, *a, g_out.hadamard(&d));
                    }
                }
                Op::Softsign(a) => {
                    if self.rg(*a) {
                        let d = self.value(*a).map(|x| {
                            let t = 1.0 + x.abs();
                            1.0 / (t * t)
                        });
                        acc(&mut grads, *a, g_out.hadamard(&d));
                    }
                }
                Op::SoftmaxRows(a) => {
                    if self.rg(*a) {
                        let y = &self.nodes[i].value;
                        let mut d = Matrix::zeros(y.rows(), y.cols());
                        for r in 0..y.rows() {
                            let yr = y.row(r);
                            let gr = g_out.row(r);
                            let dot: f32 = yr.iter().zip(gr).map(|(&a, &b)| a * b).sum();
                            for c in 0..y.cols() {
                                d.set(r, c, yr[c] * (gr[c] - dot));
                            }
                        }
                        acc(&mut grads, *a, d);
                    }
                }
                Op::Transpose(a) => {
                    if self.rg(*a) {
                        acc(&mut grads, *a, g_out.transpose());
                    }
                }
                Op::GatherRows(a, indices) => {
                    if self.rg(*a) {
                        let src = self.value(*a);
                        let mut d = Matrix::zeros(src.rows(), src.cols());
                        for (out_r, &src_r) in indices.iter().enumerate() {
                            let g_row = g_out.row(out_r);
                            let d_row = d.row_mut(src_r);
                            for (dst, &g) in d_row.iter_mut().zip(g_row) {
                                *dst += g;
                            }
                        }
                        acc(&mut grads, *a, d);
                    }
                }
                Op::SliceCols(a, start, _end) => {
                    if self.rg(*a) {
                        let src = self.value(*a);
                        let mut d = Matrix::zeros(src.rows(), src.cols());
                        for r in 0..g_out.rows() {
                            d.row_mut(r)[*start..*start + g_out.cols()]
                                .copy_from_slice(g_out.row(r));
                        }
                        acc(&mut grads, *a, d);
                    }
                }
                Op::ConcatRows(parts) => {
                    let mut offset = 0;
                    for &p in parts {
                        let rows = self.value(p).rows();
                        if self.rg(p) {
                            let mut d = Matrix::zeros(rows, g_out.cols());
                            for r in 0..rows {
                                d.row_mut(r).copy_from_slice(g_out.row(offset + r));
                            }
                            acc(&mut grads, p, d);
                        }
                        offset += rows;
                    }
                }
                Op::SumRows(a) => {
                    if self.rg(*a) {
                        let src = self.value(*a);
                        let mut d = Matrix::zeros(src.rows(), src.cols());
                        for r in 0..src.rows() {
                            d.row_mut(r).copy_from_slice(g_out.row(0));
                        }
                        acc(&mut grads, *a, d);
                    }
                }
                Op::SumAll(a) => {
                    if self.rg(*a) {
                        let src = self.value(*a);
                        let d = Matrix::full(src.rows(), src.cols(), g_out.get(0, 0));
                        acc(&mut grads, *a, d);
                    }
                }
                Op::MeanAll(a) => {
                    if self.rg(*a) {
                        let src = self.value(*a);
                        let d = Matrix::full(
                            src.rows(),
                            src.cols(),
                            g_out.get(0, 0) / src.len() as f32,
                        );
                        acc(&mut grads, *a, d);
                    }
                }
                Op::MaxPoolRows(a, argmax) => {
                    if self.rg(*a) {
                        let src = self.value(*a);
                        let mut d = Matrix::zeros(src.rows(), src.cols());
                        for (c, &r) in argmax.iter().enumerate() {
                            d.set(r, c, g_out.get(0, c));
                        }
                        acc(&mut grads, *a, d);
                    }
                }
                Op::Im2Col(a, kernel) => {
                    if self.rg(*a) {
                        let src = self.value(*a);
                        let c = src.cols();
                        let mut d = Matrix::zeros(src.rows(), src.cols());
                        for r in 0..g_out.rows() {
                            for k in 0..*kernel {
                                let g_seg = &g_out.row(r)[k * c..(k + 1) * c];
                                let d_row = d.row_mut(r + k);
                                for (dst, &g) in d_row.iter_mut().zip(g_seg) {
                                    *dst += g;
                                }
                            }
                        }
                        acc(&mut grads, *a, d);
                    }
                }
                Op::GmmNll(theta, cached) => {
                    if self.rg(*theta) {
                        acc(&mut grads, *theta, cached.scale(g_out.get(0, 0)));
                    }
                }
                Op::MixtureConstNll(logits, cached) => {
                    if self.rg(*logits) {
                        acc(&mut grads, *logits, cached.scale(g_out.get(0, 0)));
                    }
                }
            }
        }
        param_grads
    }
}

/// Numerically stable softplus.
pub fn softplus_f32(x: f32) -> f32 {
    if x > 20.0 {
        x
    } else if x < -20.0 {
        x.exp()
    } else {
        (1.0 + x.exp()).ln()
    }
}

/// In-place stable softmax of a slice.
pub fn softmax_in_place(xs: &mut [f32]) {
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in xs.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    for x in xs.iter_mut() {
        *x /= sum;
    }
}
