//! Closed-form forward/backward math for the fused mixture losses.
//!
//! Both functions run in `f64` internally: mixture NLLs combine exponentials
//! spanning many orders of magnitude, and f32 accumulation visibly degrades
//! the gradients near convergence.

/// Per-component log-density and the pieces the gradient needs.
#[derive(Debug, Default, Clone, Copy)]
struct Comp {
    ln_n: f64,
    dx: f64,
    dy: f64,
    s1: f64,
    s2: f64,
    rho: f64,
    q: f64,
    z: f64,
}

/// Reusable intermediate buffers for the fused loss rows. One scratch serves
/// any mixture size: each call clears and refills, so after the first call at
/// the largest `m` no further heap allocation happens. Computation order is
/// identical with or without a warm scratch — results are bit-for-bit the
/// same as the allocating entry points.
#[derive(Debug, Default)]
pub struct LossScratch {
    exp_pi: Vec<f64>,
    pi: Vec<f64>,
    comps: Vec<Comp>,
    ln_terms: Vec<f64>,
    resp: Vec<f64>,
    l64: Vec<f64>,
    joint: Vec<f64>,
}

/// Forward + gradient of the bivariate-Gaussian-mixture NLL for one sample
/// (one row of the Eq. 7 output).
///
/// `theta` has layout `[π̂ | μ_lat | μ_lon | σ̂_lat | σ̂_lon | ρ̂]`, each block
/// of width `m`. The Eq. 10–12 activations are applied internally:
/// `σ = softplus(σ̂)`, `ρ = softsign(ρ̂)`, `π = softmax(π̂)`. Returns
/// `(nll, d nll / d theta)`.
///
/// The gradient follows the classic mixture-density-network derivation
/// (responsibilities `r_m`):
///
/// * `∂L/∂π̂_m = π_m − r_m`
/// * `∂L/∂μ`, `∂L/∂σ̂`, `∂L/∂ρ̂` via `∂ln N_m` chained through the
///   activations.
pub fn gmm_nll_row(theta: &[f32], t_lat: f64, t_lon: f64, m: usize) -> (f64, Vec<f32>) {
    let mut scratch = LossScratch::default();
    let mut grad = vec![0.0f32; 6 * m];
    let loss = gmm_nll_row_into(theta, t_lat, t_lon, m, &mut scratch, &mut grad);
    (loss, grad)
}

/// [`gmm_nll_row`] writing the gradient into `grad` (length `6 * m`, fully
/// overwritten) and using caller-owned scratch, so steady-state calls are
/// allocation-free.
pub fn gmm_nll_row_into(
    theta: &[f32],
    t_lat: f64,
    t_lon: f64,
    m: usize,
    scratch: &mut LossScratch,
    grad: &mut [f32],
) -> f64 {
    assert_eq!(theta.len(), 6 * m, "theta row must have 6M entries");
    assert_eq!(grad.len(), 6 * m, "grad row must have 6M entries");
    let pi_hat = &theta[0..m];
    let mu_lat = &theta[m..2 * m];
    let mu_lon = &theta[2 * m..3 * m];
    let sig_lat_hat = &theta[3 * m..4 * m];
    let sig_lon_hat = &theta[4 * m..5 * m];
    let rho_hat = &theta[5 * m..6 * m];

    // Activations (f64).
    let max_pi = pi_hat.iter().copied().fold(f32::NEG_INFINITY, f32::max) as f64;
    scratch.exp_pi.clear();
    scratch.exp_pi.extend(pi_hat.iter().map(|&p| ((p as f64) - max_pi).exp()));
    let sum_pi: f64 = scratch.exp_pi.iter().sum();
    scratch.pi.clear();
    scratch.pi.extend(scratch.exp_pi.iter().map(|e| e / sum_pi));
    let pi = &scratch.pi;

    let softplus = |x: f64| if x > 30.0 { x } else { x.exp().ln_1p() };
    let sigmoid = |x: f64| 1.0 / (1.0 + (-x).exp());

    scratch.comps.clear();
    scratch.comps.extend((0..m).map(|k| {
        // Floor σ at a small epsilon: softplus output is positive but can
        // underflow to 0 in f64 for very negative inputs.
        let s1 = softplus(sig_lat_hat[k] as f64).max(1e-8);
        let s2 = softplus(sig_lon_hat[k] as f64).max(1e-8);
        let rh = rho_hat[k] as f64;
        let rho = (rh / (1.0 + rh.abs())).clamp(-0.999_999, 0.999_999);
        let q = 1.0 - rho * rho;
        let dx = (t_lat - mu_lat[k] as f64) / s1;
        let dy = (t_lon - mu_lon[k] as f64) / s2;
        let z = dx * dx - 2.0 * rho * dx * dy + dy * dy;
        let ln_n = -(2.0 * std::f64::consts::PI * s1 * s2 * q.sqrt()).ln() - z / (2.0 * q);
        Comp { ln_n, dx, dy, s1, s2, rho, q, z }
    }));
    let comps = &scratch.comps;

    // Log-sum-exp of ln π_m + ln N_m.
    scratch.ln_terms.clear();
    scratch.ln_terms.extend(comps.iter().zip(pi).map(|(c, p)| p.ln() + c.ln_n));
    let ln_terms = &scratch.ln_terms;
    let max_t = ln_terms.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let lse = max_t + ln_terms.iter().map(|t| (t - max_t).exp()).sum::<f64>().ln();
    let loss = -lse;

    // Responsibilities.
    scratch.resp.clear();
    scratch.resp.extend(ln_terms.iter().map(|t| (t - lse).exp()));
    let resp = &scratch.resp;

    for k in 0..m {
        let c = &comps[k];
        let r = resp[k];
        // π̂: softmax + NLL collapse to π − r.
        grad[k] = (pi[k] - r) as f32;
        // μ: ∂lnN/∂μ1 = (dx − ρ dy)/(σ1 q).
        grad[m + k] = (-r * (c.dx - c.rho * c.dy) / (c.s1 * c.q)) as f32;
        grad[2 * m + k] = (-r * (c.dy - c.rho * c.dx) / (c.s2 * c.q)) as f32;
        // σ̂: ∂lnN/∂σ1 = (dx² − ρ dx dy)/(σ1 q) − 1/σ1, chained with
        // softplus' = sigmoid.
        let dln_ds1 = (c.dx * c.dx - c.rho * c.dx * c.dy) / (c.s1 * c.q) - 1.0 / c.s1;
        let dln_ds2 = (c.dy * c.dy - c.rho * c.dx * c.dy) / (c.s2 * c.q) - 1.0 / c.s2;
        grad[3 * m + k] = (-r * dln_ds1 * sigmoid(sig_lat_hat[k] as f64)) as f32;
        grad[4 * m + k] = (-r * dln_ds2 * sigmoid(sig_lon_hat[k] as f64)) as f32;
        // ρ̂: ∂lnN/∂ρ = (q(ρ + dx·dy) − ρZ)/q², chained with softsign'.
        let dln_drho = (c.q * (c.rho + c.dx * c.dy) - c.rho * c.z) / (c.q * c.q);
        let t = 1.0 + (rho_hat[k] as f64).abs();
        grad[5 * m + k] = (-r * dln_drho / (t * t)) as f32;
    }
    loss
}

/// Forward + gradient of the fixed-component mixture NLL for one sample
/// (the UnicodeCNN / MvMF head).
///
/// `loss = -ln Σ_m softmax(logits)_m · exp(log_comp_m)`; the gradient with
/// respect to `logits_m` is `π_m − r_m` where `r` are the posterior
/// responsibilities.
pub fn mixture_const_nll_row(logits: &[f32], log_comp: &[f32]) -> (f64, Vec<f32>) {
    let mut scratch = LossScratch::default();
    let mut grad = vec![0.0f32; logits.len()];
    let loss = mixture_const_nll_row_into(logits, log_comp, &mut scratch, &mut grad);
    (loss, grad)
}

/// [`mixture_const_nll_row`] writing the gradient into `grad` (same length
/// as `logits`, fully overwritten) and using caller-owned scratch.
pub fn mixture_const_nll_row_into(
    logits: &[f32],
    log_comp: &[f32],
    scratch: &mut LossScratch,
    grad: &mut [f32],
) -> f64 {
    assert_eq!(logits.len(), log_comp.len(), "logits/log_comp length mismatch");
    assert_eq!(grad.len(), logits.len(), "grad/logits length mismatch");
    let lse = |xs: &[f64]| -> f64 {
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        max + xs.iter().map(|x| (x - max).exp()).sum::<f64>().ln()
    };
    scratch.l64.clear();
    scratch.l64.extend(logits.iter().map(|&x| x as f64));
    scratch.joint.clear();
    scratch.joint.extend(scratch.l64.iter().zip(log_comp).map(|(&l, &c)| l + c as f64));
    let lse_logits = lse(&scratch.l64);
    let lse_joint = lse(&scratch.joint);
    let loss = lse_logits - lse_joint;
    for ((g, &l), &j) in grad.iter_mut().zip(&scratch.l64).zip(&scratch.joint) {
        *g = ((l - lse_logits).exp() - (j - lse_joint).exp()) as f32;
    }
    loss
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation of the Eq. 13 NLL built naively from the
    /// activations, for finite-difference checking.
    fn gmm_nll_reference(theta: &[f32], t_lat: f64, t_lon: f64, m: usize) -> f64 {
        let softplus = |x: f64| if x > 30.0 { x } else { x.exp().ln_1p() };
        let pi_hat: Vec<f64> = theta[0..m].iter().map(|&x| x as f64).collect();
        let max = pi_hat.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = pi_hat.iter().map(|p| (p - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        let mut total = 0.0;
        for k in 0..m {
            let pi = exps[k] / sum;
            let mu1 = theta[m + k] as f64;
            let mu2 = theta[2 * m + k] as f64;
            let s1 = softplus(theta[3 * m + k] as f64).max(1e-8);
            let s2 = softplus(theta[4 * m + k] as f64).max(1e-8);
            let rh = theta[5 * m + k] as f64;
            let rho = rh / (1.0 + rh.abs());
            let q = 1.0 - rho * rho;
            let dx = (t_lat - mu1) / s1;
            let dy = (t_lon - mu2) / s2;
            let z = dx * dx - 2.0 * rho * dx * dy + dy * dy;
            let n = (-z / (2.0 * q)).exp() / (2.0 * std::f64::consts::PI * s1 * s2 * q.sqrt());
            total += pi * n;
        }
        -total.ln()
    }

    fn sample_theta(m: usize) -> Vec<f32> {
        // Hand-picked values with varied signs and magnitudes.
        let mut theta = Vec::new();
        for k in 0..m {
            theta.push(0.3 * k as f32 - 0.2); // π̂
        }
        for k in 0..m {
            theta.push(40.5 + 0.1 * k as f32); // μ_lat
        }
        for k in 0..m {
            theta.push(-74.2 + 0.15 * k as f32); // μ_lon
        }
        for k in 0..m {
            theta.push(-1.5 + 0.5 * k as f32); // σ̂_lat
        }
        for k in 0..m {
            theta.push(-1.0 + 0.4 * k as f32); // σ̂_lon
        }
        for k in 0..m {
            theta.push(0.6 * k as f32 - 0.8); // ρ̂
        }
        theta
    }

    #[test]
    fn gmm_forward_matches_reference() {
        for m in [1, 2, 4] {
            let theta = sample_theta(m);
            let (loss, _) = gmm_nll_row(&theta, 40.7, -74.0, m);
            let reference = gmm_nll_reference(&theta, 40.7, -74.0, m);
            assert!(
                (loss - reference).abs() < 1e-9 * (1.0 + reference.abs()),
                "M={m}: {loss} vs {reference}"
            );
        }
    }

    #[test]
    fn gmm_gradient_matches_finite_difference() {
        for m in [1, 2, 4] {
            let theta = sample_theta(m);
            let (_, grad) = gmm_nll_row(&theta, 40.7, -74.0, m);
            let h = 1e-4f32;
            for i in 0..theta.len() {
                let mut plus = theta.clone();
                plus[i] += h * (1.0 + theta[i].abs());
                let mut minus = theta.clone();
                minus[i] -= h * (1.0 + theta[i].abs());
                // Divide by the *realized* f32 delta — at θ ≈ 40.5 the
                // nominal ±h rounds, and using 2h directly injects ~1% error.
                let delta = (plus[i] - minus[i]) as f64;
                let fd = (gmm_nll_reference(&plus, 40.7, -74.0, m)
                    - gmm_nll_reference(&minus, 40.7, -74.0, m))
                    / delta;
                assert!(
                    (grad[i] as f64 - fd).abs() < 1e-3 * (1.0 + fd.abs()),
                    "M={m} theta[{i}]: analytic {} vs fd {fd}",
                    grad[i]
                );
            }
        }
    }

    #[test]
    fn gmm_loss_decreases_when_component_moves_to_target() {
        let m = 2;
        let mut theta = sample_theta(m);
        let (before, _) = gmm_nll_row(&theta, 40.7, -74.0, m);
        theta[m] = 40.7; // μ_lat of component 0 onto the target
        theta[2 * m] = -74.0; // μ_lon of component 0 onto the target
        let (after, _) = gmm_nll_row(&theta, 40.7, -74.0, m);
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    fn gmm_is_finite_for_extreme_inputs() {
        let m = 2;
        let mut theta = sample_theta(m);
        theta[3 * m] = -200.0; // σ̂ -> softplus underflow
        theta[5 * m] = 1e6; // ρ̂ -> |softsign| -> 1
        let (loss, grad) = gmm_nll_row(&theta, 40.7, -74.0, m);
        assert!(loss.is_finite());
        assert!(grad.iter().all(|g| g.is_finite()));
    }

    #[test]
    #[should_panic(expected = "6M")]
    fn gmm_checks_layout() {
        let _ = gmm_nll_row(&[0.0; 5], 0.0, 0.0, 1);
    }

    #[test]
    fn mixture_const_forward_known_value() {
        // Two components with equal logits: loss = -ln(0.5 c0 + 0.5 c1).
        let logits = [0.0f32, 0.0];
        let log_comp = [(0.2f64).ln() as f32, (0.6f64).ln() as f32];
        let (loss, _) = mixture_const_nll_row(&logits, &log_comp);
        let expected = -(0.5f64 * 0.2 + 0.5 * 0.6).ln();
        assert!((loss - expected).abs() < 1e-6, "{loss} vs {expected}");
    }

    #[test]
    fn mixture_const_gradient_matches_finite_difference() {
        let logits = [0.5f32, -0.3, 1.2, 0.0];
        let log_comp = [-2.0f32, -0.5, -3.0, -1.0];
        let (_, grad) = mixture_const_nll_row(&logits, &log_comp);
        let h = 1e-3f32;
        for i in 0..logits.len() {
            let mut plus = logits;
            plus[i] += h;
            let mut minus = logits;
            minus[i] -= h;
            let fd = (mixture_const_nll_row(&plus, &log_comp).0
                - mixture_const_nll_row(&minus, &log_comp).0)
                / (2.0 * h as f64);
            assert!(
                (grad[i] as f64 - fd).abs() < 1e-4 * (1.0 + fd.abs()),
                "logit[{i}]: {} vs {fd}",
                grad[i]
            );
        }
    }

    #[test]
    fn warm_scratch_is_bitwise_identical_to_fresh() {
        // One scratch across shrinking/growing mixture sizes must reproduce
        // the allocating path exactly, bit for bit.
        let mut scratch = LossScratch::default();
        for m in [4, 1, 2, 4] {
            let theta = sample_theta(m);
            let (fresh_loss, fresh_grad) = gmm_nll_row(&theta, 40.7, -74.0, m);
            let mut grad = vec![0.0f32; 6 * m];
            let loss = gmm_nll_row_into(&theta, 40.7, -74.0, m, &mut scratch, &mut grad);
            assert_eq!(loss.to_bits(), fresh_loss.to_bits());
            assert!(grad.iter().zip(&fresh_grad).all(|(a, b)| a.to_bits() == b.to_bits()));
        }
        let logits = [0.5f32, -0.3, 1.2, 0.0];
        let log_comp = [-2.0f32, -0.5, -3.0, -1.0];
        let (fresh_loss, fresh_grad) = mixture_const_nll_row(&logits, &log_comp);
        let mut grad = [0.0f32; 4];
        let loss = mixture_const_nll_row_into(&logits, &log_comp, &mut scratch, &mut grad);
        assert_eq!(loss.to_bits(), fresh_loss.to_bits());
        assert!(grad.iter().zip(&fresh_grad).all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn mixture_const_favoring_good_component_lowers_loss() {
        let log_comp = [-5.0f32, -0.1];
        let (bad, _) = mixture_const_nll_row(&[2.0, -2.0], &log_comp);
        let (good, _) = mixture_const_nll_row(&[-2.0, 2.0], &log_comp);
        assert!(good < bad);
    }
}
