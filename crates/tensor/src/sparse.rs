//! CSR sparse matrices and sparse×dense products.
//!
//! The GCN propagation matrix `D̃^{-1/2} Ã D̃^{-1/2}` is a constant sparse
//! operator applied to dense state matrices every layer (Eq. 1). This module
//! provides the CSR storage and the two products the autodiff engine needs:
//! `S · X` for the forward pass and `Sᵀ · G` for the backward pass.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;

/// A compressed-sparse-row matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from COO triplets `(row, col, value)`.
    /// Duplicate coordinates are summed; explicit zeros are dropped.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f32)]) -> Self {
        let mut sorted: Vec<(usize, usize, f32)> = triplets
            .iter()
            .copied()
            .inspect(|&(r, c, _)| {
                assert!(r < rows && c < cols, "triplet ({r},{c}) out of bounds {rows}x{cols}");
            })
            .collect();
        sorted.sort_by_key(|&(r, c, _)| (r, c));

        // Merge duplicate coordinates, then drop entries that cancelled to 0.
        let mut merged: Vec<(usize, usize, f32)> = Vec::with_capacity(sorted.len());
        for (r, c, v) in sorted {
            match merged.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => merged.push((r, c, v)),
            }
        }
        merged.retain(|&(_, _, v)| v != 0.0);

        let mut row_ptr = vec![0usize; rows + 1];
        for &(r, _, _) in &merged {
            row_ptr[r + 1] += 1;
        }
        for r in 0..rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        let col_idx = merged.iter().map(|&(_, c, _)| c).collect();
        let values = merged.iter().map(|&(_, _, v)| v).collect();
        Self { rows, cols, row_ptr, col_idx, values }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates the stored entries of row `r` as `(col, value)`.
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        self.col_idx[lo..hi].iter().copied().zip(self.values[lo..hi].iter().copied())
    }

    /// Reads entry `(r, c)` (zero when not stored).
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.row_entries(r).find(|&(cc, _)| cc == c).map_or(0.0, |(_, v)| v)
    }

    /// Dense product `self × dense` (rayon-parallel over output rows).
    pub fn matmul_dense(&self, dense: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            dense.rows(),
            "spmm shape mismatch: {}x{} times {:?}",
            self.rows,
            self.cols,
            dense.shape()
        );
        let m = dense.cols();
        edge_obs::counter!("tensor.spmm.calls").inc(1);
        edge_obs::counter!("tensor.spmm.flops").inc(2 * (self.nnz() * m) as u64);
        let _span = edge_obs::span("matmul.sparse");
        let mut out = Matrix::zeros(self.rows, m);
        out.data_mut().par_chunks_mut(m).enumerate().for_each(|(r, out_row)| {
            for (c, v) in self.row_entries(r) {
                let src = dense.row(c);
                for (o, &x) in out_row.iter_mut().zip(src) {
                    *o += v * x;
                }
            }
        });
        out
    }

    /// Transposed product `selfᵀ × dense` — the backward-pass companion of
    /// [`CsrMatrix::matmul_dense`]. Implemented as scatter-adds over the
    /// stored entries (serial: output rows are written non-contiguously).
    pub fn transpose_matmul_dense(&self, dense: &Matrix) -> Matrix {
        assert_eq!(
            self.rows,
            dense.rows(),
            "spmm^T shape mismatch: ({}x{})^T times {:?}",
            self.rows,
            self.cols,
            dense.shape()
        );
        let m = dense.cols();
        let mut out = Matrix::zeros(self.cols, m);
        for r in 0..self.rows {
            let src = dense.row(r);
            for (c, v) in self.row_entries(r) {
                let dst = out.row_mut(c);
                for (o, &x) in dst.iter_mut().zip(src) {
                    *o += v * x;
                }
            }
        }
        out
    }

    /// Converts to a dense matrix (test/debug helper; O(rows × cols)).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                out.set(r, c, v);
            }
        }
        out
    }

    /// Whether the matrix is structurally and numerically symmetric (within
    /// `tol`). GCN propagation matrices must be.
    pub fn is_symmetric(&self, tol: f32) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                if (v - self.get(c, r)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sample() -> CsrMatrix {
        CsrMatrix::from_triplets(
            3,
            3,
            &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0), (2, 0, 4.0), (2, 2, 5.0)],
        )
    }

    #[test]
    fn from_triplets_and_get() {
        let m = sample();
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(2, 2), 5.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.5)]);
        assert_eq!(m.get(0, 0), 3.5);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn cancelling_duplicates_are_pruned() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (0, 1, -1.0), (1, 0, 2.0)]);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(1, 0), 2.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn triplets_bounds_checked() {
        let _ = CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]);
    }

    #[test]
    fn empty_rows_are_fine() {
        let m = CsrMatrix::from_triplets(4, 4, &[(0, 0, 1.0), (3, 3, 1.0)]);
        assert_eq!(m.row_entries(1).count(), 0);
        assert_eq!(m.row_entries(2).count(), 0);
        let x = Matrix::identity(4);
        let y = m.matmul_dense(&x);
        assert_eq!(y.get(1, 1), 0.0);
        assert_eq!(y.get(3, 3), 1.0);
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        let mut rng = StdRng::seed_from_u64(2);
        let triplets: Vec<(usize, usize, f32)> = (0..200)
            .map(|_| (rng.gen_range(0..20), rng.gen_range(0..15), rng.gen_range(-1.0..1.0)))
            .collect();
        let s = CsrMatrix::from_triplets(20, 15, &triplets);
        let x = Matrix::random_uniform(15, 7, 1.0, &mut rng);
        let sparse_result = s.matmul_dense(&x);
        let dense_result = s.to_dense().matmul(&x);
        for (a, b) in sparse_result.data().iter().zip(dense_result.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn transpose_spmm_matches_dense() {
        let mut rng = StdRng::seed_from_u64(3);
        let triplets: Vec<(usize, usize, f32)> = (0..150)
            .map(|_| (rng.gen_range(0..12), rng.gen_range(0..18), rng.gen_range(-1.0..1.0)))
            .collect();
        let s = CsrMatrix::from_triplets(12, 18, &triplets);
        let g = Matrix::random_uniform(12, 5, 1.0, &mut rng);
        let fast = s.transpose_matmul_dense(&g);
        let slow = s.to_dense().transpose().matmul(&g);
        for (a, b) in fast.data().iter().zip(slow.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "spmm shape mismatch")]
    fn spmm_shape_checked() {
        let _ = sample().matmul_dense(&Matrix::zeros(4, 2));
    }

    #[test]
    fn symmetry_detection() {
        let sym = CsrMatrix::from_triplets(2, 2, &[(0, 1, 2.0), (1, 0, 2.0), (0, 0, 1.0)]);
        assert!(sym.is_symmetric(1e-6));
        let asym = CsrMatrix::from_triplets(2, 2, &[(0, 1, 2.0)]);
        assert!(!asym.is_symmetric(1e-6));
        let rect = CsrMatrix::from_triplets(2, 3, &[]);
        assert!(!rect.is_symmetric(1e-6));
    }

    #[test]
    fn to_dense_round_trip() {
        let m = sample();
        let d = m.to_dense();
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(d.get(r, c), m.get(r, c));
            }
        }
    }
}
