//! CSR sparse matrices and sparse×dense products.
//!
//! The GCN propagation matrix `D̃^{-1/2} Ã D̃^{-1/2}` is a constant sparse
//! operator applied to dense state matrices every layer (Eq. 1). This module
//! provides the CSR storage and the two products the autodiff engine needs:
//! `S · X` for the forward pass and `Sᵀ · G` for the backward pass. Both are
//! row-parallel over the output; the backward product runs on a transposed
//! CSR that is built once and cached, so every GCN backward pass after the
//! first reuses it.

use std::sync::{Arc, OnceLock};

use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;

/// A compressed-sparse-row matrix of `f32`.
///
/// Column indices within each row are sorted ascending (an invariant of
/// [`CsrMatrix::from_triplets`] that [`CsrMatrix::get`] binary-searches on).
/// The matrix also lazily caches its transpose — see
/// [`CsrMatrix::transposed`] — which the serialized form and equality
/// deliberately ignore.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(from = "CsrParts", into = "CsrParts")]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f32>,
    /// Lazily built transposed copy serving `transpose_matmul_dense`.
    /// Cloning shares the cache; structural mutation never happens after
    /// construction, so the cache cannot go stale.
    transposed: OnceLock<Arc<CsrMatrix>>,
}

/// The serialized (and equality-relevant) fields of a [`CsrMatrix`] — the
/// transpose cache is rebuilt on demand rather than persisted.
#[derive(Serialize, Deserialize)]
struct CsrParts {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f32>,
}

impl From<CsrMatrix> for CsrParts {
    fn from(m: CsrMatrix) -> Self {
        Self {
            rows: m.rows,
            cols: m.cols,
            row_ptr: m.row_ptr,
            col_idx: m.col_idx,
            values: m.values,
        }
    }
}

impl From<CsrParts> for CsrMatrix {
    fn from(p: CsrParts) -> Self {
        Self {
            rows: p.rows,
            cols: p.cols,
            row_ptr: p.row_ptr,
            col_idx: p.col_idx,
            values: p.values,
            transposed: OnceLock::new(),
        }
    }
}

impl PartialEq for CsrMatrix {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.row_ptr == other.row_ptr
            && self.col_idx == other.col_idx
            && self.values == other.values
    }
}

impl CsrMatrix {
    /// Builds a CSR matrix from COO triplets `(row, col, value)`.
    /// Duplicate coordinates are summed; explicit zeros are dropped.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f32)]) -> Self {
        let mut sorted: Vec<(usize, usize, f32)> = triplets
            .iter()
            .copied()
            .inspect(|&(r, c, _)| {
                assert!(r < rows && c < cols, "triplet ({r},{c}) out of bounds {rows}x{cols}");
            })
            .collect();
        sorted.sort_by_key(|&(r, c, _)| (r, c));

        // Merge duplicate coordinates, then drop entries that cancelled to 0.
        let mut merged: Vec<(usize, usize, f32)> = Vec::with_capacity(sorted.len());
        for (r, c, v) in sorted {
            match merged.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => merged.push((r, c, v)),
            }
        }
        merged.retain(|&(_, _, v)| v != 0.0);

        let mut row_ptr = vec![0usize; rows + 1];
        for &(r, _, _) in &merged {
            row_ptr[r + 1] += 1;
        }
        for r in 0..rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        let col_idx: Vec<usize> = merged.iter().map(|&(_, c, _)| c).collect();
        let values = merged.iter().map(|&(_, _, v)| v).collect();
        debug_assert!(
            (0..rows).all(|r| col_idx[row_ptr[r]..row_ptr[r + 1]].windows(2).all(|w| w[0] < w[1])),
            "column indices within a row must be strictly ascending"
        );
        Self { rows, cols, row_ptr, col_idx, values, transposed: OnceLock::new() }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates the stored entries of row `r` as `(col, value)`.
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        self.col_idx[lo..hi].iter().copied().zip(self.values[lo..hi].iter().copied())
    }

    /// The stored column indices and values of row `r` as parallel slices —
    /// the raw form of [`CsrMatrix::row_entries`] the SIMD gather kernel
    /// consumes.
    fn row_slices(&self, r: usize) -> (&[usize], &[f32]) {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Reads entry `(r, c)` (zero when not stored). Binary search over the
    /// row's sorted column indices.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        match self.col_idx[lo..hi].binary_search(&c) {
            Ok(pos) => self.values[lo + pos],
            Err(_) => 0.0,
        }
    }

    /// The transposed matrix as a fresh CSR (counting sort over the stored
    /// entries, O(nnz + rows + cols)).
    pub fn transpose(&self) -> CsrMatrix {
        let mut row_ptr = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            row_ptr[c + 1] += 1;
        }
        for c in 0..self.cols {
            row_ptr[c + 1] += row_ptr[c];
        }
        let mut cursor = row_ptr.clone();
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0f32; self.nnz()];
        // Walking source rows in order makes each transposed row's column
        // indices (= original row indices) ascending, preserving the sorted
        // invariant — and fixes the backward accumulation order to match the
        // historical serial scatter loop bit-for-bit.
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                let slot = cursor[c];
                col_idx[slot] = r;
                values[slot] = v;
                cursor[c] += 1;
            }
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            row_ptr,
            col_idx,
            values,
            transposed: OnceLock::new(),
        }
    }

    /// The cached transpose, built on first use. The GCN adjacency operator
    /// is constant across training, so the one-time O(nnz) build amortizes
    /// over every backward pass of every epoch.
    pub fn transposed(&self) -> &CsrMatrix {
        self.transposed.get_or_init(|| Arc::new(self.transpose()))
    }

    /// Dense product `self × dense` (pool-parallel over output rows).
    pub fn matmul_dense(&self, dense: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_dense_into(dense, &mut out);
        out
    }

    /// [`CsrMatrix::matmul_dense`] writing into `out` (reshaped and
    /// overwritten, its allocation reused). Bit-for-bit identical to the
    /// allocating form at every thread count.
    pub fn matmul_dense_into(&self, dense: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            dense.rows(),
            "spmm shape mismatch: {}x{} times {:?}",
            self.rows,
            self.cols,
            dense.shape()
        );
        let m = dense.cols();
        edge_obs::counter!("tensor.spmm.calls").inc(1);
        edge_obs::counter!("tensor.spmm.flops").inc(2 * (self.nnz() * m) as u64);
        let _span = edge_obs::span("matmul.sparse");
        out.reset_zeroed(self.rows, m);
        if m == 0 {
            return;
        }
        // Kernel choice is captured here, on the submitting thread, so a
        // `with_scalar_kernels` override governs the whole parallel region.
        let use_simd = crate::simd::spmm_simd_active(m);
        // One chunk per output row, exactly as the rayon-shim path chunked it
        // (`par_chunks_mut(m)`), so partitioning cannot change results. The
        // `edge_par` entry point performs no heap allocation on the serial
        // path, keeping the train loop allocation-free at one thread.
        edge_par::parallel_for_chunks_mut(out.data_mut(), m, |r, out_row| {
            if use_simd {
                let (cols, vals) = self.row_slices(r);
                // SAFETY: `use_simd` captured a true `spmm_simd_active` above,
                // so AVX2 is available; `cols` indexes rows of `dense`.
                unsafe { crate::simd::spmm_row_simd(cols, vals, dense.data(), m, out_row) };
            } else {
                for (c, v) in self.row_entries(r) {
                    let src = dense.row(c);
                    for (o, &x) in out_row.iter_mut().zip(src) {
                        *o += v * x;
                    }
                }
            }
        });
    }

    /// Transposed product `selfᵀ × dense` — the backward-pass companion of
    /// [`CsrMatrix::matmul_dense`]. Runs the row-parallel gather product on
    /// the cached transposed CSR; each output row accumulates its sources in
    /// ascending original-row order, so results are bit-for-bit identical to
    /// the historical serial scatter-add at any thread count.
    pub fn transpose_matmul_dense(&self, dense: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.transpose_matmul_dense_into(dense, &mut out);
        out
    }

    /// [`CsrMatrix::transpose_matmul_dense`] writing into `out` (reshaped and
    /// overwritten).
    pub fn transpose_matmul_dense_into(&self, dense: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows,
            dense.rows(),
            "spmm^T shape mismatch: ({}x{})^T times {:?}",
            self.rows,
            self.cols,
            dense.shape()
        );
        self.transposed().matmul_dense_into(dense, out);
    }

    /// Converts to a dense matrix (test/debug helper; O(rows × cols)).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                out.set(r, c, v);
            }
        }
        out
    }

    /// Whether the matrix is structurally and numerically symmetric (within
    /// `tol`). GCN propagation matrices must be.
    pub fn is_symmetric(&self, tol: f32) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                if (v - self.get(c, r)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sample() -> CsrMatrix {
        CsrMatrix::from_triplets(
            3,
            3,
            &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0), (2, 0, 4.0), (2, 2, 5.0)],
        )
    }

    #[test]
    fn from_triplets_and_get() {
        let m = sample();
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(2, 2), 5.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.5)]);
        assert_eq!(m.get(0, 0), 3.5);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn cancelling_duplicates_are_pruned() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (0, 1, -1.0), (1, 0, 2.0)]);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(1, 0), 2.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn triplets_bounds_checked() {
        let _ = CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]);
    }

    #[test]
    fn empty_rows_are_fine() {
        let m = CsrMatrix::from_triplets(4, 4, &[(0, 0, 1.0), (3, 3, 1.0)]);
        assert_eq!(m.row_entries(1).count(), 0);
        assert_eq!(m.row_entries(2).count(), 0);
        let x = Matrix::identity(4);
        let y = m.matmul_dense(&x);
        assert_eq!(y.get(1, 1), 0.0);
        assert_eq!(y.get(3, 3), 1.0);
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        let mut rng = StdRng::seed_from_u64(2);
        let triplets: Vec<(usize, usize, f32)> = (0..200)
            .map(|_| (rng.gen_range(0..20), rng.gen_range(0..15), rng.gen_range(-1.0..1.0)))
            .collect();
        let s = CsrMatrix::from_triplets(20, 15, &triplets);
        let x = Matrix::random_uniform(15, 7, 1.0, &mut rng);
        let sparse_result = s.matmul_dense(&x);
        let dense_result = s.to_dense().matmul(&x);
        for (a, b) in sparse_result.data().iter().zip(dense_result.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn transpose_spmm_matches_dense() {
        let mut rng = StdRng::seed_from_u64(3);
        let triplets: Vec<(usize, usize, f32)> = (0..150)
            .map(|_| (rng.gen_range(0..12), rng.gen_range(0..18), rng.gen_range(-1.0..1.0)))
            .collect();
        let s = CsrMatrix::from_triplets(12, 18, &triplets);
        let g = Matrix::random_uniform(12, 5, 1.0, &mut rng);
        let fast = s.transpose_matmul_dense(&g);
        let slow = s.to_dense().transpose().matmul(&g);
        for (a, b) in fast.data().iter().zip(slow.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn transpose_is_an_involution_and_sorted() {
        let mut rng = StdRng::seed_from_u64(7);
        let triplets: Vec<(usize, usize, f32)> = (0..300)
            .map(|_| (rng.gen_range(0..25), rng.gen_range(0..10), rng.gen_range(-1.0..1.0)))
            .collect();
        let s = CsrMatrix::from_triplets(25, 10, &triplets);
        let t = s.transpose();
        assert_eq!(t.rows(), s.cols());
        assert_eq!(t.cols(), s.rows());
        assert_eq!(t.transpose(), s);
        for r in 0..t.rows() {
            let cols: Vec<usize> = t.row_entries(r).map(|(c, _)| c).collect();
            assert!(cols.windows(2).all(|w| w[0] < w[1]), "row {r} not sorted: {cols:?}");
        }
    }

    #[test]
    fn transposed_cache_is_shared_by_clones_and_skipped_by_serde() {
        let s = sample();
        let t1 = s.transposed() as *const CsrMatrix;
        let clone = s.clone();
        assert_eq!(clone.transposed() as *const CsrMatrix, t1, "clone shares the cache");
        let json = serde_json::to_string(&s).unwrap();
        assert!(!json.contains("transposed"), "cache must not serialize: {json}");
        let back: CsrMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.transposed().to_dense().data(), s.transpose().to_dense().data());
    }

    #[test]
    #[should_panic(expected = "spmm shape mismatch")]
    fn spmm_shape_checked() {
        let _ = sample().matmul_dense(&Matrix::zeros(4, 2));
    }

    #[test]
    fn symmetry_detection() {
        let sym = CsrMatrix::from_triplets(2, 2, &[(0, 1, 2.0), (1, 0, 2.0), (0, 0, 1.0)]);
        assert!(sym.is_symmetric(1e-6));
        let asym = CsrMatrix::from_triplets(2, 2, &[(0, 1, 2.0)]);
        assert!(!asym.is_symmetric(1e-6));
        let rect = CsrMatrix::from_triplets(2, 3, &[]);
        assert!(!rect.is_symmetric(1e-6));
    }

    #[test]
    fn to_dense_round_trip() {
        let m = sample();
        let d = m.to_dense();
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(d.get(r, c), m.get(r, c));
            }
        }
    }
}
