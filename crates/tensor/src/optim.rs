//! Optimizers: plain SGD and Adam with decoupled weight decay.
//!
//! The paper trains EDGE "using an Adam optimizer with a learning rate of
//! 0.01 and a weight decay of 0.01"; [`Adam::paper_default`] reproduces
//! those hyper-parameters.

use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;
use crate::tape::{ParamId, ParamStore};

/// A gradient-descent optimizer over a [`ParamStore`].
pub trait Optimizer {
    /// Applies one update from `(param, gradient)` pairs.
    fn step(&mut self, params: &mut ParamStore, grads: &[(ParamId, Matrix)]);
}

/// Plain stochastic gradient descent.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Creates SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamStore, grads: &[(ParamId, Matrix)]) {
        for (id, g) in grads {
            params.get_mut(*id).add_scaled_inplace(g, -self.lr);
        }
    }
}

/// Adam (Kingma & Ba) with *decoupled* weight decay (AdamW-style): the decay
/// shrinks the weights directly instead of being folded into the gradient,
/// which is also how PyTorch's `Adam(weight_decay=...)`-trained EDGE behaves
/// for the small decay values the paper uses.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate `α`.
    pub lr: f32,
    /// First-moment decay `β₁`.
    pub beta1: f32,
    /// Second-moment decay `β₂`.
    pub beta2: f32,
    /// Numerical fuzz `ε`.
    pub eps: f32,
    /// Decoupled weight-decay coefficient.
    pub weight_decay: f32,
    t: u64,
    m: Vec<Option<Matrix>>,
    v: Vec<Option<Matrix>>,
    no_decay: std::collections::HashSet<usize>,
}

impl Adam {
    /// Creates Adam with custom hyper-parameters.
    pub fn new(lr: f32, beta1: f32, beta2: f32, eps: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2), "betas in [0,1)");
        assert!(weight_decay >= 0.0);
        Self {
            lr,
            beta1,
            beta2,
            eps,
            weight_decay,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
            no_decay: std::collections::HashSet::new(),
        }
    }

    /// Excludes a parameter from weight decay. Biases must be excluded when
    /// they carry non-regularizable scale — the EDGE mixture head's bias
    /// holds degree-valued component means (μ ≈ 40°, −74°) that decay would
    /// otherwise drag toward the origin every step.
    pub fn exclude_from_decay(&mut self, id: ParamId) {
        self.no_decay.insert(id.0);
    }

    /// The paper's training configuration: Adam, lr 0.01, weight decay 0.01.
    pub fn paper_default() -> Self {
        Self::new(0.01, 0.9, 0.999, 1e-8, 0.01)
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Snapshots the optimizer's evolving state (step count + moment
    /// estimates) for checkpointing. Hyper-parameters and the decay-exempt
    /// set are *not* included — they are reconstructed by the training
    /// setup, so a checkpoint cannot smuggle in different hyper-parameters.
    pub fn export_state(&self) -> AdamState {
        let slots = self
            .m
            .iter()
            .zip(&self.v)
            .enumerate()
            .filter_map(|(id, (m, v))| Some(AdamSlot { id, m: m.clone()?, v: v.clone()? }))
            .collect();
        AdamState { t: self.t, slots }
    }

    /// Restores state captured by [`Adam::export_state`]. Resuming from a
    /// checkpoint with this plus identical parameters and gradients
    /// reproduces the uninterrupted run bit-for-bit.
    pub fn load_state(&mut self, state: AdamState) {
        self.t = state.t;
        self.m.clear();
        self.v.clear();
        for slot in state.slots {
            if self.m.len() <= slot.id {
                self.m.resize_with(slot.id + 1, || None);
                self.v.resize_with(slot.id + 1, || None);
            }
            self.m[slot.id] = Some(slot.m);
            self.v[slot.id] = Some(slot.v);
        }
    }

    fn slot(states: &mut Vec<Option<Matrix>>, id: ParamId, shape: (usize, usize)) -> &mut Matrix {
        if states.len() <= id.0 {
            states.resize_with(id.0 + 1, || None);
        }
        states[id.0].get_or_insert_with(|| Matrix::zeros(shape.0, shape.1))
    }
}

/// One parameter's Adam moment estimates, keyed by the parameter id.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdamSlot {
    pub id: usize,
    /// First-moment estimate `m`.
    pub m: Matrix,
    /// Second-moment estimate `v`.
    pub v: Matrix,
}

/// Serializable snapshot of an [`Adam`] optimizer's evolving state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdamState {
    /// Steps taken so far (drives bias correction).
    pub t: u64,
    /// Moment estimates for every parameter that has received a gradient.
    pub slots: Vec<AdamSlot>,
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamStore, grads: &[(ParamId, Matrix)]) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (id, g) in grads {
            let shape = g.shape();
            {
                let m = Self::slot(&mut self.m, *id, shape);
                for (mi, &gi) in m.data_mut().iter_mut().zip(g.data()) {
                    *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                }
            }
            {
                let v = Self::slot(&mut self.v, *id, shape);
                for (vi, &gi) in v.data_mut().iter_mut().zip(g.data()) {
                    *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
                }
            }
            let decay = if self.no_decay.contains(&id.0) { 0.0 } else { self.weight_decay };
            let m = self.m[id.0].as_ref().expect("just inserted");
            let v = self.v[id.0].as_ref().expect("just inserted");
            let p = params.get_mut(*id);
            assert_eq!(p.shape(), shape, "gradient shape mismatch for param {}", id.0);
            for ((pi, &mi), &vi) in p.data_mut().iter_mut().zip(m.data()).zip(v.data()) {
                let m_hat = mi / bc1;
                let v_hat = vi / bc2;
                *pi -= self.lr * (m_hat / (v_hat.sqrt() + self.eps) + decay * *pi);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(w) = (w - target)^2 elementwise; gradient is 2(w-target).
    fn quadratic_grad(params: &ParamStore, id: ParamId, target: f32) -> Matrix {
        params.get(id).map(|w| 2.0 * (w - target))
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut params = ParamStore::new();
        let id = params.add("w", Matrix::full(2, 2, 5.0));
        let mut opt = Sgd::new(0.1);
        for _ in 0..200 {
            let g = quadratic_grad(&params, id, 1.5);
            opt.step(&mut params, &[(id, g)]);
        }
        for &w in params.get(id).data() {
            assert!((w - 1.5).abs() < 1e-4, "w = {w}");
        }
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut params = ParamStore::new();
        let id = params.add("w", Matrix::full(3, 1, -4.0));
        let mut opt = Adam::new(0.05, 0.9, 0.999, 1e-8, 0.0);
        for _ in 0..500 {
            let g = quadratic_grad(&params, id, 2.0);
            opt.step(&mut params, &[(id, g)]);
        }
        for &w in params.get(id).data() {
            assert!((w - 2.0).abs() < 1e-2, "w = {w}");
        }
    }

    #[test]
    fn adam_weight_decay_shrinks_untouched_optimum() {
        // With decay, the fixed point of f(w) = (w - t)^2 sits below t.
        let mut with_decay = ParamStore::new();
        let id1 = with_decay.add("w", Matrix::full(1, 1, 3.0));
        let mut opt1 = Adam::new(0.05, 0.9, 0.999, 1e-8, 0.5);
        let mut without = ParamStore::new();
        let id2 = without.add("w", Matrix::full(1, 1, 3.0));
        let mut opt2 = Adam::new(0.05, 0.9, 0.999, 1e-8, 0.0);
        for _ in 0..800 {
            let g1 = quadratic_grad(&with_decay, id1, 2.0);
            opt1.step(&mut with_decay, &[(id1, g1)]);
            let g2 = quadratic_grad(&without, id2, 2.0);
            opt2.step(&mut without, &[(id2, g2)]);
        }
        let decayed = with_decay.get(id1).get(0, 0);
        let plain = without.get(id2).get(0, 0);
        assert!(decayed < plain - 0.05, "decayed {decayed} vs plain {plain}");
    }

    #[test]
    fn adam_handles_multiple_params_and_sparse_updates() {
        let mut params = ParamStore::new();
        let a = params.add("a", Matrix::full(1, 1, 1.0));
        let b = params.add("b", Matrix::full(1, 1, 1.0));
        let mut opt = Adam::new(0.1, 0.9, 0.999, 1e-8, 0.0);
        // Update only `b` some steps — state vectors must not get confused.
        for step in 0..300 {
            let ga = quadratic_grad(&params, a, 0.0);
            let gb = quadratic_grad(&params, b, 10.0);
            if step % 2 == 0 {
                opt.step(&mut params, &[(a, ga), (b, gb)]);
            } else {
                opt.step(&mut params, &[(b, gb)]);
            }
        }
        assert!((params.get(a).get(0, 0)).abs() < 0.05);
        assert!((params.get(b).get(0, 0) - 10.0).abs() < 0.5);
    }

    #[test]
    fn adam_step_counter() {
        let mut opt = Adam::paper_default();
        assert_eq!(opt.steps(), 0);
        let mut params = ParamStore::new();
        let id = params.add("w", Matrix::zeros(1, 1));
        opt.step(&mut params, &[(id, Matrix::zeros(1, 1))]);
        assert_eq!(opt.steps(), 1);
    }

    #[test]
    fn paper_default_hyperparameters() {
        let opt = Adam::paper_default();
        assert_eq!(opt.lr, 0.01);
        assert_eq!(opt.weight_decay, 0.01);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn sgd_rejects_zero_lr() {
        let _ = Sgd::new(0.0);
    }

    #[test]
    fn state_round_trip_resumes_bitwise() {
        // Optimize, snapshot mid-way, keep going; then restore the snapshot
        // into a fresh optimizer and replay the tail — trajectories must be
        // bit-identical, the property checkpoint resume relies on.
        let mut params = ParamStore::new();
        let id = params.add("w", Matrix::full(2, 3, 4.0));
        let mut opt = Adam::new(0.05, 0.9, 0.999, 1e-8, 0.01);
        for _ in 0..10 {
            let g = quadratic_grad(&params, id, 1.0);
            opt.step(&mut params, &[(id, g)]);
        }
        let snap_params = params.clone();
        let state = opt.export_state();
        assert_eq!(state.t, 10);
        assert_eq!(state.slots.len(), 1);

        for _ in 0..10 {
            let g = quadratic_grad(&params, id, 1.0);
            opt.step(&mut params, &[(id, g)]);
        }

        let mut resumed_params = snap_params;
        let mut resumed = Adam::new(0.05, 0.9, 0.999, 1e-8, 0.01);
        resumed.load_state(state);
        assert_eq!(resumed.steps(), 10);
        for _ in 0..10 {
            let g = quadratic_grad(&resumed_params, id, 1.0);
            resumed.step(&mut resumed_params, &[(id, g)]);
        }
        assert_eq!(params.get(id).data(), resumed_params.get(id).data());
    }

    #[test]
    fn state_round_trip_preserves_sparse_slots() {
        let mut params = ParamStore::new();
        let a = params.add("a", Matrix::full(1, 1, 1.0));
        let b = params.add("b", Matrix::full(1, 1, 1.0));
        let mut opt = Adam::paper_default();
        let gb = quadratic_grad(&params, b, 0.0);
        opt.step(&mut params, &[(b, gb)]); // only `b` ever updated
        let state = opt.export_state();
        assert_eq!(state.slots.len(), 1);
        assert_eq!(state.slots[0].id, b.0);
        let mut restored = Adam::paper_default();
        restored.load_state(state);
        // The untouched slot stays lazily absent and a later step fills it.
        let ga = quadratic_grad(&params, a, 0.0);
        restored.step(&mut params, &[(a, ga)]);
        assert_eq!(restored.export_state().slots.len(), 2);
    }
}
