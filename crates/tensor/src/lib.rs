//! A tape-based reverse-mode autodiff engine — the neural-network substrate
//! of the EDGE reproduction.
//!
//! The paper trains EDGE (and the UnicodeCNN baseline) with PyTorch on a
//! GPU; the Rust ML ecosystem has no equivalent for sparse GCN training, so
//! this crate implements the required subset from scratch:
//!
//! * [`Matrix`] — dense row-major f32 matrices with a register-blocked,
//!   pool-parallel matmul (dispatching directly onto `edge-par`),
//! * [`CsrMatrix`] — sparse CSR matrices for the constant GCN propagation
//!   operator,
//! * [`Tape`] — an eagerly evaluated autodiff graph covering dense/sparse
//!   products, the paper's activations (ReLU, softmax, softplus, softsign),
//!   row gather/concat for per-tweet entity sets, im2col/max-pool for the
//!   character CNN, and fused mixture-NLL heads with analytically derived,
//!   finite-difference-verified gradients,
//! * [`optim`] — SGD and Adam with decoupled weight decay (the paper's
//!   training configuration),
//! * [`init`] — Xavier/He initialization,
//! * [`TapeArena`] — cross-batch buffer recycling so the steady-state train
//!   loop performs zero heap allocations per batch,
//! * [`simd`] — runtime-detected AVX2 microkernels for matmul and spmm that
//!   are bit-for-bit identical to the scalar reference kernels (`EDGE_NO_SIMD`
//!   falls back to pure scalar),
//! * [`quant`] — f16 and per-row-absmax int8 codecs (scalar reference plus
//!   F16C/AVX2 dequant kernels) for compact mmap model artifacts.
//!
//! The engine is deliberately rank-2 (every value is a matrix): all tensors
//! in the EDGE model family are naturally matrices, and the restriction
//! keeps every backward rule small enough to test exhaustively.

pub mod arena;
pub mod init;
pub mod loss;
pub mod matrix;
pub mod optim;
pub mod quant;
pub mod simd;
pub mod sparse;
pub mod tape;

pub use arena::{ArenaStats, TapeArena};
pub use matrix::{Matrix, PAR_THRESHOLD};
pub use optim::{Adam, Optimizer, Sgd};
pub use simd::{axpy, simd_active, simd_available, with_scalar_kernels};
pub use sparse::CsrMatrix;
pub use tape::{NodeId, ParamId, ParamStore, Tape};
