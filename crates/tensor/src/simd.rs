//! Runtime-detected AVX2 microkernels for the dense and sparse hot paths.
//!
//! The scalar kernels in [`crate::matrix`] and [`crate::sparse`] stay as the
//! reference implementation; this module adds `std::arch` AVX2 equivalents
//! behind one-time feature detection:
//!
//! * **Detection, cached.** [`simd_available`] reads `EDGE_NO_SIMD` and
//!   `is_x86_feature_detected!` exactly once per process. [`simd_active`]
//!   additionally honors the per-thread [`with_scalar_kernels`] override the
//!   parity tests sweep (mirroring `edge_par::with_max_threads`). Kernel
//!   selection is captured on the submitting thread *before* pool dispatch,
//!   so a thread-local override governs the whole parallel region.
//! * **Determinism contract.** On the deterministic paths (dense matmul,
//!   spmm) every output element accumulates in ascending-`k` / ascending-
//!   entry order with *separate* mul and add — FMA would fuse the rounding
//!   step and diverge from the scalar reference — and a zero `A` entry skips
//!   the update exactly like the scalar kernel's `a == 0.0` branch (the
//!   `-0.0 + 0.0` edge case makes skip-vs-no-skip observable bitwise). The
//!   SIMD kernels are therefore bit-for-bit identical to scalar, which the
//!   property tests in `tests/parallel.rs` assert.
//! * **Zero-allocation packing.** The matmul packs `B` into panel-major
//!   strips through a thread-local scratch buffer that is taken and returned
//!   around each product (`Cell<Option<Vec<f32>>>`), so the steady-state
//!   train loop stays at zero heap allocations per batch once the buffer has
//!   grown to its working-set size.

use std::cell::Cell;
use std::sync::OnceLock;

/// Column width of one packed panel / register tile: two 8-lane AVX vectors.
pub(crate) const TILE_COLS: usize = 16;

/// Output rows per register tile. Must equal `matrix::MATMUL_ROW_BLOCK` so a
/// pool chunk (one row block) is exactly one tile row-group and partitioning
/// can never split a tile.
pub(crate) const TILE_ROWS: usize = 4;
const _: () = assert!(TILE_ROWS == crate::matrix::MATMUL_ROW_BLOCK);

/// Minimum right-hand width for the vector kernels to beat scalar; below it
/// the masked tail dominates the work.
const MIN_SIMD_COLS: usize = 8;

/// `A` row count above which packing `B` amortizes: below it the product is
/// too short to repay the `O(k·m)` pack pass and the kernel streams `B`
/// directly with strided (masked at the tail) loads.
const PACK_MIN_ROWS: usize = 8;

/// Whether the AVX2 kernels are compiled in, supported by this CPU, and not
/// disabled via `EDGE_NO_SIMD`. Detection runs once and is cached.
pub fn simd_available() -> bool {
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        let disabled = std::env::var_os("EDGE_NO_SIMD").is_some_and(|v| !v.is_empty() && v != "0");
        !disabled && detect()
    })
}

#[cfg(target_arch = "x86_64")]
fn detect() -> bool {
    is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
}

#[cfg(not(target_arch = "x86_64"))]
fn detect() -> bool {
    false
}

thread_local! {
    /// Per-thread scalar-kernel override installed by [`with_scalar_kernels`].
    static FORCE_SCALAR: Cell<bool> = const { Cell::new(false) };
}

/// Whether the *next kernel dispatched from this thread* uses the AVX2 path:
/// [`simd_available`] minus the [`with_scalar_kernels`] override.
pub fn simd_active() -> bool {
    simd_available() && !FORCE_SCALAR.with(Cell::get)
}

/// Runs `f` with the scalar reference kernels forced on this thread (nested
/// parallel regions inherit the choice because kernel selection happens on
/// the submitting thread). Used by the scalar-vs-SIMD parity tests and the
/// `simd_vs_scalar` bench leg.
pub fn with_scalar_kernels<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            FORCE_SCALAR.with(|c| c.set(self.0));
        }
    }
    let prev = FORCE_SCALAR.with(|c| c.replace(true));
    let _restore = Restore(prev);
    f()
}

thread_local! {
    /// Reusable `B`-packing buffer. `Cell` take/put rather than `RefCell`: if
    /// a nested kernel ever re-enters while a pack is live it allocates a
    /// fresh buffer instead of panicking, and the steady-state train loop
    /// performs zero allocations once the buffer reaches its working-set
    /// capacity (asserted by the `zero_alloc` test, which runs with SIMD on).
    static PACK_SCRATCH: Cell<Option<Vec<f32>>> = const { Cell::new(None) };
}

/// How the matmul kernel reads `B`.
#[derive(Clone, Copy)]
enum BPanels<'a> {
    /// Panel-major packed copy (`⌈m/16⌉ × k × TILE_COLS`, tail panel
    /// zero-padded): every kernel load is a contiguous unmasked 16-float
    /// strip regardless of `m`.
    Packed(&'a [f32]),
    /// The original row-major `B` (`k × m`), streamed with stride-`m` loads
    /// (masked at the column tail). Used when `A` has too few rows to
    /// amortize a pack — e.g. the 1-row serving matmuls.
    Direct(&'a [f32]),
}

/// Owns the pack scratch for the duration of one product and returns it to
/// the thread-local slot afterwards.
struct PackGuard {
    buf: Vec<f32>,
}

impl PackGuard {
    /// Packs `b` (`k × m` row-major) into zero-padded panel-major panels.
    fn pack(b: &[f32], k: usize, m: usize) -> Self {
        let mut buf = PACK_SCRATCH.with(Cell::take).unwrap_or_default();
        let panels = m.div_ceil(TILE_COLS);
        buf.clear();
        buf.resize(panels * k * TILE_COLS, 0.0);
        for p in 0..panels {
            let j0 = p * TILE_COLS;
            let w = TILE_COLS.min(m - j0);
            let dst = &mut buf[p * k * TILE_COLS..(p + 1) * k * TILE_COLS];
            for kk in 0..k {
                dst[kk * TILE_COLS..kk * TILE_COLS + w]
                    .copy_from_slice(&b[kk * m + j0..kk * m + j0 + w]);
            }
        }
        PackGuard { buf }
    }
}

impl Drop for PackGuard {
    fn drop(&mut self) {
        PACK_SCRATCH.with(|c| c.set(Some(std::mem::take(&mut self.buf))));
    }
}

/// Runs `out = a × b` (`out` pre-zeroed, `n×k` times `k×m`) with the AVX2
/// microkernels, parallelized over the same `TILE_ROWS`-row chunks as the
/// scalar path. Returns `false` — leaving `out` untouched — when SIMD is
/// inactive or the shape is too narrow to benefit, in which case the caller
/// falls back to the scalar reference kernel.
#[cfg(target_arch = "x86_64")]
pub(crate) fn matmul_into_simd(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    n: usize,
    k: usize,
    m: usize,
    parallel: bool,
) -> bool {
    if !simd_active() || m < MIN_SIMD_COLS {
        return false;
    }
    edge_obs::counter!("tensor.matmul.simd").inc(1);
    let guard;
    let panels = if n >= PACK_MIN_ROWS {
        guard = PackGuard::pack(b, k, m);
        BPanels::Packed(&guard.buf)
    } else {
        BPanels::Direct(b)
    };
    let work = |block_idx: usize, out_block: &mut [f32]| {
        let row0 = block_idx * TILE_ROWS;
        let rows_here = out_block.len() / m;
        // SAFETY: `simd_active()` verified AVX2+FMA support above, on the
        // submitting thread, before any dispatch.
        unsafe { avx2::matmul_block(&a[row0 * k..], rows_here, k, panels, out_block, m) };
    };
    if parallel {
        // Each claim covers at least two row blocks: the AVX2 kernel clears
        // a block ~4x faster than scalar, so per-claim cursor traffic would
        // otherwise double its relative cost.
        edge_par::parallel_for_chunks_mut_grained(out, TILE_ROWS * m, 2, work);
    } else {
        out.chunks_mut(TILE_ROWS * m).enumerate().for_each(|(i, block)| work(i, block));
    }
    true
}

#[cfg(not(target_arch = "x86_64"))]
pub(crate) fn matmul_into_simd(
    _a: &[f32],
    _b: &[f32],
    _out: &mut [f32],
    _n: usize,
    _k: usize,
    _m: usize,
    _parallel: bool,
) -> bool {
    false
}

/// True when [`spmm_row_simd`] should be used for a product with `m` output
/// columns. Capture the result on the submitting thread before dispatch.
pub(crate) fn spmm_simd_active(m: usize) -> bool {
    simd_active() && m >= MIN_SIMD_COLS
}

/// Accumulates one spmm output row: `out_row[j] = Σ vals[i] · dense[cols[i]][j]`
/// in ascending entry order, bit-identical to the scalar gather loop.
///
/// # Safety
/// AVX2 must be available — guaranteed by a true [`spmm_simd_active`] checked
/// by the caller on the submitting thread. `cols` must index valid rows of
/// `dense` (a `· × m` row-major matrix) and `out_row` must be `m` long.
#[cfg(target_arch = "x86_64")]
pub(crate) unsafe fn spmm_row_simd(
    cols: &[usize],
    vals: &[f32],
    dense: &[f32],
    m: usize,
    out_row: &mut [f32],
) {
    avx2::spmm_row(cols, vals, dense.as_ptr(), m, out_row);
}

/// # Safety
/// Never called: [`spmm_simd_active`] is always false off x86_64.
#[cfg(not(target_arch = "x86_64"))]
pub(crate) unsafe fn spmm_row_simd(
    _cols: &[usize],
    _vals: &[f32],
    _dense: &[f32],
    _m: usize,
    _out_row: &mut [f32],
) {
    unreachable!("SIMD kernels are only compiled for x86_64");
}

/// `y[i] += alpha · x[i]` — the attention-aggregation primitive (Eq. 4 of
/// the paper: accumulating weighted entity rows into the tweet embedding).
///
/// Bit-identical to the scalar loop on every path: each element performs the
/// same single unfused mul + add whether it runs in a ymm lane or not, so
/// unlike the matmul there is no ordering concern at all.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_active() && x.len() >= 8 {
        // SAFETY: `simd_active()` verified AVX2 support on this thread.
        unsafe { avx2::axpy(alpha, x, y) };
        return;
    }
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv += alpha * xv;
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::*;

    use super::{BPanels, TILE_COLS};

    /// Lane-enable masks for `_mm256_maskload_ps` / `_mm256_maskstore_ps`:
    /// `MASKS[l]` enables the first `l` of 8 lanes.
    static MASKS: [[i32; 8]; 9] = {
        let mut masks = [[0i32; 8]; 9];
        let mut lanes = 1;
        while lanes <= 8 {
            let mut lane = 0;
            while lane < lanes {
                masks[lanes][lane] = -1;
                lane += 1;
            }
            lanes += 1;
        }
        masks
    };

    #[inline]
    unsafe fn mask(lanes: usize) -> __m256i {
        _mm256_loadu_si256(MASKS[lanes].as_ptr() as *const __m256i)
    }

    /// One output row-block (`rows ≤ TILE_ROWS` rows of `out`): walks the
    /// 16-column panels, running the register-tile kernel on each.
    ///
    /// # Safety
    /// Requires AVX2. `a` holds `rows` rows of stride `k`; `out` holds `rows`
    /// rows of stride `m`; packed panels cover all `⌈m/16⌉` panels of `B`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn matmul_block(
        a: &[f32],
        rows: usize,
        k: usize,
        b: BPanels<'_>,
        out: &mut [f32],
        m: usize,
    ) {
        let mut j0 = 0;
        let mut panel = 0;
        while j0 < m {
            let w = TILE_COLS.min(m - j0);
            let (bp, bstride, masked) = match b {
                BPanels::Packed(p) => (p.as_ptr().add(panel * k * TILE_COLS), TILE_COLS, false),
                BPanels::Direct(d) => (d.as_ptr().add(j0), m, w < TILE_COLS),
            };
            let op = out.as_mut_ptr().add(j0);
            let ap = a.as_ptr();
            match (rows, masked) {
                (1, false) => tile::<1, false>(ap, k, bp, bstride, op, m, w),
                (2, false) => tile::<2, false>(ap, k, bp, bstride, op, m, w),
                (3, false) => tile::<3, false>(ap, k, bp, bstride, op, m, w),
                (4, false) => tile::<4, false>(ap, k, bp, bstride, op, m, w),
                (1, true) => tile::<1, true>(ap, k, bp, bstride, op, m, w),
                (2, true) => tile::<2, true>(ap, k, bp, bstride, op, m, w),
                (3, true) => tile::<3, true>(ap, k, bp, bstride, op, m, w),
                (4, true) => tile::<4, true>(ap, k, bp, bstride, op, m, w),
                _ => unreachable!("row block larger than TILE_ROWS"),
            }
            j0 += w;
            panel += 1;
        }
    }

    /// The `ROWS`×16 register tile: `ROWS` output rows × 16 columns live in
    /// ymm accumulators across the full `k` loop (one store per tile instead
    /// of one read-modify-write per `(row, k)` step).
    ///
    /// Determinism: ascending-`k` accumulation, separate `mul` + `add` (no
    /// FMA — fused rounding would diverge from the scalar reference), and
    /// the scalar kernel's `a == 0.0` skip replicated per `(row, k)`.
    #[target_feature(enable = "avx2")]
    unsafe fn tile<const ROWS: usize, const MASKED: bool>(
        a: *const f32,
        k: usize,
        b: *const f32,
        bstride: usize,
        out: *mut f32,
        m: usize,
        w: usize,
    ) {
        let mlo = mask(w.min(8));
        let mhi = mask(w.saturating_sub(8));
        let mut acc_lo = [_mm256_setzero_ps(); ROWS];
        let mut acc_hi = [_mm256_setzero_ps(); ROWS];
        for kk in 0..k {
            let bp = b.add(kk * bstride);
            let (b_lo, b_hi) = if MASKED {
                // `wrapping_add`: the upper half may sit past the row end
                // when `w <= 8`; its mask is all-zero, so the lanes are
                // architecturally never accessed, but the pointer itself must
                // not be formed with in-bounds arithmetic.
                (_mm256_maskload_ps(bp, mlo), _mm256_maskload_ps(bp.wrapping_add(8), mhi))
            } else {
                (_mm256_loadu_ps(bp), _mm256_loadu_ps(bp.add(8)))
            };
            for r in 0..ROWS {
                let av = *a.add(r * k + kk);
                if av != 0.0 {
                    let va = _mm256_set1_ps(av);
                    acc_lo[r] = _mm256_add_ps(acc_lo[r], _mm256_mul_ps(va, b_lo));
                    acc_hi[r] = _mm256_add_ps(acc_hi[r], _mm256_mul_ps(va, b_hi));
                }
            }
        }
        for (r, (lo, hi)) in acc_lo.iter().zip(&acc_hi).enumerate() {
            let op = out.add(r * m);
            if w == TILE_COLS {
                _mm256_storeu_ps(op, *lo);
                _mm256_storeu_ps(op.add(8), *hi);
            } else {
                _mm256_maskstore_ps(op, mlo, *lo);
                _mm256_maskstore_ps(op.wrapping_add(8), mhi, *hi);
            }
        }
    }

    /// One spmm output row: 32-float register strips accumulated across all
    /// stored entries of the CSR row, in ascending entry order with separate
    /// mul + add — bit-identical to the scalar gather loop.
    ///
    /// # Safety
    /// Requires AVX2; see [`super::spmm_row_simd`].
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn spmm_row(
        cols: &[usize],
        vals: &[f32],
        dense: *const f32,
        m: usize,
        out_row: &mut [f32],
    ) {
        debug_assert_eq!(cols.len(), vals.len());
        let mut j = 0;
        while j + 32 <= m {
            let mut a0 = _mm256_setzero_ps();
            let mut a1 = _mm256_setzero_ps();
            let mut a2 = _mm256_setzero_ps();
            let mut a3 = _mm256_setzero_ps();
            for (&c, &v) in cols.iter().zip(vals) {
                let vv = _mm256_set1_ps(v);
                let src = dense.add(c * m + j);
                a0 = _mm256_add_ps(a0, _mm256_mul_ps(vv, _mm256_loadu_ps(src)));
                a1 = _mm256_add_ps(a1, _mm256_mul_ps(vv, _mm256_loadu_ps(src.add(8))));
                a2 = _mm256_add_ps(a2, _mm256_mul_ps(vv, _mm256_loadu_ps(src.add(16))));
                a3 = _mm256_add_ps(a3, _mm256_mul_ps(vv, _mm256_loadu_ps(src.add(24))));
            }
            let op = out_row.as_mut_ptr().add(j);
            _mm256_storeu_ps(op, a0);
            _mm256_storeu_ps(op.add(8), a1);
            _mm256_storeu_ps(op.add(16), a2);
            _mm256_storeu_ps(op.add(24), a3);
            j += 32;
        }
        while j + 8 <= m {
            let mut acc = _mm256_setzero_ps();
            for (&c, &v) in cols.iter().zip(vals) {
                let vv = _mm256_set1_ps(v);
                acc = _mm256_add_ps(acc, _mm256_mul_ps(vv, _mm256_loadu_ps(dense.add(c * m + j))));
            }
            _mm256_storeu_ps(out_row.as_mut_ptr().add(j), acc);
            j += 8;
        }
        for (jj, out) in out_row.iter_mut().enumerate().skip(j) {
            let mut acc = 0.0f32;
            for (&c, &v) in cols.iter().zip(vals) {
                acc += v * *dense.add(c * m + jj);
            }
            *out = acc;
        }
    }

    /// Vector body of [`super::axpy`]: 8-lane strips plus a scalar tail,
    /// each element one unfused mul + add.
    ///
    /// # Safety
    /// Requires AVX2; `x` and `y` must have equal lengths.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
        let va = _mm256_set1_ps(alpha);
        let n = x.len();
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        let mut i = 0;
        while i + 8 <= n {
            let prod = _mm256_mul_ps(va, _mm256_loadu_ps(xp.add(i)));
            _mm256_storeu_ps(yp.add(i), _mm256_add_ps(_mm256_loadu_ps(yp.add(i)), prod));
            i += 8;
        }
        for ii in i..n {
            *yp.add(ii) += alpha * *xp.add(ii);
        }
    }
}
