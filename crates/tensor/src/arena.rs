//! Cross-batch buffer recycling for the training hot path.
//!
//! A [`TapeArena`] owns every kind of transient storage one training batch
//! needs — matrix value/gradient buffers, gather index lists, concat node
//! lists, fused-loss scratch, the tape's node vector itself — keyed by
//! power-of-two capacity classes. The train loop threads one arena through
//! its batches ([`crate::Tape::with_arena`] → [`crate::Tape::into_arena`]):
//! the first batch populates the pools ("warmup") and every later batch of
//! the same shape re-carves its tape out of recycled storage, performing
//! **zero heap allocations** (verified by the `alloc-stats` counting
//! allocator in `edge-obs`).
//!
//! Recycled buffers are re-zeroed on take, so a pooled matrix is
//! indistinguishable from [`Matrix::zeros`] — results are bit-for-bit
//! identical to the fresh-allocation path, which `tests/arena.rs` asserts
//! across thread counts.

use crate::loss::LossScratch;
use crate::matrix::Matrix;
use crate::tape::{Node, NodeId};

/// A pool of `Vec<T>` buffers bucketed by power-of-two capacity class.
///
/// Invariant: every buffer filed under class `c` has `capacity >= 2^c`, so
/// `take(len)` serving from class `ceil_log2(len)` (or any higher class)
/// never needs to grow the returned vector. Fresh buffers are allocated with
/// capacity rounded up to the class boundary so they return to the class
/// they were requested from.
#[derive(Debug)]
struct ClassPool<T> {
    classes: Vec<Vec<Vec<T>>>,
    fresh: u64,
    reused: u64,
}

impl<T> Default for ClassPool<T> {
    fn default() -> Self {
        Self { classes: Vec::new(), fresh: 0, reused: 0 }
    }
}

impl<T> ClassPool<T> {
    /// An empty (cleared) buffer with capacity at least `len`.
    fn take(&mut self, len: usize) -> Vec<T> {
        if len == 0 {
            return Vec::new();
        }
        let class = len.next_power_of_two().trailing_zeros() as usize;
        for c in class..self.classes.len() {
            if let Some(buf) = self.classes[c].pop() {
                debug_assert!(buf.capacity() >= len);
                self.reused += 1;
                return buf;
            }
        }
        self.fresh += 1;
        Vec::with_capacity(len.next_power_of_two())
    }

    /// Files `buf` (cleared) under its capacity class for later reuse.
    fn put(&mut self, mut buf: Vec<T>) {
        let cap = buf.capacity();
        if cap == 0 {
            return;
        }
        buf.clear();
        let class = (usize::BITS - 1 - cap.leading_zeros()) as usize;
        if self.classes.len() <= class {
            self.classes.resize_with(class + 1, Vec::new);
        }
        self.classes[class].push(buf);
    }
}

/// Allocation statistics for one arena (see [`TapeArena::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArenaStats {
    /// Buffers that had to be freshly allocated (warmup and shape changes).
    pub fresh: u64,
    /// Buffers served from the pools.
    pub reused: u64,
}

/// Reusable storage for tapes: matrix buffers, index lists, node vectors,
/// and loss scratch, recycled across training batches.
#[derive(Debug, Default)]
pub struct TapeArena {
    mats: ClassPool<f32>,
    indices: ClassPool<usize>,
    node_lists: ClassPool<NodeId>,
    /// The tape's (emptied) node vector, kept so its capacity survives the
    /// tape teardown between batches.
    pub(crate) nodes: Vec<Node>,
    /// The backward pass's per-node gradient slots.
    pub(crate) slots: Vec<Option<Matrix>>,
    /// Intermediate buffers for the fused mixture losses.
    pub(crate) loss_scratch: LossScratch,
}

impl TapeArena {
    /// An empty arena. Pools fill lazily as tapes built on it are torn down.
    pub fn new() -> Self {
        Self::default()
    }

    /// A zeroed `rows × cols` matrix, recycled if a large-enough buffer is
    /// pooled. Identical (bit-for-bit) to [`Matrix::zeros`].
    pub fn take_matrix(&mut self, rows: usize, cols: usize) -> Matrix {
        let len = rows * cols;
        let mut buf = self.mats.take(len);
        buf.clear();
        buf.resize(len, 0.0);
        Matrix::from_vec(rows, cols, buf)
    }

    /// Like [`TapeArena::take_matrix`] with the shape of `like`.
    pub fn take_matrix_like(&mut self, like: &Matrix) -> Matrix {
        self.take_matrix(like.rows(), like.cols())
    }

    /// Returns a matrix's backing buffer to the pool.
    pub fn recycle(&mut self, m: Matrix) {
        self.mats.put(m.into_data());
    }

    /// An empty `usize` list with capacity at least `len`.
    pub(crate) fn take_indices(&mut self, len: usize) -> Vec<usize> {
        self.indices.take(len)
    }

    pub(crate) fn recycle_indices(&mut self, v: Vec<usize>) {
        self.indices.put(v);
    }

    /// An empty `NodeId` list with capacity at least `len`.
    pub(crate) fn take_node_list(&mut self, len: usize) -> Vec<NodeId> {
        self.node_lists.take(len)
    }

    pub(crate) fn recycle_node_list(&mut self, v: Vec<NodeId>) {
        self.node_lists.put(v);
    }

    /// Fresh-vs-reused buffer counts across all pools. After warmup a
    /// steady-state training loop should only grow `reused`.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            fresh: self.mats.fresh + self.indices.fresh + self.node_lists.fresh,
            reused: self.mats.reused + self.indices.reused + self.node_lists.reused,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_matrix_is_zeroed_after_recycle() {
        let mut arena = TapeArena::new();
        let mut m = arena.take_matrix(3, 5);
        m.fill(7.5);
        arena.recycle(m);
        let again = arena.take_matrix(3, 5);
        assert_eq!(again, Matrix::zeros(3, 5));
        assert_eq!(arena.stats().reused, 1);
    }

    #[test]
    fn same_shape_round_trip_reuses_capacity() {
        let mut arena = TapeArena::new();
        for _ in 0..10 {
            let m = arena.take_matrix(7, 9);
            arena.recycle(m);
        }
        // One fresh allocation (the first), nine reuses.
        assert_eq!(arena.stats(), ArenaStats { fresh: 1, reused: 9 });
    }

    #[test]
    fn smaller_request_reuses_larger_buffer() {
        let mut arena = TapeArena::new();
        let big = arena.take_matrix(16, 16);
        arena.recycle(big);
        let small = arena.take_matrix(2, 3);
        assert_eq!(small, Matrix::zeros(2, 3));
        assert_eq!(arena.stats().reused, 1);
    }

    #[test]
    fn zero_sized_take_allocates_nothing() {
        let mut arena = TapeArena::new();
        let m = arena.take_matrix(0, 4);
        assert_eq!(m.shape(), (0, 4));
        arena.recycle(m);
        assert_eq!(arena.stats(), ArenaStats { fresh: 0, reused: 0 });
    }
}
