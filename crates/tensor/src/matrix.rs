//! Dense row-major f32 matrices with a pool-parallel, register-blocked
//! matmul.
//!
//! This is the storage type of the autodiff engine. It deliberately stays
//! two-dimensional: every tensor in the EDGE model (embedding tables, GCN
//! states, attention scores, mixture parameter rows) is naturally a matrix,
//! and a rank-2 type keeps the backward rules simple enough to verify by
//! finite differences.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Work size (`rows × inner × cols`) above which [`Matrix::matmul`] fans out
/// across the worker pool (and opens a trace span). Below it, the dispatch
/// overhead outweighs the kernel time.
pub const PAR_THRESHOLD: usize = 32 * 1024;

/// Output rows per [`Matrix::matmul`] register block: each streamed row of
/// the right-hand operand is reused this many times before eviction. Also the
/// row height of the AVX2 register tile (`simd::TILE_ROWS`), so pool chunk
/// boundaries and SIMD tile boundaries always coincide.
pub(crate) const MATMUL_ROW_BLOCK: usize = 4;

/// The dispatch threshold actually applied by [`Matrix::matmul`]: the AVX2
/// kernels clear a given product ~4x faster than scalar, so the work size at
/// which pool dispatch pays for itself rises by the same factor. Under
/// `EDGE_NO_SIMD` this is exactly [`PAR_THRESHOLD`], keeping the scalar
/// engine byte-identical to its pre-SIMD behavior.
pub(crate) fn par_threshold() -> usize {
    if crate::simd::simd_active() {
        PAR_THRESHOLD * 4
    } else {
        PAR_THRESHOLD
    }
}

/// Square tile side for the cache-blocked [`Matrix::transpose`].
const TRANSPOSE_BLOCK: usize = 32;

/// A dense `rows × cols` matrix of `f32`, row-major.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// A matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Builds a matrix from a row-major data vector. Panics if the length
    /// does not equal `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length {} != {rows}x{cols}", data.len());
        Self { rows, cols, data }
    }

    /// Builds from a slice of rows. Panics on ragged input or an empty set
    /// of rows.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "from_rows needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Uniform random entries in `[-scale, scale]`.
    pub fn random_uniform<R: Rng + ?Sized>(
        rows: usize,
        cols: usize,
        scale: f32,
        rng: &mut R,
    ) -> Self {
        let data = (0..rows * cols).map(|_| rng.gen_range(-scale..=scale)).collect();
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing data, row-major.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing data, row-major.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Entry mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Consumes the matrix and returns its backing vector (capacity intact) —
    /// the hand-off primitive of the [`crate::arena::TapeArena`] recycler.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Reshapes `self` to `rows × cols` with every entry zeroed, reusing the
    /// existing capacity. The in-place equivalent of [`Matrix::zeros`].
    pub(crate) fn reset_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Overwrites every entry with `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }

    /// Copies `other`'s contents into `self` (shapes must match).
    pub fn copy_from(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "copy_from shape mismatch");
        self.data.copy_from_slice(&other.data);
    }

    /// Matrix product `self × other` (pool-parallel over row blocks, with
    /// a k-inner loop ordered for cache-friendly access to `other`).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(other, &mut out);
        out
    }

    /// [`Matrix::matmul`] writing into `out` (reshaped and overwritten, its
    /// allocation reused). Results are bit-for-bit identical to `matmul`
    /// at every thread count.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            other.rows,
            "matmul shape mismatch: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        let (n, k, m) = (self.rows, self.cols, other.cols);
        edge_obs::counter!("tensor.matmul.calls").inc(1);
        edge_obs::counter!("tensor.matmul.flops").inc(2 * (n * k * m) as u64);
        // Only span products big enough to matter; sub-threshold products
        // would flood the trace and their time shows up in the caller's
        // self time anyway.
        let _span = (n * k * m >= PAR_THRESHOLD).then(|| edge_obs::span("matmul"));
        out.reset_zeroed(n, m);
        if out.data.is_empty() || k == 0 {
            return;
        }
        let parallel = n * k * m >= par_threshold();
        if crate::simd::matmul_into_simd(&self.data, &other.data, &mut out.data, n, k, m, parallel)
        {
            return;
        }
        // Scalar reference kernel (also the `EDGE_NO_SIMD` / narrow-output
        // path — the SIMD kernel above is bit-for-bit identical to it).
        //
        // Register-blocked ikj kernel: MATMUL_ROW_BLOCK rows of `out`
        // accumulate together, so each row of `other` streamed through the
        // vectorized inner j-loop is reused once per block row while hot in
        // cache. Every output row still accumulates in ascending-k order, so
        // results are bit-for-bit identical across block boundaries and
        // thread counts.
        let work = |block_idx: usize, out_block: &mut [f32]| {
            let row0 = block_idx * MATMUL_ROW_BLOCK;
            let rows_here = out_block.len() / m;
            for kk in 0..k {
                let b_row = &other.data[kk * m..(kk + 1) * m];
                for r in 0..rows_here {
                    let a = self.data[(row0 + r) * k + kk];
                    if a == 0.0 {
                        continue;
                    }
                    let out_row = &mut out_block[r * m..(r + 1) * m];
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            }
        };
        if parallel {
            // Chunk layout matches the serial path exactly, so partitioning
            // cannot change results. `edge_par` rather than the rayon shim:
            // the shim heap-allocates its chunk list per call even at one
            // thread, which would break the zero-allocation train loop.
            edge_par::parallel_for_chunks_mut(&mut out.data, MATMUL_ROW_BLOCK * m, work);
        } else {
            out.data.chunks_mut(MATMUL_ROW_BLOCK * m).enumerate().for_each(|(i, b)| work(i, b));
        }
    }

    /// Transpose (cache-blocked: source and destination are walked in
    /// `TRANSPOSE_BLOCK`-square tiles, so neither side strides a cold cache
    /// line per element on large matrices).
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.transpose_into(&mut out);
        out
    }

    /// [`Matrix::transpose`] writing into `out` (reshaped and overwritten).
    pub fn transpose_into(&self, out: &mut Matrix) {
        out.reset_zeroed(self.cols, self.rows);
        for rb in (0..self.rows).step_by(TRANSPOSE_BLOCK) {
            let r_end = (rb + TRANSPOSE_BLOCK).min(self.rows);
            for cb in (0..self.cols).step_by(TRANSPOSE_BLOCK) {
                let c_end = (cb + TRANSPOSE_BLOCK).min(self.cols);
                for r in rb..r_end {
                    for c in cb..c_end {
                        out.data[c * self.rows + r] = self.data[r * self.cols + c];
                    }
                }
            }
        }
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// [`Matrix::map`] writing into `out` (reshaped and overwritten).
    pub fn map_into(&self, out: &mut Matrix, f: impl Fn(f32) -> f32) {
        out.rows = self.rows;
        out.cols = self.cols;
        out.data.clear();
        out.data.extend(self.data.iter().map(|&v| f(v)));
    }

    /// Elementwise combination of two equally shaped matrices.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip_map shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// [`Matrix::zip_map`] writing into `out` (reshaped and overwritten).
    pub fn zip_map_into(&self, other: &Matrix, out: &mut Matrix, f: impl Fn(f32, f32) -> f32) {
        assert_eq!(self.shape(), other.shape(), "zip_map shape mismatch");
        out.rows = self.rows;
        out.cols = self.cols;
        out.data.clear();
        out.data.extend(self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)));
    }

    /// `self + other`.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a + b)
    }

    /// `self - other`.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a - b)
    }

    /// Hadamard (elementwise) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a * b)
    }

    /// Scalar multiple.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|v| v * s)
    }

    /// In-place scalar multiple (bitwise identical to [`Matrix::scale`]).
    pub fn scale_inplace(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// In-place `self += other * s` (the accumulation primitive of the
    /// backward pass and the optimizers).
    pub fn add_scaled_inplace(&mut self, other: &Matrix, s: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b * s;
        }
    }

    /// Adds `row` (a 1×cols matrix) to every row of `self`.
    pub fn add_row_broadcast(&self, row: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.add_row_broadcast_into(row, &mut out);
        out
    }

    /// [`Matrix::add_row_broadcast`] writing into `out` (reshaped and
    /// overwritten).
    pub fn add_row_broadcast_into(&self, row: &Matrix, out: &mut Matrix) {
        assert_eq!(row.rows, 1, "broadcast operand must be a single row");
        assert_eq!(row.cols, self.cols, "broadcast width mismatch");
        out.rows = self.rows;
        out.cols = self.cols;
        out.data.clear();
        out.data.extend_from_slice(&self.data);
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(&row.data) {
                *o += b;
            }
        }
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Column-wise sum, returned as a 1×cols matrix.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.sum_rows_into(&mut out);
        out
    }

    /// [`Matrix::sum_rows`] writing into `out` (reshaped and overwritten).
    pub fn sum_rows_into(&self, out: &mut Matrix) {
        out.reset_zeroed(1, self.cols);
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Gathers rows by index into a new matrix. Indices may repeat.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.gather_rows_into(indices, &mut out);
        out
    }

    /// [`Matrix::gather_rows`] writing into `out` (reshaped and overwritten).
    pub fn gather_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        out.rows = indices.len();
        out.cols = self.cols;
        out.data.clear();
        for &idx in indices {
            assert!(idx < self.rows, "gather index {idx} out of range {}", self.rows);
            out.data.extend_from_slice(self.row(idx));
        }
    }

    /// The maximum absolute entry (0 for the empty matrix).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// True when every entry is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constructors_and_shape() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert_eq!(z.len(), 6);
        assert!(!z.is_empty());
        assert!(z.data().iter().all(|&v| v == 0.0));
        let f = Matrix::full(2, 2, 3.5);
        assert!(f.data().iter().all(|&v| v == 3.5));
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_checks_len() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn matmul_small_known_result() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = Matrix::random_uniform(7, 7, 1.0, &mut rng);
        let i = Matrix::identity(7);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_rectangular_shapes() {
        let a = Matrix::zeros(3, 5);
        let b = Matrix::zeros(5, 2);
        assert_eq!(a.matmul(&b).shape(), (3, 2));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let _ = Matrix::zeros(2, 3).matmul(&Matrix::zeros(2, 3));
    }

    #[test]
    fn matmul_parallel_path_matches_serial() {
        // Force the parallel path with a big-enough product and compare
        // against a naive triple loop.
        let mut rng = StdRng::seed_from_u64(5);
        let a = Matrix::random_uniform(70, 40, 1.0, &mut rng);
        let b = Matrix::random_uniform(40, 50, 1.0, &mut rng);
        let fast = a.matmul(&b);
        let mut naive = Matrix::zeros(70, 50);
        for i in 0..70 {
            for j in 0..50 {
                let mut acc = 0.0;
                for k in 0..40 {
                    acc += a.get(i, k) * b.get(k, j);
                }
                naive.set(i, j, acc);
            }
        }
        for (x, y) in fast.data().iter().zip(naive.data()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::random_uniform(4, 9, 2.0, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (9, 4));
        assert_eq!(a.transpose().get(3, 2), a.get(2, 3));
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0]]);
        assert_eq!(a.add(&b).data(), &[4.0, 2.0]);
        assert_eq!(a.sub(&b).data(), &[-2.0, -6.0]);
        assert_eq!(a.hadamard(&b).data(), &[3.0, -8.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, -4.0]);
        assert_eq!(a.map(f32::abs).data(), &[1.0, 2.0]);
    }

    #[test]
    fn add_scaled_inplace_accumulates() {
        let mut a = Matrix::zeros(1, 3);
        let g = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]);
        a.add_scaled_inplace(&g, 0.5);
        a.add_scaled_inplace(&g, 0.5);
        assert_eq!(a.data(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn row_broadcast() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![10.0, 20.0]]);
        assert_eq!(a.add_row_broadcast(&b).data(), &[11.0, 21.0, 12.0, 22.0]);
    }

    #[test]
    #[should_panic(expected = "single row")]
    fn row_broadcast_rejects_matrix() {
        let a = Matrix::zeros(2, 2);
        let _ = a.add_row_broadcast(&Matrix::zeros(2, 2));
    }

    #[test]
    fn reductions() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.sum_rows().data(), &[4.0, 6.0]);
        assert!((a.frobenius_norm() - 30.0f32.sqrt()).abs() < 1e-6);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn gather_rows_picks_and_repeats() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g.data(), &[3.0, 3.0, 1.0, 1.0, 3.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gather_rows_bounds_checked() {
        let _ = Matrix::zeros(2, 2).gather_rows(&[5]);
    }

    #[test]
    fn finite_check() {
        let mut a = Matrix::zeros(1, 2);
        assert!(a.all_finite());
        a.set(0, 1, f32::NAN);
        assert!(!a.all_finite());
    }

    #[test]
    fn random_uniform_respects_scale_and_seed() {
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        let a = Matrix::random_uniform(10, 10, 0.3, &mut r1);
        let b = Matrix::random_uniform(10, 10, 0.3, &mut r2);
        assert_eq!(a, b);
        assert!(a.max_abs() <= 0.3);
        assert!(a.max_abs() > 0.0);
    }
}
